# Developer entry points.  `make check` is the tier-1 gate: lint + tests.

export PYTHONPATH := src

.PHONY: test lint check chaos chaos-smoke bench-smoke bench-broker bench-obs bench-lanes bench-federation soak-smoke failover-smoke slo

test:  ## tier-1 test suite
	python -m pytest -q tests

lint:  ## ruff style gate (config in pyproject.toml); skips when ruff is absent
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif python -c "import ruff" >/dev/null 2>&1; then \
		python -m ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed — skipping (pip install ruff to enable)"; \
	fi

check: lint test

chaos:  ## robustness capstone: mixed workload under a seeded fault schedule
	python -m repro chaos --seed 1 --verbose

chaos-smoke:  ## broker-crash recovery gate: completion + determinism digest
	python benchmarks/chaos_smoke.py

bench-smoke:  ## kernel perf gate vs the pinned BENCH_kernel.json baseline
	python benchmarks/bench_smoke.py

bench-broker:  ## broker control-plane gate vs the pinned BENCH_broker.json
	python benchmarks/bench_broker.py

bench-obs:  ## observability-overhead gate vs the pinned BENCH_obs.json
	python benchmarks/bench_obs.py

bench-lanes:  ## partitioned-kernel gate: lane determinism + overhead + mp speedup
	python benchmarks/bench_lanes.py

soak-smoke:  ## service-mode soak gate vs the pinned BENCH_soak.json
	python benchmarks/bench_soak.py

failover-smoke:  ## warm-standby failover gate vs the pinned BENCH_failover.json
	python benchmarks/bench_failover.py

bench-federation:  ## federated control-plane gate vs the pinned BENCH_federation.json
	python benchmarks/bench_federation.py

slo:  ## churn workload under a health monitor; fails on any violated SLO
	python -m repro slo
