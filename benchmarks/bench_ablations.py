"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are ours, not the paper's: each isolates one mechanism/policy choice
and measures what it buys.

1. **Preemption (default policy) vs FIFO** — what just-in-time
   *re*allocation is worth: turnaround of a sequential job arriving while an
   adaptive job holds the whole cluster.
2. **Default (redirection) path vs module path** — the latency price a
   closed system (PVM) pays over an open one (Calypso) for one acquisition.
3. **Grace-period sweep** — revocation latency when the victim ignores
   SIGTERM: the subapp waits out the grace period before SIGKILL, so
   uncooperative jobs directly slow reallocation.
4. **Daemon report interval sweep** — owner-return revocation latency is
   bounded by the monitoring period; faster reports buy responsiveness at
   the cost of network chatter.
"""

from repro.calibration import Calibration
from repro.cluster import Cluster, ClusterSpec, MachineSpec
from repro.policy import DefaultPolicy, FifoPolicy
from repro.sim.process import Interrupt


def _cluster(n, policy=None, calibration=None, seed=0):
    spec = ClusterSpec.uniform(n, seed=seed)
    if calibration is not None:
        spec.calibration = calibration
    cluster = Cluster(spec)
    cluster.start_broker(policy=policy)
    cluster.broker.wait_ready()
    return cluster


def _turnaround_with_policy(policy):
    """Sequential-job turnaround while a finite Calypso job holds all
    machines (48 steps x 5s over 3 workers ~ 80 s of remaining work)."""
    cluster = _cluster(4, policy=policy)
    svc = cluster.broker
    svc.submit("n00", ["calypso", "48", "5.0", "3"], rsl="+(adaptive)")
    cluster.env.run(until=cluster.now + 5.0)
    t0 = cluster.now
    seq = svc.submit("n00", ["rsh", "anylinux", "null"])
    cluster.env.run(until=seq.proc.terminated)
    return cluster.now - t0


def bench_ablation_policy_preemption(run_once):
    def experiment():
        return {
            "default": _turnaround_with_policy(DefaultPolicy()),
            "fifo": _turnaround_with_policy(FifoPolicy()),
        }

    result = run_once(experiment)
    print(f"\nsequential-job turnaround: default={result['default']:.2f}s "
          f"fifo={result['fifo']:.2f}s "
          f"(speedup {result['fifo'] / result['default']:.1f}x)")
    # The default policy reallocates in ~1.6 s; FIFO waits for the adaptive
    # job to shrink naturally (tens of seconds).
    assert result["default"] < 2.5
    assert result["fifo"] > 4 * result["default"]


def bench_ablation_module_vs_default_path(run_once):
    def experiment():
        # Default path: Calypso acquires one broker-chosen worker.
        cluster = _cluster(3)
        svc = cluster.broker
        t0 = cluster.now
        svc.submit("n00", ["calypso", "10000", "60.0", "1"], rsl="+(adaptive)")
        while not svc.events_of("grant"):
            cluster.env.run(until=cluster.now + 0.25)
        default_path = svc.events_of("grant")[0]["time"] - t0

        # Module path: PVM acquires one broker-chosen host (grant + the
        # whole phase-II grow until the slave daemon joins).
        cluster = _cluster(3)
        svc = cluster.broker
        svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
        cluster.env.run(until=cluster.now + 3.0)
        t0 = cluster.now
        add = cluster.run_command("n00", ["pvm", "add", "anylinux"], uid="pat")
        cluster.env.run(until=add.terminated)
        fs = cluster.machine("n00").fs
        while (
            not fs.exists("/home/pat/.pvm_hosts")
            or len(fs.read_lines("/home/pat/.pvm_hosts")) < 2
        ):
            cluster.env.run(until=cluster.now + 0.25)
        module_path = cluster.now - t0
        return {"default": default_path, "module": module_path}

    result = run_once(experiment)
    print(f"\none-machine acquisition: default-path={result['default']:.2f}s "
          f"module-path={result['module']:.2f}s")
    # Interpreting low-level actions (default) is much cheaper than
    # coercing a closed system through its console (module).
    assert result["module"] > result["default"] + 1.0


def bench_ablation_grace_period(run_once):
    def experiment():
        latencies = {}
        for grace in (0.5, 2.0, 5.0):
            cal = Calibration(sigterm_grace=grace)
            cluster = _cluster(3, calibration=cal, seed=1)
            svc = cluster.broker

            @cluster.system_bin.register(f"stubborn{grace}")
            def stubborn(proc):
                while True:
                    try:
                        yield proc.compute(1.0)
                    except Interrupt:
                        pass  # ignores SIGTERM; only SIGKILL removes it

            # An "adaptive" job whose workers in fact ignore revocation.
            # Two slots so every non-home machine is held and the arriving
            # sequential job must force an eviction.
            @cluster.system_bin.register(f"sloppy{grace}")
            def sloppy(proc):
                def slot():
                    while True:
                        child = proc.spawn(
                            ["rsh", "anylinux", f"stubborn{grace}"]
                        )
                        yield proc.wait(child)

                proc.thread(slot(), name="slot0")
                proc.thread(slot(), name="slot1")
                while True:
                    yield proc.sleep(3600.0)

            svc.submit("n00", [f"sloppy{grace}"], rsl="+(adaptive)")
            cluster.env.run(until=cluster.now + 4.0)
            t0 = cluster.now
            seq = svc.submit("n00", ["rsh", "anylinux", "null"])
            cluster.env.run(until=seq.proc.terminated)
            latencies[grace] = cluster.now - t0
        return latencies

    result = run_once(experiment)
    print("\nturnaround vs SIGTERM grace period (victim ignores SIGTERM):")
    for grace, latency in result.items():
        print(f"  grace={grace:.1f}s -> {latency:.2f}s")
    # Latency tracks the grace period almost 1:1.
    assert result[5.0] - result[0.5] > 3.5
    assert result[2.0] - result[0.5] > 1.0


def bench_ablation_daemon_interval(run_once):
    def experiment():
        latencies = {}
        for interval in (0.5, 2.0, 8.0):
            cal = Calibration(daemon_report_interval=interval)
            spec = ClusterSpec(
                machines=[
                    MachineSpec(name="n00"),
                    MachineSpec(name="n01"),
                    MachineSpec(name="p00", private_owner="ann"),
                ],
                calibration=cal,
            )
            cluster = Cluster(spec)
            svc = cluster.start_broker()
            svc.wait_ready()
            svc.submit(
                "n00",
                ["calypso", "10000", "60.0", "2"],
                rsl="+(adaptive)",
            )
            deadline = cluster.now + 30.0
            while cluster.now < deadline:
                cluster.env.run(until=cluster.now + 0.5)
                if svc.state.machine("p00").allocation is not None:
                    break
            assert svc.state.machine("p00").allocation is not None
            # The owner returns; measure until the machine is clear.
            t0 = cluster.now
            cluster.machine("p00").console_active = True
            while svc.state.machine("p00").allocation is not None:
                cluster.env.run(until=cluster.now + 0.1)
            latencies[interval] = cluster.now - t0
        return latencies

    result = run_once(experiment)
    print("\nowner-return revocation latency vs daemon report interval:")
    for interval, latency in result.items():
        print(f"  interval={interval:.1f}s -> {latency:.2f}s")
    # Latency is bounded by (and grows with) the monitoring period.
    assert result[0.5] < result[8.0]
    assert result[8.0] <= 8.0 + 2.5
