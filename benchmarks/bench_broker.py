"""Broker control-plane gate against the pinned ``BENCH_broker.json``.

Run as a script (``make bench-broker``).  Two modes:

* **Gate** (default) — replay the pinned 256-machine churn cell and check:

  - *Determinism*: the broker's control-plane counters (policy decisions,
    scheduler passes, machine records scanned, grants, daemon full reports /
    beacons / report bytes) must match the committed baseline exactly.
    These are simulation-derived and hardware-independent; a mismatch means
    broker behaviour changed and the baseline must be regenerated
    deliberately (``python benchmarks/bench_broker.py --pin``).
  - *Performance*: broker decisions per wall-second must not regress by
    more than ``REPRO_BROKER_TOLERANCE`` (default 0.20, i.e. a >20% drop
    fails) against the baseline.  Wall-clock is machine-dependent; regenerate
    the pin when moving the baseline to new hardware.

* **Pin** (``--pin``) — run the control-plane sizes (64..1024 machines) and
  rewrite ``BENCH_broker.json``.

The interesting columns are the *per-grant* ones: with the indexed scheduler
the records scanned per grant should stay flat as the cluster grows, where
the full-scan scheduler's grows linearly with machine count.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: The baseline cell the gate replays (must exist in the bench file).
GATE_SIZE = 256
GATE_SEED = 2

#: Cluster sizes the pin covers (the control-plane scaling range).
PIN_SIZES = (64, 128, 256, 512, 1024)

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_broker.json"

#: Counters compared exactly between a run and the pin (all deterministic
#: for a given scheduler mode).
EXACT_FIELDS = (
    "events_processed",
    "grants",
    "policy_decisions",
    "sched_passes",
    "machines_scanned",
    "sweep_scans",
    "daemon_full_reports",
    "daemon_beacons",
    "daemon_report_bytes",
)


def _counter(cell: dict, name: str) -> int:
    entry = cell["result"]["metrics"].get(name, {})
    return int(entry.get("value", 0))


def measure(size: int, seed: int, sim_minutes: float) -> dict:
    """One churn cell reduced to the broker's control-plane envelope."""
    from repro.experiments.sweep import run_cell

    cell = run_cell("churn", size, seed=seed, sim_minutes=sim_minutes)
    wall = cell["perf"]["wall_seconds"]
    grants = cell["result"]["grants"]
    decisions = _counter(cell, "broker.policy_decisions")
    scanned = cell["result"]["broker"]["machines_scanned"]
    return {
        "events_processed": cell["result"]["heap"]["processed"],
        "grants": grants,
        "policy_decisions": decisions,
        "sched_passes": _counter(cell, "broker.sched_passes"),
        "machines_scanned": scanned,
        "scans_per_grant": round(scanned / max(grants, 1), 2),
        "sweep_scans": _counter(cell, "broker.sweep_scans"),
        "daemon_full_reports": _counter(cell, "rbdaemon.full_reports"),
        "daemon_beacons": _counter(cell, "rbdaemon.beacons"),
        "daemon_report_bytes": _counter(cell, "rbdaemon.report_bytes"),
        "decisions_per_second": round(decisions / max(wall, 1e-9)),
        "events_per_second": round(cell["perf"]["events_per_second"]),
        "wall_seconds": round(wall, 4),
    }


def pin(sim_minutes: float) -> int:
    sizes = {}
    for size in PIN_SIZES:
        entry = measure(size, GATE_SEED, sim_minutes)
        sizes[str(size)] = entry
        print(
            f"pin: {size:4d} machines: {entry['policy_decisions']} decisions, "
            f"{entry['scans_per_grant']:.2f} scans/grant, "
            f"{entry['decisions_per_second']} decisions/s, "
            f"{entry['events_per_second']} ev/s"
        )
    document = {
        "workload": "churn",
        "seed": GATE_SEED,
        "sim_minutes": sim_minutes,
        "sizes": sizes,
    }
    BASELINE.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"pin: wrote {BASELINE}")
    return 0


def gate() -> int:
    baseline = json.loads(BASELINE.read_text())
    pinned = baseline["sizes"][str(GATE_SIZE)]
    tolerance = float(os.environ.get("REPRO_BROKER_TOLERANCE", "0.20"))

    entry = measure(GATE_SIZE, baseline["seed"], baseline["sim_minutes"])
    print(
        f"broker: {GATE_SIZE} machines x {baseline['sim_minutes']:g} sim-min: "
        f"{entry['policy_decisions']} decisions, "
        f"{entry['scans_per_grant']:.2f} scans/grant, "
        f"{entry['decisions_per_second']} decisions/s "
        f"(baseline {pinned['decisions_per_second']}, "
        f"tolerance {tolerance:.0%})"
    )

    failures = []
    for field in EXACT_FIELDS:
        if entry[field] != pinned[field]:
            failures.append(
                f"{field} drifted: {entry[field]} != baseline "
                f"{pinned[field]} (broker behaviour changed; rerun with "
                f"--pin if intentional)"
            )
    floor = pinned["decisions_per_second"] * (1.0 - tolerance)
    if entry["decisions_per_second"] < floor:
        failures.append(
            f"decisions/sec regression: {entry['decisions_per_second']} is "
            f"more than {tolerance:.0%} below baseline "
            f"{pinned['decisions_per_second']}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("broker: OK")
    return 1 if failures else 0


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pin",
        action="store_true",
        help=f"regenerate {BASELINE.name} instead of gating against it",
    )
    parser.add_argument(
        "--minutes",
        type=float,
        default=10.0,
        help="simulated minutes per cell when pinning (default 10)",
    )
    args = parser.parse_args()
    if args.pin:
        return pin(args.minutes)
    return gate()


if __name__ == "__main__":
    sys.exit(main())
