"""Failover benchmark: warm-standby promotion vs. restart-and-recover.

Measures the full client-visible disruption of losing the broker process
under two recovery mechanisms, on otherwise identical 5-machine clusters
running the same adaptive workload:

* **promotion** — a warm standby (DESIGN.md §16) detects heartbeat
  silence, promotes its shipped shadow under a fenced epoch, and boots on
  the well-known secondary address.  Disruption = silence-detection
  deadline + daemon re-registration.
* **restart** — the journal path from DESIGN.md §13: an operator respawns
  the broker ``RESTART_AFTER`` seconds after the crash (the fault-plan
  convention), which recovers from snapshot + WAL and waits for daemon
  re-registration.

Both paths end at the same line: the service's ``ready`` event re-fires
once every managed daemon has re-proved its inventory to the new
incarnation.  Everything measured is simulated time, so the numbers are
exact and pinned in ``BENCH_failover.json``; the gate fails on any drift,
on a double grant, or if promotion ever stops being strictly faster than
restart+recover.

Usage:
    python benchmarks/bench_failover.py          # gate against baseline
    python benchmarks/bench_failover.py --pin    # regenerate baseline
"""

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_failover.json"

SEED = 11
WORKERS = ["n00", "n01", "n02", "n03"]
STANDBY = "n04"
CRASH_AT = 10.0  # steady state: the greedy job holds full strength by here
#: Operator respawn delay on the restart path — the fault-plan convention
#: (``FaultPlan.generate(broker_restart_after=4.0)``).
RESTART_AFTER = 4.0
SETTLE = 10.0

#: Simulated-time results compared exactly against the baseline: the whole
#: scenario is deterministic, so any drift is a behaviour change.
EXACT_FIELDS = (
    "disruption_seconds",
    "detection_seconds",
    "ready_gap_seconds",
    "double_grants",
    "holdings_after",
    "promotions",
    "restarts",
)


def _measure(standby: bool) -> dict:
    from repro.cluster import Cluster, ClusterSpec
    from repro.workloads import install_churn

    started = time.perf_counter()
    cluster = Cluster(ClusterSpec.uniform(5, seed=SEED))
    if standby:
        svc = cluster.start_broker(
            journal=True, standby_host=STANDBY, managed_hosts=WORKERS
        )
    else:
        svc = cluster.start_broker(journal=True, managed_hosts=WORKERS)
    svc.wait_ready()
    install_churn(cluster.system_bin)
    handle = svc.submit("n01", ["greedy", "2"], rsl="+(adaptive)")
    cluster.env.run(until=CRASH_AT)
    job = handle.job_record()
    assert len(svc.holdings()[job.jobid]) == 2, "not at strength before crash"

    crash_at = cluster.now
    svc.crash_broker()
    if standby:
        # The standby notices the heartbeat silence and promotes; step the
        # clock until it has (svc.ready is only replaced at that instant).
        while not svc.events_of("broker_promoted"):
            cluster.env.run(until=cluster.now + 0.25)
            assert cluster.now < crash_at + 30.0, "standby never promoted"
        detected_at = svc.events_of("broker_promoted")[0]["time"]
    else:
        cluster.env.run(until=crash_at + RESTART_AFTER)
        svc.restart_broker()
        detected_at = cluster.now
    svc.wait_ready()
    ready_at = cluster.now

    cluster.env.run(until=ready_at + SETTLE)
    assert handle.proc.is_alive, "app died across the failover"
    entry = {
        "path": "promotion" if standby else "restart",
        "disruption_seconds": round(ready_at - crash_at, 6),
        "detection_seconds": round(detected_at - crash_at, 6),
        "ready_gap_seconds": round(ready_at - detected_at, 6),
        "double_grants": svc.metrics.counter("fencing.double_grants").value,
        "holdings_after": len(svc.holdings()[job.jobid]),
        "promotions": svc.metrics.counter("broker.promotions").value,
        "restarts": svc.metrics.counter("broker.restarts").value,
        "wall_seconds": round(time.perf_counter() - started, 4),
    }
    cluster.assert_no_crashes()
    return entry


def measure() -> dict:
    return {
        "promotion": _measure(standby=True),
        "restart": _measure(standby=False),
    }


def _print_entry(entry: dict) -> None:
    print(
        f"{entry['path']}: disruption {entry['disruption_seconds']:.3f}s "
        f"(detection {entry['detection_seconds']:.3f}s + re-registration "
        f"{entry['ready_gap_seconds']:.3f}s), "
        f"holdings {entry['holdings_after']}, "
        f"double grants {entry['double_grants']}"
    )


def _check(results: dict) -> list:
    failures = []
    promotion, restart = results["promotion"], results["restart"]
    if promotion["disruption_seconds"] >= restart["disruption_seconds"]:
        failures.append(
            f"promotion is not faster: {promotion['disruption_seconds']}s "
            f"disruption vs restart+recover "
            f"{restart['disruption_seconds']}s — the warm standby buys "
            f"nothing"
        )
    for entry in (promotion, restart):
        if entry["double_grants"]:
            failures.append(
                f"{entry['path']}: {entry['double_grants']} double grant(s) "
                f"— two incarnations granted the same machine"
            )
        if entry["holdings_after"] != 2:
            failures.append(
                f"{entry['path']}: job holds {entry['holdings_after']} "
                f"machines after settling, wanted full strength (2)"
            )
    return failures


def pin() -> int:
    results = measure()
    for entry in results.values():
        _print_entry(entry)
    failures = _check(results)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    document = {
        "seed": SEED,
        "crash_at": CRASH_AT,
        "restart_after": RESTART_AFTER,
        "promotion": results["promotion"],
        "restart": results["restart"],
    }
    BASELINE.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"pin: wrote {BASELINE}")
    return 0


def gate() -> int:
    baseline = json.loads(BASELINE.read_text())
    results = measure()
    for entry in results.values():
        _print_entry(entry)

    failures = _check(results)
    # Determinism: a second run must reproduce every simulated-time field.
    rerun = measure()
    for path in ("promotion", "restart"):
        for field in EXACT_FIELDS:
            if results[path][field] != rerun[path][field]:
                failures.append(
                    f"{path}.{field} is nondeterministic: "
                    f"{results[path][field]} != {rerun[path][field]} on an "
                    f"identical rerun"
                )
            if results[path][field] != baseline[path][field]:
                failures.append(
                    f"{path}.{field} drifted: {results[path][field]} != "
                    f"baseline {baseline[path][field]} (failover behaviour "
                    f"changed; rerun with --pin if intentional)"
                )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        margin = (
            results["restart"]["disruption_seconds"]
            - results["promotion"]["disruption_seconds"]
        )
        print(
            f"failover: OK (promotion beats restart by {margin:.3f}s, "
            f"deterministic, zero double grants)"
        )
    return 1 if failures else 0


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pin",
        action="store_true",
        help=f"regenerate {BASELINE.name} instead of gating against it",
    )
    args = parser.parse_args()
    if args.pin:
        return pin()
    return gate()


if __name__ == "__main__":
    sys.exit(main())
