"""Federation benchmark: sharded scheduling cost, borrow traffic, identity.

Pins the three properties the federated control plane (DESIGN.md §17)
exists to provide, all in exact simulated-time numbers:

* **flat per-shard decision cost** — the same 4096-machine cluster run as
  4 shards of 1024 and as 16 shards of 256 machines, with the same
  per-shard workload.  A shard's machines-scanned-per-grant must not grow
  with shard size (the indexed scheduler) and must stay flat across the
  two shard counts: partitioning buys smaller control domains at no
  per-decision cost.
* **bounded borrow traffic** — a deliberately saturated 2-shard cluster
  where a 4-wide adaptive job overflows its home shard.  Cross-shard
  grants must happen (the protocol works) but stay a bounded fraction of
  all grants (borrowing is the escape valve, not the common path), with
  zero double grants.
* **one-shard identity** — a federation of one is byte-identical to the
  standalone broker on the same seed: the sha256 digest of the broker
  event log must match between the two boot paths, and is pinned so any
  future divergence of *either* path from the recorded history fails.

Everything measured is simulated time over fixed seeds, so every field is
exact and any drift is a behaviour change.

Usage:
    python benchmarks/bench_federation.py          # gate against baseline
    python benchmarks/bench_federation.py --pin    # regenerate baseline
"""

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_federation.json"

#: Total machines in the flatness scenario (>= 4096 per the PR contract).
FLAT_MACHINES = 4096
FLAT_SHARD_COUNTS = (4, 16)
FLAT_JOBS_PER_SHARD = 4
FLAT_SEED = 7

BORROW_SEED = 3
IDENTITY_SEED = 11

#: Exact simulated-time fields compared against the baseline per scenario.
EXACT = {
    "flatness": (
        "grants",
        "max_scans_per_grant",
        "mean_scans_per_grant",
        "cross_shard_grants",
    ),
    "borrow": (
        "grants",
        "cross_shard_grants",
        "loans_out",
        "forwards",
        "returns",
        "double_grants",
        "borrow_fraction",
    ),
    "identity": ("events", "digest"),
}


def _flatness(shards: int) -> dict:
    from repro.cluster import Cluster, ClusterSpec

    started = time.perf_counter()
    cluster = Cluster(ClusterSpec.uniform(FLAT_MACHINES, seed=FLAT_SEED))
    federation = cluster.start_federation(shards=shards)
    federation.wait_ready()
    handles = []
    for service in federation.services:
        for k in range(FLAT_JOBS_PER_SHARD):
            handles.append(
                federation.submit(
                    service.broker_host,
                    ["rsh", "anylinux", "compute", str(5 + k)],
                    uid=f"u{k}",
                )
            )
    cluster.env.run(until=cluster.env.now + 60.0)
    assert all(h.exit_code == 0 for h in handles), "a flatness job failed"
    cluster.assert_no_crashes()
    # Per-shard decision cost: this shard's machines scanned over this
    # shard's grants (the metrics registry is cluster-global, so the scan
    # counter must come from each shard's own state).
    ratios = []
    grants_total = 0
    for service in federation.services:
        grants = len(service.events_of("grant"))
        grants_total += grants
        assert grants > 0, f"shard {service.shard.index} granted nothing"
        ratios.append(service.state.machines_scanned / grants)
    cross = sum(
        blk["cross_shard_grants"] for blk in federation.federation_stats()
    )
    return {
        "shards": shards,
        "machines_per_shard": FLAT_MACHINES // shards,
        "grants": grants_total,
        "max_scans_per_grant": round(max(ratios), 6),
        "mean_scans_per_grant": round(sum(ratios) / len(ratios), 6),
        "cross_shard_grants": cross,
        "wall_seconds": round(time.perf_counter() - started, 4),
    }


def _borrow() -> dict:
    from repro.cluster import Cluster, ClusterSpec

    started = time.perf_counter()
    cluster = Cluster(ClusterSpec.uniform(8, seed=BORROW_SEED))
    federation = cluster.start_federation(shards=2)
    federation.wait_ready()
    # Saturate: shard 0 (n00-n03) has three candidates for a 4-wide
    # adaptive job, so the fourth must be borrowed from shard 1 — which
    # is itself kept busy by sequential work.
    handles = [
        federation.submit(
            "n00", ["calypso", "30", "2.0", "4"], rsl="+(adaptive)", uid="cal"
        ),
        federation.submit("n04", ["retrywork", "8"], uid="seq0"),
        federation.submit("n04", ["retrywork", "10"], uid="seq1"),
    ]
    cluster.env.run(until=300.0)
    assert all(h.exit_code == 0 for h in handles), "a borrow job failed"
    cluster.assert_no_crashes()
    stats = federation.federation_stats()
    grants = sum(len(s.events_of("grant")) for s in federation.services)
    cross = sum(blk["cross_shard_grants"] for blk in stats)
    return {
        "grants": grants,
        "cross_shard_grants": cross,
        "loans_out": sum(blk["loans_out"] for blk in stats),
        "forwards": sum(blk["forwards"] for blk in stats),
        "returns": sum(blk["returns"] for blk in stats),
        "double_grants": sum(blk["double_grants"] for blk in stats),
        "borrow_fraction": round(cross / grants, 6) if grants else 0.0,
        "wall_seconds": round(time.perf_counter() - started, 4),
    }


def _identity_run(fed: bool) -> dict:
    from repro.cluster import Cluster, ClusterSpec

    cluster = Cluster(ClusterSpec.uniform(5, seed=IDENTITY_SEED))
    if fed:
        svc = cluster.start_federation(shards=1).services[0]
    else:
        svc = cluster.start_broker()
    svc.wait_ready()
    svc.submit("n00", ["calypso", "30", "2.0", "3"], rsl="+(adaptive)", uid="c")
    svc.submit("n00", ["rsh", "anylinux", "compute", "10"], uid="s")
    cluster.env.run(until=200.0)
    cluster.assert_no_crashes()
    blob = json.dumps(svc.events, sort_keys=True, default=str)
    return {
        "events": len(svc.events),
        "digest": hashlib.sha256(blob.encode()).hexdigest(),
    }


def _identity() -> dict:
    started = time.perf_counter()
    plain = _identity_run(fed=False)
    one_shard = _identity_run(fed=True)
    entry = {
        "events": plain["events"],
        "digest": plain["digest"],
        "one_shard_matches": one_shard == plain,
        "wall_seconds": round(time.perf_counter() - started, 4),
    }
    return entry


def measure() -> dict:
    return {
        "flatness": [_flatness(shards) for shards in FLAT_SHARD_COUNTS],
        "borrow": _borrow(),
        "identity": _identity(),
    }


def _print(results: dict) -> None:
    for cell in results["flatness"]:
        print(
            f"flatness: {cell['shards']:2d} x {cell['machines_per_shard']} "
            f"machines -> scans/grant max {cell['max_scans_per_grant']:.3f} "
            f"mean {cell['mean_scans_per_grant']:.3f} "
            f"({cell['grants']} grants, {cell['wall_seconds']:.1f}s wall)"
        )
    borrow = results["borrow"]
    print(
        f"borrow: {borrow['cross_shard_grants']:g}/{borrow['grants']:g} grants "
        f"cross-shard ({100.0 * borrow['borrow_fraction']:.1f}%), "
        f"{borrow['loans_out']:g} loans, {borrow['returns']:g} returns, "
        f"{borrow['double_grants']:g} double grants"
    )
    identity = results["identity"]
    print(
        f"identity: {identity['events']} events, digest "
        f"{identity['digest'][:12]}..., one-shard matches "
        f"{identity['one_shard_matches']}"
    )


def _check(results: dict) -> list:
    failures = []
    four, sixteen = results["flatness"]
    # Flat per-shard decision cost: 16 shards of 256 machines must not
    # scan more per grant than 4 shards of 1024 (small absolute slack for
    # integer effects), and both stay far below one full-shard scan.
    if sixteen["max_scans_per_grant"] > 1.5 * four["max_scans_per_grant"] + 1.0:
        failures.append(
            f"per-shard scans/grant grew with shard count: "
            f"{four['max_scans_per_grant']} at 4 shards -> "
            f"{sixteen['max_scans_per_grant']} at 16"
        )
    for cell in results["flatness"]:
        if cell["max_scans_per_grant"] > 16.0:
            failures.append(
                f"{cell['shards']} shards: {cell['max_scans_per_grant']} "
                f"scans/grant is not flat — decision cost should be a "
                f"small constant, independent of the "
                f"{cell['machines_per_shard']} machines in the shard"
            )
    borrow = results["borrow"]
    if borrow["cross_shard_grants"] < 1:
        failures.append("borrow scenario never crossed a shard boundary")
    if borrow["borrow_fraction"] > 0.5:
        failures.append(
            f"cross-shard grants are {100 * borrow['borrow_fraction']:.0f}% "
            f"of all grants — borrowing is the common path, not the escape "
            f"valve"
        )
    if borrow["double_grants"]:
        failures.append(
            f"{borrow['double_grants']:g} double grant(s) in the borrow "
            f"scenario"
        )
    if not results["identity"]["one_shard_matches"]:
        failures.append(
            "one-shard federation diverged from the standalone broker"
        )
    return failures


def pin() -> int:
    results = measure()
    _print(results)
    failures = _check(results)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    BASELINE.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"pin: wrote {BASELINE}")
    return 0


def gate() -> int:
    baseline = json.loads(BASELINE.read_text())
    results = measure()
    _print(results)
    failures = _check(results)

    def compare(tag: str, fields, ours: dict, pinned: dict) -> None:
        for field in fields:
            if ours[field] != pinned[field]:
                failures.append(
                    f"{tag}.{field} drifted: {ours[field]} != baseline "
                    f"{pinned[field]} (federation behaviour changed; rerun "
                    f"with --pin if intentional)"
                )

    for ours, pinned in zip(results["flatness"], baseline["flatness"]):
        compare(f"flatness[{ours['shards']}]", EXACT["flatness"], ours, pinned)
    compare("borrow", EXACT["borrow"], results["borrow"], baseline["borrow"])
    compare(
        "identity", EXACT["identity"], results["identity"], baseline["identity"]
    )
    # Determinism: the cheap scenarios rerun must reproduce exactly.
    rerun_borrow = _borrow()
    for field in EXACT["borrow"]:
        if rerun_borrow[field] != results["borrow"][field]:
            failures.append(
                f"borrow.{field} is nondeterministic: "
                f"{results['borrow'][field]} != {rerun_borrow[field]} on an "
                f"identical rerun"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            "federation: OK (flat per-shard scans/grant, bounded borrow "
            "traffic, one-shard identity, zero double grants)"
        )
    return 1 if failures else 0


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pin",
        action="store_true",
        help=f"regenerate {BASELINE.name} instead of gating against it",
    )
    args = parser.parse_args()
    if args.pin:
        return pin()
    return gate()


if __name__ == "__main__":
    sys.exit(main())
