"""Regenerates paper Figure 7 (reallocation time vs number of machines)."""

import numpy as np

from repro.experiments import run_fig7


def bench_fig7(run_once):
    table = run_once(run_fig7)
    print()
    print(table)

    sizes = np.array(table.meta["sizes"], dtype=float)
    times = np.array([row.values[0] for row in table.rows], dtype=float)

    # "The reallocation completes in approximately 1 second per machine,
    # and this number scales linearly to at least 16 machines."
    slope, intercept = np.polyfit(sizes, times, 1)
    assert 0.8 <= slope <= 1.2, f"slope {slope:.3f} s/machine"
    predicted = slope * sizes + intercept
    residual = times - predicted
    ss_res = float((residual**2).sum())
    ss_tot = float(((times - times.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot
    assert r_squared > 0.995, f"reallocation not linear (R^2={r_squared:.4f})"
    # Monotone in the request size.
    assert list(times) == sorted(times)
