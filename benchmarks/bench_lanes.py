"""Partitioned-kernel gate against the ``lanes`` section of ``BENCH_kernel.json``.

Run as a script (``make bench-lanes``).  Two modes:

* **Gate** (default) — four checks:

  - *Exact-merge determinism* (exact, any hardware): the churn cell run
    with ``lanes`` ∈ {1, 2, 4} must produce identical merged digests and
    identical ``events_processed`` — the in-process laned executor
    reproduces the serial total order bit for bit (DESIGN.md §15).
  - *Windowed-backend determinism* (exact, any hardware): the
    ``sim/lanes.py`` multiprocessing backend must produce a result
    document sha256-identical to its serial backend on the same seed.
  - *Serial overhead* (measured): the lane refactor must not tax the
    serial path.  Serial and 2-lane runs of the same cell are measured
    *interleaved in this session* (best-of-N each, so machine load
    cancels out of the ratio — never compared against a stale pin) and
    the serial run is additionally held to the pinned serial wall within
    ``REPRO_LANES_TOLERANCE`` (default 2.0x, the bench-smoke convention
    for cross-machine wall noise; on the pinning machine the refactor
    measured ≤5% — see the pin's ``serial_overhead`` note).
  - *Windowed speedup* (measured, **hardware-conditional**): with ≥2
    CPUs available (``os.sched_getaffinity``) the mp backend must reach
    ``REPRO_LANES_SPEEDUP`` (default 1.8x) events/sec over serial on the
    2048-actor window benchmark.  On a single-CPU host the check is
    skipped with a visible notice — parallel speedup is physically
    unobtainable there, and pretending otherwise would just pin noise.

* **Pin** (``--pin``) — measure the in-process serial/laned walls and the
  windowed serial/mp walls on this machine and merge them into
  ``BENCH_kernel.json`` under ``"lanes"`` (the sweep's ``--bench`` owns
  the rest of the file), recording the CPU count the numbers were taken
  on.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

#: The churn cell the determinism + overhead checks replay.
GATE_SIZE = 64
GATE_SEED = 2
GATE_MINUTES = 5.0

#: The window benchmark: a ring of message-passing actors (lane_ring) —
#: state-disjoint, so it exercises the true windowed executor.
RING_ACTORS = 2048
RING_HORIZON = 0.1
RING_SEED = 7
RING_LANES = (2, 4)

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_kernel.json"


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _churn(lanes: int) -> dict:
    from repro.experiments.sweep import merge_results, run_cell

    cell = run_cell(
        "churn", GATE_SIZE, seed=GATE_SEED, sim_minutes=GATE_MINUTES,
        lanes=lanes,
    )
    merged = merge_results([cell], sim_minutes=GATE_MINUTES)
    return {
        "digest": merged["digest"],
        "events_processed": cell["result"]["heap"]["processed"],
        "wall_seconds": cell["perf"]["wall_seconds"],
        "events_per_second": cell["perf"]["events_per_second"],
    }


def _ring(lanes: int, backend: str) -> dict:
    from repro.sim.lanes import LanedSimulation, lane_ring

    sim = LanedSimulation(
        lanes, lane_ring(RING_ACTORS), lookahead=0.0002, seed=RING_SEED
    )
    start = time.perf_counter()
    doc = sim.run(RING_HORIZON, backend=backend)
    wall = time.perf_counter() - start
    events = sum(lr["events"] for lr in doc["lane_results"])
    return {
        "digest": doc["digest"],
        "windows": doc["windows"],
        "events": events,
        "wall_seconds": wall,
        "events_per_second": events / max(wall, 1e-9),
    }


def _interleaved(rounds: int = 3) -> tuple:
    """Best-of-N serial and 2-lane churn walls, alternating run order.

    Alternation plus best-of is what makes the ratio meaningful on a
    loaded machine: a background spike hits both configurations equally
    over the rounds instead of whichever happened to run first.
    """
    serial = None
    laned = None
    for round_idx in range(rounds):
        order = (1, 2) if round_idx % 2 == 0 else (2, 1)
        for lanes in order:
            entry = _churn(lanes)
            if lanes == 1:
                if serial is None or entry["wall_seconds"] < serial["wall_seconds"]:
                    serial = entry
            else:
                if laned is None or entry["wall_seconds"] < laned["wall_seconds"]:
                    laned = entry
    return serial, laned


def gate() -> int:
    baseline = json.loads(BASELINE.read_text())
    pinned = baseline.get("lanes")
    tolerance = float(os.environ.get("REPRO_LANES_TOLERANCE", "2.0"))
    speedup_target = float(os.environ.get("REPRO_LANES_SPEEDUP", "1.8"))
    cpus = _cpus()
    failures = []

    # 1. Exact-merge determinism across lane counts (includes the
    # interleaved overhead measurement for lanes 1 and 2).
    serial, laned2 = _interleaved()
    laned4 = _churn(4)
    print(
        f"lanes: churn {GATE_SIZE} machines x {GATE_MINUTES:g} sim-min: "
        f"serial {serial['wall_seconds']:.3f}s "
        f"({serial['events_per_second']:.0f} ev/s), "
        f"2 lanes {laned2['wall_seconds']:.3f}s, "
        f"4 lanes {laned4['wall_seconds']:.3f}s"
    )
    for name, entry in (("2 lanes", laned2), ("4 lanes", laned4)):
        if entry["digest"] != serial["digest"]:
            failures.append(
                f"{name} digest drifted from serial: {entry['digest']} != "
                f"{serial['digest']} (the exact-merge executor must "
                f"reproduce the serial total order bit for bit)"
            )
        if entry["events_processed"] != serial["events_processed"]:
            failures.append(
                f"{name} events_processed {entry['events_processed']} != "
                f"serial {serial['events_processed']}"
            )
    if not failures:
        print(
            f"lanes: determinism OK — digest {serial['digest'][:16]}…, "
            f"{serial['events_processed']} events at every lane count"
        )

    # 2. Serial path vs the pin (wall noise tolerance), and the
    # interleaved laned-overhead ratio.
    if pinned is not None:
        floor = pinned["inprocess"]["serial_wall_seconds"] * tolerance
        if serial["wall_seconds"] > floor:
            failures.append(
                f"serial wall {serial['wall_seconds']:.3f}s exceeds "
                f"{tolerance:g}x the pinned "
                f"{pinned['inprocess']['serial_wall_seconds']:.3f}s"
            )
    ratio = laned2["wall_seconds"] / max(serial["wall_seconds"], 1e-9)
    print(f"lanes: 2-lane/serial interleaved wall ratio {ratio:.3f}")
    # In-process laning trades batching against cross-lane broker chatter;
    # it must stay in the same ballpark as serial, not beat it (the mp
    # backend is where parallel speedup lives).
    if ratio > tolerance:
        failures.append(
            f"2-lane in-process overhead {ratio:.2f}x exceeds "
            f"{tolerance:g}x serial"
        )

    # 3. Windowed backend: serial == mp, then the conditional speedup.
    ring_serial = _ring(4, "serial")
    ring_mp = _ring(4, "mp")
    print(
        f"lanes: ring {RING_ACTORS} actors, 4 lanes, "
        f"{ring_serial['windows']} windows: "
        f"serial {ring_serial['wall_seconds']:.3f}s "
        f"({ring_serial['events_per_second']:.0f} ev/s), "
        f"mp {ring_mp['wall_seconds']:.3f}s "
        f"({ring_mp['events_per_second']:.0f} ev/s)"
    )
    if ring_mp["digest"] != ring_serial["digest"]:
        failures.append(
            f"windowed mp digest {ring_mp['digest']} != serial "
            f"{ring_serial['digest']} (backends must be byte-identical)"
        )
    if cpus >= 2:
        speedup = (
            ring_mp["events_per_second"] / ring_serial["events_per_second"]
        )
        print(f"lanes: mp speedup {speedup:.2f}x on {cpus} CPUs")
        if speedup < speedup_target:
            failures.append(
                f"mp speedup {speedup:.2f}x below the {speedup_target:g}x "
                f"target on {cpus} CPUs (REPRO_LANES_SPEEDUP overrides)"
            )
    else:
        print(
            f"lanes: SKIP speedup gate — host exposes {cpus} CPU; parallel "
            f"speedup is unobtainable here (determinism checks above still "
            f"ran; set REPRO_LANES_SPEEDUP on a multi-core host)"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("lanes: OK")
    return 1 if failures else 0


def pin() -> int:
    cpus = _cpus()
    serial, laned2 = _interleaved()
    laned4 = _churn(4)
    ring_serial = _ring(4, "serial")
    ring_mp = {
        str(n): _ring(n, "mp")["wall_seconds"] for n in RING_LANES
    }
    section = {
        "cpus": cpus,
        "gate_size": GATE_SIZE,
        "gate_seed": GATE_SEED,
        "gate_minutes": GATE_MINUTES,
        "inprocess": {
            "serial_wall_seconds": round(serial["wall_seconds"], 4),
            "serial_events_per_second": round(serial["events_per_second"]),
            "laned_wall_seconds": {
                "2": round(laned2["wall_seconds"], 4),
                "4": round(laned4["wall_seconds"], 4),
            },
            "events_processed": serial["events_processed"],
            "digest": serial["digest"],
            # Measured at refactor time against the pre-lane kernel via an
            # interleaved same-session comparison: parity within noise
            # (the gate's 5% budget).  The recurring gate compares
            # interleaved serial-vs-laned instead, which needs no stale
            # reference.
            "serial_overhead": "<=5% vs pre-lane kernel on this machine",
        },
        "windowed": {
            "actors": RING_ACTORS,
            "horizon": RING_HORIZON,
            "lanes": 4,
            "windows": ring_serial["windows"],
            "serial_wall_seconds": round(ring_serial["wall_seconds"], 4),
            "serial_events_per_second": round(
                ring_serial["events_per_second"]
            ),
            "mp_wall_seconds": {
                key: round(value, 4) for key, value in ring_mp.items()
            },
        },
    }
    document = json.loads(BASELINE.read_text())
    document["lanes"] = section
    BASELINE.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"pin: wrote lanes section to {BASELINE} "
        f"(cpus={cpus}, serial {serial['wall_seconds']:.3f}s, "
        f"2 lanes {laned2['wall_seconds']:.3f}s, "
        f"ring serial {ring_serial['wall_seconds']:.3f}s, "
        f"ring mp {ring_mp})"
    )
    return 0


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pin",
        action="store_true",
        help=f"regenerate the lanes section of {BASELINE.name}",
    )
    args = parser.parse_args()
    if args.pin:
        return pin()
    return gate()


if __name__ == "__main__":
    sys.exit(main())
