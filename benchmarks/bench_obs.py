"""Observability-overhead gate against the pinned ``BENCH_obs.json``.

Run as a script (``make bench-obs``).  Two modes:

* **Gate** (default) — replay the pinned 256-machine churn cell with full
  observability (exact metrics, every span kept) and with observability
  floored (``off`` metrics, all spans sampled out), then check:

  - *Isolation*: ``events_processed`` must be identical in both runs and
    equal to the pin.  The telemetry layer is bookkeeping on the side of
    the simulation — if turning it off changes the event count, it leaked
    into simulated behaviour and the determinism story is broken.
  - *Overhead*: full-observability wall-clock may exceed the obs-off floor
    by at most ``REPRO_OBS_TOLERANCE`` (default 0.10, i.e. tracing plus
    metrics together must cost under 10%).  Both sides are best-of-N on
    this machine, so the ratio is hardware-independent enough to gate on.
  - *Bounded memory*: a ``bounded``-mode registry fed 10k churning updates
    must retain no more than ``instruments x capacity`` series points
    (flat memory for any run length), while ``exact`` mode retains all.

* **Pin** (``--pin``) — measure every config (full, bounded, sampled, off)
  and rewrite ``BENCH_obs.json`` with walls and overhead ratios.

Configs are applied through the same environment variables users have
(``RB_METRICS_MODE``, ``RB_TRACE_SAMPLE``), set around an in-process
:func:`repro.experiments.sweep.run_cell` — the benchmark exercises exactly
the production wiring, not a special hook.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: The baseline cell the gate replays (matches the broker gate's cell).
GATE_SIZE = 256
GATE_SEED = 2

#: Best-of-N wall measurements per config (walls are noisy; mins are not).
REPEATS = 3

#: Observability configurations, applied via the public environment knobs.
CONFIGS = {
    "full": {"RB_METRICS_MODE": "exact", "RB_TRACE_SAMPLE": "1.0"},
    "bounded": {"RB_METRICS_MODE": "bounded", "RB_TRACE_SAMPLE": "1.0"},
    "sampled": {"RB_METRICS_MODE": "bounded", "RB_TRACE_SAMPLE": "0.1"},
    "off": {"RB_METRICS_MODE": "off", "RB_TRACE_SAMPLE": "0.0"},
}

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_obs.json"


def run_config(config: str, size: int, seed: int, sim_minutes: float) -> dict:
    """One churn cell under ``config``, reduced to the obs envelope."""
    from repro.experiments.sweep import run_cell

    overrides = CONFIGS[config]
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        cell = run_cell("churn", size, seed=seed, sim_minutes=sim_minutes)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return {
        "events_processed": cell["result"]["heap"]["processed"],
        "spans": cell["result"]["spans"],
        "grants": cell["result"]["grants"],
        "events_per_second": round(cell["perf"]["events_per_second"]),
        "wall_seconds": round(cell["perf"]["wall_seconds"], 4),
    }


def measure_all(names, size: int, seed: int, sim_minutes: float) -> dict:
    """Best-of-``REPEATS`` walls per config, with configs *interleaved*.

    Round-robin rather than block-per-config: machine noise drifts over
    seconds, and the gate is a ratio between configs, so both sides must
    sample the same noise regime.  Deterministic fields are identical
    across repeats; only the wall/throughput of the fastest run is kept.
    """
    best: dict = {}
    for _ in range(REPEATS):
        for name in names:
            entry = run_config(name, size, seed, sim_minutes)
            kept = best.get(name)
            if kept is None or entry["wall_seconds"] < kept["wall_seconds"]:
                best[name] = entry
    return best


def check_bounded_memory() -> list:
    """Bounded-mode registries must stay flat under unbounded churn."""
    from types import SimpleNamespace

    from repro.obs.metrics import MetricsRegistry

    failures = []
    clock = SimpleNamespace(now=0.0)
    capacity = 128
    bounded = MetricsRegistry(clock, mode="bounded", series_capacity=capacity)
    exact = MetricsRegistry(clock, mode="exact")
    updates = 10_000
    for i in range(updates):
        clock.now = float(i)
        for registry in (bounded, exact):
            registry.counter("churn.submits").inc()
            registry.gauge("churn.queue").set(i % 7)
            registry.histogram("churn.wait").observe(0.001 + (i % 100) / 10.0)
    ceiling = len(bounded.all_metrics()) * capacity
    retained = bounded.series_points()
    if retained > ceiling:
        failures.append(
            f"bounded registry retained {retained} series points after "
            f"{updates} updates; ceiling is instruments x capacity = {ceiling}"
        )
    if exact.series_points() < updates:
        failures.append(
            "exact registry lost samples; the bounded check is not "
            "measuring what it thinks it is"
        )
    wait = bounded.histogram("churn.wait")
    if wait.count != updates or wait.percentile(0.95) <= 0.0:
        failures.append(
            "bounded histogram lost its running aggregates or digest"
        )
    print(
        f"obs: bounded memory: {retained} points retained after {updates} "
        f"updates (ceiling {ceiling}); exact retains {exact.series_points()}"
    )
    return failures


def pin(sim_minutes: float) -> int:
    configs = measure_all(tuple(CONFIGS), GATE_SIZE, GATE_SEED, sim_minutes)
    for name, entry in configs.items():
        print(
            f"pin: {name:>8}: wall={entry['wall_seconds']:.3f}s "
            f"events={entry['events_processed']} spans={entry['spans']} "
            f"({entry['events_per_second']} ev/s)"
        )
    floor = configs["off"]["wall_seconds"]
    overhead = {
        name: round(entry["wall_seconds"] / max(floor, 1e-9) - 1.0, 4)
        for name, entry in configs.items()
        if name != "off"
    }
    for name, ratio in overhead.items():
        print(f"pin: {name} overhead vs off: {ratio:+.1%}")
    document = {
        "workload": "churn",
        "machines": GATE_SIZE,
        "seed": GATE_SEED,
        "sim_minutes": sim_minutes,
        "configs": configs,
        "overhead_vs_off": overhead,
    }
    BASELINE.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"pin: wrote {BASELINE}")
    return 0


def gate() -> int:
    baseline = json.loads(BASELINE.read_text())
    tolerance = float(os.environ.get("REPRO_OBS_TOLERANCE", "0.10"))
    minutes = baseline["sim_minutes"]

    best = measure_all(("full", "off"), GATE_SIZE, baseline["seed"], minutes)
    full, off = best["full"], best["off"]
    overhead = full["wall_seconds"] / max(off["wall_seconds"], 1e-9) - 1.0
    print(
        f"obs: {GATE_SIZE} machines x {minutes:g} sim-min: "
        f"full={full['wall_seconds']:.3f}s off={off['wall_seconds']:.3f}s "
        f"overhead {overhead:+.1%} (tolerance {tolerance:.0%})"
    )

    failures = []
    pinned_events = baseline["configs"]["off"]["events_processed"]
    if full["events_processed"] != off["events_processed"]:
        failures.append(
            f"observability leaked into the simulation: "
            f"{full['events_processed']} events with obs on vs "
            f"{off['events_processed']} with obs off"
        )
    if off["events_processed"] != pinned_events:
        failures.append(
            f"events_processed drifted: {off['events_processed']} != "
            f"baseline {pinned_events} (simulation behaviour changed; "
            f"rerun with --pin if intentional)"
        )
    if overhead > tolerance:
        failures.append(
            f"obs overhead regression: full observability costs "
            f"{overhead:+.1%} over the obs-off floor (budget {tolerance:.0%})"
        )
    failures.extend(check_bounded_memory())
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("obs: OK")
    return 1 if failures else 0


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pin",
        action="store_true",
        help=f"regenerate {BASELINE.name} instead of gating against it",
    )
    parser.add_argument(
        "--minutes",
        type=float,
        default=10.0,
        help="simulated minutes per cell when pinning (default 10)",
    )
    args = parser.parse_args()
    if args.pin:
        return pin(args.minutes)
    return gate()


if __name__ == "__main__":
    sys.exit(main())
