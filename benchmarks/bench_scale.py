"""Simulator scalability: wall-clock cost per simulated cluster size.

Not a paper artefact — this pins the *engineering* property that makes the
reproduction usable: the event-driven simulator handles clusters well beyond
the paper's 16 machines at interactive speeds, and its cost grows roughly
linearly with cluster size (the broker's event-driven scheduling avoids the
quadratic daemon-report x pending-request blow-up).
"""

import time

from repro.cluster import Cluster, ClusterSpec
from tests.broker.conftest import install_greedy


def _run_cluster_minutes(n_machines: int, sim_minutes: float) -> float:
    cluster = Cluster(ClusterSpec.uniform(n_machines, seed=2))
    svc = cluster.start_broker()
    svc.wait_ready()
    install_greedy(cluster)
    svc.submit(
        "n00", ["greedy", str(n_machines - 1)], rsl="+(adaptive)"
    )
    cluster.env.run(until=cluster.now + 5.0)
    # A sequential arrival every 30 simulated seconds keeps preemption and
    # re-expansion churning for the whole window.
    def arrivals():
        while True:
            yield cluster.env.timeout(30.0)
            svc.submit("n00", ["rsh", "anylinux", "compute", "12"], uid="s")

    cluster.env.process(arrivals())
    start = time.perf_counter()
    cluster.env.run(until=cluster.now + sim_minutes * 60.0)
    wall = time.perf_counter() - start
    cluster.assert_no_crashes()
    return wall


def bench_simulator_scalability(run_once):
    def experiment():
        return {
            n: _run_cluster_minutes(n, sim_minutes=10.0)
            for n in (8, 16, 32, 64)
        }

    walls = run_once(experiment)
    print("\n10 simulated minutes of churning cluster:")
    for n, wall in walls.items():
        print(f"  {n:3d} machines -> {wall:6.2f}s wall "
              f"({600.0 / wall:7.1f}x real time)")
    # Interactive even at 4x the paper's testbed...
    assert walls[64] < 60.0
    # ...and no quadratic blow-up: 8x the machines < ~20x the cost.
    assert walls[64] < 20.0 * max(walls[8], 0.05)
