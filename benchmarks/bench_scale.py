"""Simulator scalability: wall-clock cost per simulated cluster size.

Not a paper artefact — this pins the *engineering* property that makes the
reproduction usable: the event-driven simulator handles clusters well beyond
the paper's 16 machines at interactive speeds, and its cost grows roughly
linearly with cluster size (the broker's event-driven scheduling avoids the
quadratic daemon-report x pending-request blow-up).

The workload cell is shared with the sweep runner
(:mod:`repro.experiments.sweep`); ``python -m repro sweep --bench`` pins the
same numbers to ``BENCH_kernel.json``.
"""

from repro.experiments.sweep import run_cell


def _run_cluster_minutes(n_machines: int, sim_minutes: float) -> float:
    """Wall seconds for the churn workload (compatibility shim for docs)."""
    return _run_cell_minutes(n_machines, sim_minutes)["perf"]["wall_seconds"]


def _run_cell_minutes(n_machines: int, sim_minutes: float) -> dict:
    return run_cell("churn", n_machines, seed=2, sim_minutes=sim_minutes)


def bench_simulator_scalability(run_once):
    def experiment():
        return {
            n: _run_cell_minutes(n, sim_minutes=10.0)
            for n in (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)
        }

    cells = run_once(experiment)
    print("\n10 simulated minutes of churning cluster:")
    for n, cell in cells.items():
        perf, heap = cell["perf"], cell["result"]["heap"]
        wall = perf["wall_seconds"]
        print(
            f"  {n:3d} machines -> {wall:6.2f}s wall "
            f"({600.0 / wall:7.1f}x real time) "
            f"{perf['events_per_second']:8.0f} ev/s "
            f"{perf['spans_per_second']:7.1f} spans/s "
            f"heap high-water {heap['heap_high_water']:5d}"
        )
    walls = {n: cell["perf"]["wall_seconds"] for n, cell in cells.items()}
    # Interactive even at 64x the paper's testbed...
    assert walls[64] < 60.0
    assert walls[256] < 240.0
    assert walls[1024] < 600.0
    # ...usable at the partitioned-kernel sizes (relaxed: these runs move
    # millions of events; the point is they finish, not that they are fast)...
    assert walls[2048] < 1800.0
    assert walls[4096] < 3600.0
    # ...and no quadratic blow-up: 8x the machines < ~20x the cost.
    assert walls[64] < 20.0 * max(walls[8], 0.05)
    assert walls[256] < 20.0 * max(walls[32], 0.05)
    assert walls[1024] < 20.0 * max(walls[128], 0.05)
    assert walls[4096] < 20.0 * max(walls[512], 0.05)
    # Flat per-event cost: the broker's indexed scheduler keeps decision
    # cost independent of cluster size, so events/sec at 1024 machines
    # should hold near the 256-machine rate (1.5x bound absorbs wall-clock
    # noise; the interesting comparison prints above).
    per_event_256 = walls[256] / cells[256]["result"]["heap"]["processed"]
    per_event_1024 = walls[1024] / cells[1024]["result"]["heap"]["processed"]
    assert per_event_1024 < 1.5 * per_event_256
    # The lazy-deletion heap stays bounded: the high-water mark tracks the
    # live population (machines x a small constant), not total event churn.
    assert cells[256]["result"]["heap"]["heap_high_water"] < 50 * 256
    assert cells[1024]["result"]["heap"]["heap_high_water"] < 50 * 1024
    assert cells[4096]["result"]["heap"]["heap_high_water"] < 50 * 4096
