"""Kernel-performance smoke gate against the pinned ``BENCH_kernel.json``.

Run as a script (``make bench-smoke``).  Two checks:

* **Determinism** — the smoke cell's simulation-derived facts (events
  processed, heap high-water) must match the committed baseline exactly;
  these are hardware-independent, so any mismatch means kernel behaviour
  changed and the baseline must be regenerated deliberately
  (``python -m repro sweep --sizes 8,16,32,64,128,256,512,1024 --seeds 2
  --minutes 10 --bench BENCH_kernel.json``).
* **Performance** — wall-clock per simulated minute must stay within
  ``REPRO_BENCH_TOLERANCE`` (default 2.0x) of the baseline.  Wall-clock is
  machine-dependent; the generous tolerance absorbs hardware and CI-runner
  variance while still catching order-of-magnitude regressions.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

#: The baseline cell the smoke test replays (must exist in the bench file).
SMOKE_SIZE = 32
SMOKE_SEED = 2

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def main() -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.experiments.sweep import run_cell

    baseline = json.loads(BASELINE.read_text())
    pinned = baseline["sizes"][str(SMOKE_SIZE)]
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "2.0"))

    cell = run_cell(
        baseline["workload"],
        SMOKE_SIZE,
        seed=SMOKE_SEED,
        sim_minutes=baseline["sim_minutes"],
    )
    heap = cell["result"]["heap"]
    wall_per_min = cell["perf"]["wall_per_sim_minute"]
    print(
        f"smoke: {SMOKE_SIZE} machines x {baseline['sim_minutes']:g} sim-min: "
        f"{heap['processed']} events, high-water {heap['heap_high_water']}, "
        f"{wall_per_min:.4f}s wall per sim-minute "
        f"(baseline {pinned['wall_per_sim_minute']:.4f}s, "
        f"tolerance {tolerance:g}x)"
    )

    failures = []
    if heap["processed"] != pinned["events_processed"]:
        failures.append(
            f"events processed drifted: {heap['processed']} != baseline "
            f"{pinned['events_processed']} (kernel behaviour changed; "
            f"regenerate BENCH_kernel.json if intentional)"
        )
    if heap["heap_high_water"] != pinned["heap_high_water"]:
        failures.append(
            f"heap high-water drifted: {heap['heap_high_water']} != baseline "
            f"{pinned['heap_high_water']}"
        )
    if wall_per_min > pinned["wall_per_sim_minute"] * tolerance:
        failures.append(
            f"perf regression: {wall_per_min:.4f}s per sim-minute exceeds "
            f"{tolerance:g}x baseline {pinned['wall_per_sim_minute']:.4f}s"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
