"""Service-mode soak gate against the pinned ``BENCH_soak.json``.

Run as a script (``make soak-smoke``).  Two modes:

* **Gate** (default) — replay the pinned *smoke* soak (a scaled-down run
  of the full trace: same seed, same shape, fewer submissions) and check:

  - *Completion*: every submission drains, zero failures, zero stuck
    allocations after settle.
  - *Determinism*: the soak's simulation-derived counters (grants,
    recoveries, replayed records, compactions, journal bytes, finish
    time) must match the committed baseline exactly; a mismatch means
    broker behaviour changed and the baseline must be regenerated
    deliberately (``python benchmarks/bench_soak.py --pin``).
  - *Flat memory*: traced bytes per submission over the second half of
    the run must stay under ``BYTES_PER_SUBMISSION_BUDGET`` — the soak's
    whole reason to exist; a regression here is a service-mode leak.
  - *Bounded journal*: on-disk journal size must stay under
    ``JOURNAL_CEILING`` (compaction working) regardless of trace length.
  - *Performance*: submissions drained per wall-second must not regress
    by more than ``REPRO_SOAK_TOLERANCE`` (default 0.30) against the
    baseline.  Wall-clock is machine-dependent; regenerate the pin when
    moving the baseline to new hardware.

* **Pin** (``--pin``) — run the full soak (>=100k submissions) plus the
  smoke run and rewrite ``BENCH_soak.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_soak.json"

#: The full soak the pin records (the ISSUE's >=100k-submission service run).
FULL_SUBMISSIONS = 100_000

#: The scaled-down soak the CI gate replays.
SMOKE_SUBMISSIONS = 3_000

SEED = 1
MACHINES = 12
RESTARTS = 2
MEMORY_CHECKPOINTS = 20

#: Live traced bytes per submission allowed over the run's second half.
#: The soak's steady state measures well under 200; a breach means some
#: per-submission object survives its job.
BYTES_PER_SUBMISSION_BUDGET = 256.0

#: On-disk journal ceiling (chars): WAL + retained snapshot generations.
#: Compaction triggers at ``journal_compact_bytes`` (64 KiB), so total disk
#: should hover near two generations' worth regardless of trace length.
JOURNAL_CEILING = 262_144

#: Deterministic fields compared exactly between a run and the pin.
EXACT_FIELDS = (
    "completed",
    "failed",
    "grants",
    "revocations",
    "recoveries_from_journal",
    "replayed_records",
    "recovery_conflicts",
    "journal_compactions",
    "journal_bytes",
    "stuck_allocations",
    "stuck_events",
    "journal_lag_events",
    "finished_at",
)


def measure(submissions: int, verbose: bool = False) -> dict:
    """One soak run reduced to its gate envelope."""
    from repro.experiments import run_soak

    progress = None
    if verbose:

        def progress(completed, total):
            print(f"  {completed}/{total} submissions completed", flush=True)

    start = time.perf_counter()
    report = run_soak(
        seed=SEED,
        machines=MACHINES,
        submissions=submissions,
        restarts=RESTARTS,
        memory_checkpoints=MEMORY_CHECKPOINTS,
        progress=progress,
    )
    wall = time.perf_counter() - start

    samples = report.memory_samples
    half = len(samples) // 2
    span = samples[-1][0] - samples[half][0]
    growth = samples[-1][1] - samples[half][1]
    bytes_per_submission = growth / max(span, 1)
    return {
        "completed": report.completed,
        "failed": report.failed,
        "grants": report.grants,
        "revocations": report.revocations,
        "recoveries_from_journal": int(report.recoveries_from_journal),
        "replayed_records": int(report.replayed_records),
        "recovery_conflicts": int(report.recovery_conflicts),
        "journal_compactions": report.journal_compactions,
        "journal_bytes": report.journal_bytes,
        "stuck_allocations": report.stuck_allocations,
        "stuck_events": report.stuck_events,
        "journal_lag_events": report.journal_lag_events,
        "finished_at": report.finished_at,
        "submissions": submissions,
        "bytes_per_submission": round(bytes_per_submission, 1),
        "peak_traced_bytes": max(traced for _, traced in samples),
        "submissions_per_second": round(submissions / max(wall, 1e-9)),
        "wall_seconds": round(wall, 4),
    }


def _print_entry(tag: str, entry: dict) -> None:
    print(
        f"{tag}: {entry['submissions']} submissions: "
        f"{entry['completed']} completed, "
        f"{entry['grants']} grants, "
        f"{entry['recoveries_from_journal']} journal recoveries "
        f"({entry['replayed_records']} records), "
        f"{entry['journal_compactions']} compactions, "
        f"journal {entry['journal_bytes']} B, "
        f"{entry['bytes_per_submission']:.1f} B/submission, "
        f"{entry['submissions_per_second']} submissions/s"
    )


def pin(verbose: bool = False) -> int:
    smoke = measure(SMOKE_SUBMISSIONS, verbose=verbose)
    _print_entry("pin smoke", smoke)
    full = measure(FULL_SUBMISSIONS, verbose=verbose)
    _print_entry("pin full", full)
    document = {
        "seed": SEED,
        "machines": MACHINES,
        "restarts": RESTARTS,
        "smoke": smoke,
        "full": full,
    }
    BASELINE.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"pin: wrote {BASELINE}")
    return 0


def gate() -> int:
    baseline = json.loads(BASELINE.read_text())
    pinned = baseline["smoke"]
    tolerance = float(os.environ.get("REPRO_SOAK_TOLERANCE", "0.30"))

    entry = measure(SMOKE_SUBMISSIONS)
    _print_entry("soak", entry)

    failures = []
    if entry["completed"] != entry["submissions"] or entry["failed"]:
        failures.append(
            f"drain failed: {entry['completed']}/{entry['submissions']} "
            f"completed, {entry['failed']} failed"
        )
    if entry["stuck_allocations"]:
        failures.append(
            f"{entry['stuck_allocations']} machine(s) still allocated after "
            f"settle — an allocation leaked through the soak"
        )
    for field in EXACT_FIELDS:
        if entry[field] != pinned[field]:
            failures.append(
                f"{field} drifted: {entry[field]} != baseline "
                f"{pinned[field]} (soak behaviour changed; rerun with "
                f"--pin if intentional)"
            )
    if entry["bytes_per_submission"] > BYTES_PER_SUBMISSION_BUDGET:
        failures.append(
            f"memory not flat: {entry['bytes_per_submission']:.1f} traced "
            f"bytes/submission over the second half exceeds the "
            f"{BYTES_PER_SUBMISSION_BUDGET:.0f} B budget — a service-mode "
            f"leak"
        )
    if entry["journal_bytes"] > JOURNAL_CEILING:
        failures.append(
            f"journal unbounded: {entry['journal_bytes']} B on disk exceeds "
            f"the {JOURNAL_CEILING} B ceiling — compaction is not keeping up"
        )
    floor = pinned["submissions_per_second"] * (1.0 - tolerance)
    if entry["submissions_per_second"] < floor:
        failures.append(
            f"throughput regression: {entry['submissions_per_second']} "
            f"submissions/s is more than {tolerance:.0%} below baseline "
            f"{pinned['submissions_per_second']}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("soak: OK (drained, deterministic, flat memory, bounded journal)")
    return 1 if failures else 0


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pin",
        action="store_true",
        help=f"regenerate {BASELINE.name} instead of gating against it",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print drain progress"
    )
    args = parser.parse_args()
    if args.pin:
        return pin(verbose=args.verbose)
    return gate()


if __name__ == "__main__":
    sys.exit(main())
