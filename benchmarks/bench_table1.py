"""Regenerates paper Table 1 (rsh vs rsh' micro-benchmarks)."""

from repro.experiments import run_table1


def bench_table1(run_once):
    table = run_once(run_table1)
    print()
    print(table)

    rsh_null = table.value("rsh n01 null")
    rshp_null = table.value("rsh' n01 null")
    any_null = table.value("rsh' anylinux null")
    rsh_loop = table.value("rsh n01 loop")
    rshp_loop = table.value("rsh' n01 loop")
    any_loop = table.value("rsh' anylinux loop")

    # Paper: plain rsh ~0.3 s; the rsh' overhead is ~0.3 s, "hardly
    # noticeable by users"; anylinux costs about the same as a named host.
    assert 0.2 <= rsh_null <= 0.45
    assert 0.15 <= rshp_null - rsh_null <= 0.45
    assert abs(any_null - rshp_null) <= 0.2
    # loop rows = the corresponding null row + the ~6.5 s burst.
    for null_t, loop_t in [
        (rsh_null, rsh_loop),
        (rshp_null, rshp_loop),
        (any_null, any_loop),
    ]:
        assert 6.0 <= loop_t - null_t <= 7.0
