"""Regenerates paper Table 2 (reallocation performance)."""

from repro.experiments import run_table2


def bench_table2(run_once):
    table = run_once(run_table2)
    print()
    print(table)

    rsh_null = table.value("rsh n01 null")
    any_null = table.value("rsh' anylinux null")
    rsh_loop = table.value("rsh n01 loop")
    any_loop = table.value("rsh' anylinux loop")

    # Plain rsh is oblivious to the machine being busy.
    assert 0.2 <= rsh_null <= 0.45
    # "A reallocation completes in approximately 1 second."
    realloc = any_null - 0.65  # minus the Table-1 anylinux baseline
    assert 0.7 <= realloc <= 1.3
    # The crossover the paper highlights: for compute-bound jobs the broker
    # wins despite the reallocation, because the machine is cleared first.
    assert any_loop < rsh_loop
    # Plain rsh shares the CPU with the Calypso worker: ~2x the loop time.
    assert rsh_loop >= 1.8 * 6.5
    # Brokered loop = reallocation + a full-speed loop.
    assert any_loop <= any_null + 6.5 + 0.2
