"""Regenerates paper Table 3 (adding resources to PVM and LAM programs)."""

from repro.experiments import run_table3


def bench_table3(run_once):
    table = run_once(run_table3)
    print()
    print(table)

    host_pvm = table.meta["pvm_host_overhead_per_machine"]
    host_lam = table.meta["lam_host_overhead_per_machine"]
    any_pvm = table.meta["pvm_anylinux_overhead_per_machine"]
    any_lam = table.meta["lam_anylinux_overhead_per_machine"]

    # "When the machines are explicitly named, ResourceBroker introduces
    # less than 0.3 milliseconds of overhead per machine."
    assert all(0.0 <= o < 0.0003 for o in host_pvm + host_lam)
    # "Approximately 1.2 seconds overhead for PVM and 1.4 seconds for LAM."
    assert all(0.9 <= o <= 1.5 for o in any_pvm)
    assert all(1.1 <= o <= 1.7 for o in any_lam)
    # LAM's module path is consistently costlier than PVM's.
    assert all(l > p for l, p in zip(any_lam, any_pvm))
    # Baseline growth is roughly linear in the number of machines.
    pvm_rsh = [table.value("pvm w/ rsh", c) for c in table.columns[1:]]
    increments = [b - a for a, b in zip(pvm_rsh, pvm_rsh[1:])]
    assert max(increments) - min(increments) < 0.1
