"""Regenerates the paper's closing §6.2 experiment: five-hour utilization.

"After five hours, the total detected idleness ... was less than 1%.
... it shows that in the presence of adaptive programs, a resource manager
can boost utilization of a network to above 99%."
"""

from repro.experiments import run_utilization

#: The paper's full horizon.  (The simulation runs ~5h of cluster time in
#: well under a minute of wall clock.)
FIVE_HOURS = 5 * 3600.0


def bench_utilization(run_once):
    table = run_once(run_utilization, horizon=FIVE_HOURS)
    print()
    print(table)

    idleness = table.meta["idleness"]
    assert 0.0 <= idleness < 0.01, f"idleness {idleness:.4%} >= 1%"
    # Every worker machine individually stayed near-fully busy.
    for host, busy in table.meta["utilization_by_host"].items():
        assert busy > 0.97, f"{host} utilization {busy:.4f}"
    # The arrival script really ran: 5 h / 100 s - 1 jobs.
    assert table.value("sequential jobs submitted") == 179
