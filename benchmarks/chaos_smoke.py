"""Broker-crash chaos smoke gate (``make chaos-smoke``).

Runs the seeded robustness scenario that exercises every recovery
mechanism at once — machine crashes, a partition, a daemon kill, and a
broker SIGKILL followed by a restart — and gates on three facts:

* **Completion** — every submitted job finishes despite the faults.
* **Clean reclamation** — no machine is left allocated at the end: every
  lease was either re-adopted by the restarted broker or expired and
  reclaimed.  A non-zero count means a grant leaked through the crash.
* **Determinism** — the run is replayed with the same seed and both the
  rendered table and the SHA-256 digest of the span trace must match
  byte-for-byte.  Recovery is event-driven, so any nondeterminism here is
  a real bug, not runner noise.
"""

from __future__ import annotations

import hashlib
import sys
import tempfile
from pathlib import Path

#: Seed for the smoke scenario (one broker crash+restart on top of the
#: default machine-level fault schedule).
SMOKE_SEED = 1


def _run(tag: str):
    from repro.experiments import run_chaos
    from repro.obs import TraceCollector

    collector = TraceCollector()
    table = run_chaos(seed=SMOKE_SEED, broker_crashes=1, trace=collector)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"chaos-{tag}.jsonl"
        collector.write(str(path))
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
    return table, digest


def main() -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

    table, digest = _run("a")
    print(table)
    print(f"\ntrace digest: {digest}")

    failures = []
    if table.meta["completed"] != table.meta["jobs"]:
        failures.append(
            f"only {table.meta['completed']}/{table.meta['jobs']} jobs "
            f"completed under the broker-crash schedule"
        )
    if table.meta["stuck_allocations"] != 0:
        failures.append(
            f"{table.meta['stuck_allocations']} machine(s) still allocated "
            f"at the end — a lease leaked through the broker crash"
        )

    replay, replay_digest = _run("b")
    if str(replay) != str(table):
        failures.append("replay table differs from first run (same seed)")
    if replay_digest != digest:
        failures.append(
            f"replay trace digest {replay_digest} != {digest} — "
            f"recovery is nondeterministic"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("chaos-smoke: OK (complete, clean, deterministic)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
