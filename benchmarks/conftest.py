"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
pytest-benchmark timer measures the wall-clock cost of the whole experiment
harness (the simulation is deterministic, so a single round suffices); the
*reproduced results* are printed to stdout and pinned by shape assertions —
run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
