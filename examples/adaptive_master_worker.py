#!/usr/bin/env python
"""An adaptive Calypso computation sharing a cluster with sequential jobs.

This is the paper's motivating scenario end to end: an adaptive master/worker
computation (Calypso-style: eager scheduling, anonymous workers, revocable at
any time) soaks up the whole cluster; sequential jobs arrive, each taking a
machine away just-in-time; when they finish, the adaptive job flows back.

Watch the holdings timeline: the Calypso job breathes around the sequential
jobs without any code in it ever having heard of ResourceBroker.

Run:  python examples/adaptive_master_worker.py
"""

from repro.cluster import Cluster, ClusterSpec


def main() -> None:
    cluster = Cluster(ClusterSpec.uniform(6, seed=7))
    service = cluster.start_broker()
    service.wait_ready()

    # A long adaptive computation: 600 steps x 8 CPU-seconds, wants 5 workers.
    calypso = service.submit(
        "n00", ["calypso", "600", "8.0", "5"], rsl="+(adaptive)", uid="cal"
    )
    cluster.env.run(until=cluster.now + 5.0)
    cal_job = calypso.job_record()
    print(f"calypso job {cal_job.jobid} holds {service.holdings()[cal_job.jobid]}")

    # Three sequential jobs arrive over the next minute.
    for delay, dur in [(5.0, 20.0), (10.0, 35.0), (18.0, 15.0)]:
        cluster.env.run(until=cluster.now + delay)
        service.submit(
            "n00", ["rsh", "anylinux", "compute", str(dur)], uid="seq"
        )
        print(f"t={cluster.now:7.2f}  sequential job submitted ({dur:.0f}s)")

    # Sample the holdings every 10 seconds for two minutes.
    print("\ntime     calypso-holdings        pending")
    for _ in range(12):
        cluster.env.run(until=cluster.now + 10.0)
        holdings = service.holdings().get(cal_job.jobid, [])
        print(
            f"{cluster.now:7.2f}  {len(holdings)} machines "
            f"{holdings!s:<24} {len(service.state.pending)}"
        )

    revokes = service.events_of("revoke")
    regrants = [
        e
        for e in service.events_of("grant")
        if e["jobid"] == cal_job.jobid
    ]
    print(f"\nrevocations: {len(revokes)}, grants to calypso: {len(regrants)}")
    print("the adaptive job lost machines to each sequential job and won "
          "them back afterwards — zero lines of resource-management code "
          "in the application.")
    cluster.assert_no_crashes()


if __name__ == "__main__":
    main()
