#!/usr/bin/env python
"""Writing a real adaptive application against the Calypso runtime API.

A two-phase computation (square a range in parallel, then sum partial
blocks), written like a Calypso program: sequential code between parallel
steps, a persistent adaptive worker pool, custom worker code computing real
results — and *zero* resource management in the application.  Mid-run, a
sequential job preempts one of its machines; the phase still completes with
every result intact (eager scheduling + just-in-time reacquisition).

Run:  python examples/calypso_application.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.systems.calypso import CalypsoRuntime, ParallelStep


def install_square_worker(cluster):
    @cluster.system_bin.register("squareworker")
    def squareworker(proc):
        from repro.os.errors import ConnectionClosed
        from repro.sim.process import Interrupt

        try:
            conn = yield proc.connect(proc.argv[1], int(proc.argv[2]))
            conn.send({"type": "worker_hello", "host": proc.machine.name})
            while True:
                msg = yield conn.recv()
                if msg.get("type") != "assign":
                    return 0
                yield proc.compute(float(msg["work"]))
                lo, hi = msg["payload"]
                conn.send(
                    {
                        "type": "result",
                        "step": msg["step"],
                        "value": sum(x * x for x in range(lo, hi)),
                    }
                )
        except (ConnectionClosed, Interrupt):
            return 0


def main() -> None:
    cluster = Cluster(ClusterSpec.uniform(5, seed=4))
    install_square_worker(cluster)
    service = cluster.start_broker()
    service.wait_ready()

    outcome = {}

    @cluster.system_bin.register("sum-of-squares")
    def app(proc):
        runtime = CalypsoRuntime(
            proc, target_workers=4, worker_program="squareworker"
        )
        runtime.start()
        # Phase 1: 12 blocks of [lo, hi) ranges, ~2 CPU-seconds each.
        blocks = [(i * 1000, (i + 1) * 1000) for i in range(12)]
        partials = yield from runtime.run_phase(
            [ParallelStep(work=2.0, payload=b) for b in blocks]
        )
        outcome["partials"] = partials
        # Sequential section: combine.
        total = sum(partials)
        # Phase 2: verify by re-summing two halves.
        halves = yield from runtime.run_phase(
            [
                ParallelStep(work=2.0, payload=(0, 6000)),
                ParallelStep(work=2.0, payload=(6000, 12000)),
            ]
        )
        runtime.shutdown()
        outcome["total"] = total
        outcome["check"] = sum(halves)
        return 0

    job = service.submit("n00", ["sum-of-squares"], rsl="+(adaptive)")

    # Mid-run, someone needs a machine for 10 seconds.
    def intruder():
        yield cluster.env.timeout(6.0)
        print(f"t={cluster.now:6.2f}  sequential job arrives (preempts one "
              "worker machine)")
        service.submit("n00", ["rsh", "anylinux", "compute", "10"], uid="seq")

    cluster.env.process(intruder())
    code = job.wait()

    expected = sum(x * x for x in range(12000))
    print(f"\napp exit={code}")
    print(f"12 partial sums -> total = {outcome['total']}")
    print(f"2-half check    -> total = {outcome['check']}")
    print(f"ground truth    -> total = {expected}")
    assert outcome["total"] == outcome["check"] == expected
    revs = len(service.events_of("revoke"))
    print(f"\nrevocations during the run: {revs} — results intact anyway "
          "(eager scheduling re-ran the lost step)")
    cluster.assert_no_crashes()


if __name__ == "__main__":
    main()
