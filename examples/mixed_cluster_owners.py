#!/usr/bin/env python
"""Private machines, owner priority and the default policy over a workday.

The paper's default policy: private machines go only to adaptive jobs, and
the owner has absolute priority — "adaptive jobs running on a privately
owned machine can be deallocated once the owner of the machine returns".

This example runs a two-hour slice of a mixed cluster (2 public lab machines
+ 3 private workstations whose owners come and go) under an adaptive PLinda
bag-of-tasks job, and prints every owner-driven revocation.

Run:  python examples/mixed_cluster_owners.py
"""

from repro.cluster import Cluster, ClusterSpec, MachineSpec


def main() -> None:
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="lab0"),
            MachineSpec(name="lab1"),
            MachineSpec(name="ws-ann", private_owner="ann"),
            MachineSpec(name="ws-bob", private_owner="bob"),
            MachineSpec(name="ws-cho", private_owner="cho"),
        ],
        seed=11,
    )
    cluster = Cluster(spec)
    service = cluster.start_broker()
    service.wait_ready()

    # Owners alternate away (mean 20 min) / at-console (mean 10 min).
    for host in ("ws-ann", "ws-bob", "ws-cho"):
        cluster.add_owner_activity(
            host, mean_away=1200.0, mean_present=600.0
        )

    # A large adaptive bag-of-tasks job submitted from lab0.
    handle = service.submit(
        "lab0", ["plinda", "4000", "20.0", "4"], rsl="+(adaptive)", uid="sci"
    )
    cluster.env.run(until=cluster.now + 5.0)
    job = handle.job_record()

    horizon = cluster.now + 2 * 3600.0
    next_sample = cluster.now
    print("time      holdings                         owners at console")
    while cluster.now < horizon and handle.proc.is_alive:
        cluster.env.run(until=min(next_sample, horizon))
        next_sample += 300.0
        holdings = service.holdings().get(job.jobid, [])
        at_console = [
            m.owner
            for m in cluster.machines.values()
            if m.console_active
        ]
        print(
            f"{cluster.now:8.1f}  {','.join(holdings) or '-':<32} "
            f"{','.join(sorted(at_console)) or '-'}"
        )

    reclaims = service.events_of("owner_reclaim")
    print(f"\nowner-priority revocations in the window: {len(reclaims)}")
    for event in reclaims:
        print(f"  t={event['time']:9.2f}  {event['host']} reclaimed from "
              f"job {event['jobid']}")
    print("\nthe adaptive job used the private workstations whenever their "
          "owners were away and was moved off within seconds of each return.")
    cluster.assert_no_crashes()


if __name__ == "__main__":
    main()
