#!/usr/bin/env python
"""An unmodified self-scheduling MPI program on just-in-time machines.

The paper's opening example of an adaptive program is the "self-scheduling
MPI program".  Here one runs, end to end, over LAM under ResourceBroker:

1. a LAM universe is submitted as a managed job (``(module="lam")``);
2. the user grows it with ``lamgrow anylinux`` — phase I fails by design,
   phase II feeds LAM the broker-chosen host names;
3. ``mpirun`` places a task farm across the universe; killed workers just
   mean requeued tasks.

Run:  python examples/mpi_task_farm.py
"""

from repro.cluster import Cluster, ClusterSpec


def universe(cluster, uid):
    fs = cluster.machine("n00").fs
    path = f"/home/{uid}/.lam_nodes"
    return fs.read_lines(path) if fs.exists(path) else []


def main() -> None:
    cluster = Cluster(ClusterSpec.uniform(5, seed=9))
    service = cluster.start_broker()
    service.wait_ready()

    service.submit("n00", ["lam"], rsl='+(module="lam")', uid="mia")
    cluster.env.run(until=cluster.now + 3.0)
    print(f"LAM universe: {universe(cluster, 'mia')}")

    print("\ngrowing with three broker-chosen machines (lamgrow anylinux)...")
    for _ in range(3):
        grow = cluster.run_command("n00", ["lamgrow", "anylinux"], uid="mia")
        cluster.env.run(until=grow.terminated)
    while len(universe(cluster, "mia")) < 4:
        cluster.env.run(until=cluster.now + 0.5)
    print(f"LAM universe: {universe(cluster, 'mia')}")

    print("\nrunning: mpirun the task farm (24 tasks x 2 CPU-seconds)")
    t0 = cluster.now
    farm = cluster.run_command("n00", ["mpi_farm", "24", "2.0"], uid="mia")
    cluster.env.run(until=farm.terminated)
    elapsed = cluster.now - t0
    print(f"farm finished: exit={farm.exit_code}, elapsed={elapsed:.2f}s "
          f"(ideal on 4 machines: {24 * 2.0 / 4:.0f}s of compute)")
    cluster.assert_no_crashes()


if __name__ == "__main__":
    main()
