#!/usr/bin/env python
"""Mechanism/policy separation in action: swap the allocation policy.

The paper's design goal 5: "Mechanism and policy are separated, making the
latter an easily plug-in module."  This example runs the same workload —
sequential jobs arriving while an adaptive computation holds the cluster —
under three interchangeable policies and compares the sequential jobs'
turnaround times.  Not one line of broker/mechanism code differs between
runs.

Run:  python examples/policy_comparison.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.policy import DefaultPolicy, FifoPolicy, RandomIdlePolicy


def run_workload(policy) -> dict:
    cluster = Cluster(ClusterSpec.uniform(5, seed=21))
    service = cluster.start_broker(policy=policy)
    service.wait_ready()

    # A finite adaptive job holding everything (~200 s of remaining work).
    service.submit(
        "n00", ["calypso", "160", "5.0", "4"], rsl="+(adaptive)", uid="cal"
    )
    cluster.env.run(until=cluster.now + 5.0)

    turnarounds = []
    for _ in range(3):
        t0 = cluster.now
        seq = service.submit("n00", ["rsh", "anylinux", "compute", "5.0"])
        cluster.env.run(until=seq.proc.terminated)
        turnarounds.append(cluster.now - t0)
        cluster.env.run(until=cluster.now + 2.0)
    return {
        "policy": policy.name,
        "turnarounds": turnarounds,
        "revocations": len(service.events_of("revoke")),
    }


def main() -> None:
    print(f"{'policy':<10} {'seq turnarounds (s)':<28} revocations")
    for policy in (DefaultPolicy(), FifoPolicy(), RandomIdlePolicy(seed=4)):
        result = run_workload(policy)
        times = "  ".join(f"{t:6.2f}" for t in result["turnarounds"])
        print(f"{result['policy']:<10} {times:<28} {result['revocations']}")
    print(
        "\ndefault preempts the adaptive job: every sequential job runs "
        "after a ~1.6 s reallocation.\nfifo/random never preempt: the first "
        "arrival waits for the adaptive job to finish\n(the later ones find "
        "the machines already free)."
    )


if __name__ == "__main__":
    main()
