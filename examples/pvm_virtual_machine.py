#!/usr/bin/env python
"""Growing an unmodified PVM virtual machine through the broker.

Demonstrates the external-module mechanism (paper §5.3, Figure 6): PVM
refuses machines it did not ask for, so redirecting its rsh is not enough.
Instead:

  phase I  — the user types ``pvm> add anylinux``; the intercepted rsh'
             reports the request to the broker and *fails*; PVM shrugs
             (a failed add is ordinary);
  phase II — the broker-chosen machine's name is fed back to PVM through the
             five-line ``pvm_grow`` script (it writes ``add n0X`` into
             ~/.pvmrc and opens a console), so PVM asks for the real host
             itself and happily accepts the slave daemon.

Run:  python examples/pvm_virtual_machine.py
"""

from repro.cluster import Cluster, ClusterSpec


def vm_membership(cluster, uid):
    fs = cluster.machine("n00").fs
    path = f"/home/{uid}/.pvm_hosts"
    return fs.read_lines(path) if fs.exists(path) else []


def main() -> None:
    cluster = Cluster(ClusterSpec.uniform(5, seed=3))
    service = cluster.start_broker()
    service.wait_ready()

    # Submit the PVM console as a managed job with the pvm module.
    service.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    cluster.env.run(until=cluster.now + 3.0)
    print(f"virtual machine: {vm_membership(cluster, 'pat')}")

    print("\nuser: pvm> add anylinux anylinux")
    add = cluster.run_command(
        "n00", ["pvm", "add", "anylinux", "anylinux"], uid="pat"
    )
    cluster.env.run(until=add.terminated)
    print(f"console exit={add.exit_code} (phase I: the adds 'failed' — "
          "that is the protocol working)")

    for _ in range(10):
        cluster.env.run(until=cluster.now + 1.0)
        members = vm_membership(cluster, "pat")
        print(f"t={cluster.now:7.2f}  virtual machine: {members}")
        if len(members) == 3:
            break

    print("\nbroker log of the two-phase exchange:")
    for event in service.events:
        if event["event"] in ("machine_request", "grant", "released"):
            fields = {
                k: v for k, v in event.items() if k not in ("event", "time")
            }
            print(f"  t={event['time']:8.3f}  {event['event']:<16} {fields}")

    slaves = [
        p
        for m in cluster.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "pvmd" and "-slave" in p.argv
    ]
    for slave in slaves:
        print(f"slave pvmd on {slave.machine.name}, parent="
              f"{slave.parent.argv[0]} (wrapped by a subapp for revocability)")
    cluster.assert_no_crashes()


if __name__ == "__main__":
    main()
