#!/usr/bin/env python
"""Quickstart: just-in-time allocation of one sequential job.

Builds a four-machine cluster, overlays ResourceBroker, and submits

    app  rsh anylinux loop

— a user asking for "any Linux machine" without naming one.  The broker's
interposed rsh' turns the symbolic name into a just-in-time allocation; a
subapp monitors the remote process; everything is released when it exits.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster, ClusterSpec


def main() -> None:
    cluster = Cluster(ClusterSpec.uniform(4, seed=42))
    service = cluster.start_broker()
    service.wait_ready()
    print(f"broker ready at t={cluster.now:.3f}s on {service.broker_host}; "
          f"managing {len(service.managed_hosts)} machines")

    t0 = cluster.now
    handle = service.submit("n00", ["rsh", "anylinux", "loop"], uid="alice")
    code = handle.wait()
    print(f"job finished: exit={code}, elapsed={cluster.now - t0:.3f}s "
          f"(loop is a ~6.5s CPU burst; the rest is allocation protocol)")

    # Give the broker an instant to process the job-done notification.
    cluster.env.run(until=cluster.now + 0.5)

    print("\nbroker event log:")
    for event in service.events:
        fields = {k: v for k, v in event.items() if k not in ("event", "time")}
        print(f"  t={event['time']:8.3f}  {event['event']:<16} {fields}")

    job = handle.job_record()
    print(f"\njob record: user={job.user} adaptive={job.adaptive} "
          f"done={job.done}")
    print(f"machines allocated now: {service.holdings() or 'none'}")
    cluster.assert_no_crashes()


if __name__ == "__main__":
    main()
