#!/usr/bin/env python
"""Regenerate every table and figure from the paper's evaluation (§6).

Run:  python examples/reproduce_paper.py [--quick]

``--quick`` shortens the five-hour utilization run to 30 simulated minutes.
"""

import sys

from repro.experiments import (
    run_fig7,
    run_table1,
    run_table2,
    run_table3,
    run_utilization,
)


def main() -> None:
    quick = "--quick" in sys.argv

    print(run_table1())
    print()
    print(run_table2())
    print()
    print(run_table3())
    print()
    print(run_fig7())
    print()
    horizon = 1800.0 if quick else 5 * 3600.0
    print(run_utilization(horizon=horizon))


if __name__ == "__main__":
    main()
