"""repro — ResourceBroker (IPPS 1999) over a deterministic cluster simulator.

Reproduction of Baratloo, Itzkovitz, Kedem & Zhao, *Mechanisms for
Just-in-Time Allocation of Resources to Adaptive Parallel Programs*.

Public API tour
---------------
>>> from repro import Cluster, ClusterSpec
>>> cluster = Cluster(ClusterSpec.uniform(4))
>>> service = cluster.start_broker()
>>> service.wait_ready()
>>> handle = service.submit("n00", ["rsh", "anylinux", "loop"])
>>> handle.wait()
0

Layers (bottom up): :mod:`repro.sim` (DES kernel), :mod:`repro.os`
(machines/processes/signals), :mod:`repro.cluster` (LAN + builder),
:mod:`repro.rsh` (commodity remote shell), :mod:`repro.systems`
(PVM/LAM/Calypso/PLinda substrates), :mod:`repro.broker` (ResourceBroker),
:mod:`repro.policy` (pluggable allocation policies), :mod:`repro.rsl`
(specification language), :mod:`repro.experiments` (the paper's tables and
figures).
"""

from repro.calibration import DEFAULT as DEFAULT_CALIBRATION
from repro.calibration import Calibration
from repro.cluster import Cluster, ClusterSpec, MachineSpec

__version__ = "1.0.0"

__all__ = [
    "Calibration",
    "Cluster",
    "ClusterSpec",
    "DEFAULT_CALIBRATION",
    "MachineSpec",
    "__version__",
]
