"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``reproduce [--quick]``
    Regenerate every table and figure from the paper's evaluation.
``table1 | table2 | table3 | fig7 | utilization``
    Regenerate one artefact.
``demo``
    A 90-second tour: an adaptive job breathing around sequential arrivals,
    finished off with the allocation Gantt chart.
``chaos [--seed N]``
    Robustness capstone: a mixed workload under a seeded fault schedule
    (crashes, partitions, lost heartbeats); exits non-zero unless every job
    completes.  ``--standby`` swaps the crash/restart recovery path for
    warm-standby failover (WAL shipping, fenced promotion, zero double
    grants).  ``--shards N`` runs the federated control plane instead:
    N durable broker shards with cross-shard lease borrowing under a
    shard-broker crash and an inter-shard link partition.
``sweep [--workers N]``
    Fan a deterministic (seed x cluster-size x workload) simulation grid
    across worker processes; merged results are byte-identical for any
    worker count (see :mod:`repro.experiments.sweep`).
``slo [--minutes M]``
    Run the churn workload under a health monitor and print the health and
    SLO reports (grant-wait p95, zero stuck allocations); exits non-zero
    on any violated objective.
``soak [--submissions N]``
    Service-mode soak: the durable (journaled) broker under a large
    diurnal arrival trace with mid-run crash/restarts; exits non-zero
    unless the trace drains with zero stuck allocations.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Shared help text for every subcommand's ``--trace`` option.
_TRACE_HELP = (
    "export the run's span trace to PATH "
    "(.jsonl for JSON Lines, anything else for Chrome trace_event "
    "format loadable in ui.perfetto.dev)"
)


def _collector(args):
    """A TraceCollector when ``--trace`` was given, else None."""
    if getattr(args, "trace", None) is None:
        return None
    from repro.obs import TraceCollector

    return TraceCollector()


def _write_collected(args, collector) -> None:
    if collector is not None:
        collector.write(args.trace)
        print(f"\ntrace written to {args.trace} (open in ui.perfetto.dev)")


def _cmd_reproduce(args) -> int:
    from repro.experiments import (
        run_fig7,
        run_table1,
        run_table2,
        run_table3,
        run_utilization,
    )

    collector = _collector(args)
    print(run_table1(trace=collector))
    print()
    print(run_table2(trace=collector))
    print()
    print(run_table3(trace=collector))
    print()
    print(run_fig7(trace=collector))
    print()
    horizon = 1800.0 if args.quick else 5 * 3600.0
    print(run_utilization(horizon=horizon, trace=collector))
    _write_collected(args, collector)
    return 0


def _cmd_single(name):
    def runner(args) -> int:
        from repro import experiments

        fn = getattr(experiments, f"run_{name}")
        collector = _collector(args)
        if name == "utilization" and args.quick:
            print(fn(horizon=1800.0, trace=collector))
        else:
            print(fn(trace=collector))
        _write_collected(args, collector)
        return 0

    return runner


def _cmd_demo(args) -> int:
    from repro.cluster import Cluster, ClusterSpec
    from repro.metrics import allocation_intervals, render_gantt

    cluster = Cluster(ClusterSpec.uniform(5, seed=1))
    service = cluster.start_broker()
    service.wait_ready()
    t0 = cluster.now
    print("adaptive job starting (wants 4 machines)...")
    service.submit(
        "n00", ["calypso", "2000", "5.0", "4"], rsl="+(adaptive)", uid="cal"
    )
    cluster.env.run(until=cluster.now + 10.0)
    for delay, dur in [(0.0, 15.0), (10.0, 20.0), (15.0, 10.0)]:
        cluster.env.run(until=cluster.now + delay)
        service.submit(
            "n00", ["rsh", "anylinux", "compute", str(dur)], uid="seq"
        )
    cluster.env.run(until=t0 + 90.0)
    intervals = allocation_intervals(service.events, until=cluster.now)
    print(render_gantt(intervals, t0, cluster.now))
    print(
        f"\n{len(service.events_of('revoke'))} revocations, "
        f"{len(service.events_of('grant'))} grants in 90 s"
    )
    if getattr(args, "trace", None) is not None:
        from repro.obs import write_trace

        write_trace(args.trace, service.tracer, service.metrics)
        print(f"trace written to {args.trace} (open in ui.perfetto.dev)")
        print("\n" + service.metrics.render())
    return 0


def _cmd_chaos(args) -> int:
    from repro.experiments import run_chaos

    collector = _collector(args)
    table = run_chaos(
        seed=args.seed,
        broker_crashes=1 if args.broker_crash else 0,
        journal=args.journal,
        standby=args.standby,
        shards=args.shards,
        trace=collector,
    )
    print(table)
    if args.verbose:
        print("\nfault plan:")
        print(table.meta["plan"])
    _write_collected(args, collector)
    # The whole point: every job survives the faults — and with a warm
    # standby or a federation, fencing must have kept the machine from
    # ever being granted twice.
    ok = table.meta["completed"] == table.meta["jobs"]
    if args.standby or args.shards >= 2:
        ok = ok and table.meta["double_grants"] == 0
    return 0 if ok else 1


def _cmd_sweep(args) -> int:
    from repro.experiments.sweep import (
        bench_report,
        canonical_json,
        format_sweep,
        merge_results,
        run_sweep,
    )

    sizes = [int(tok) for tok in args.sizes.split(",") if tok]
    seeds = [int(tok) for tok in args.seeds.split(",") if tok]
    workloads = [tok for tok in args.workloads.split(",") if tok]
    cells = run_sweep(
        workloads=workloads,
        sizes=sizes,
        seeds=seeds,
        sim_minutes=args.minutes,
        workers=args.workers,
        health=args.health,
        lanes=args.lanes,
    )
    print(format_sweep(cells))
    merged = merge_results(cells, sim_minutes=args.minutes)
    print(f"\nmerged digest: {merged['digest']}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(canonical_json(merged))
        print(f"merged results written to {args.out}")
    if args.bench:
        report = bench_report(
            cells, sim_minutes=args.minutes, workload=workloads[0]
        )
        with open(args.bench, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"kernel benchmark written to {args.bench}")
    return 0


def _cmd_slo(args) -> int:
    from repro.cluster import Cluster, ClusterSpec
    from repro.experiments.sweep import _drive_churn
    from repro.obs import HealthMonitor, evaluate_slos

    cluster = Cluster(ClusterSpec.uniform(args.machines, seed=args.seed))
    service = cluster.start_broker()
    service.wait_ready()
    monitor = HealthMonitor(service).start()
    _drive_churn(cluster, service, args.minutes * 60.0)
    cluster.assert_no_crashes()
    report = monitor.report()
    print(report.render())
    slo = evaluate_slos(
        service, report, grant_wait_p95=args.grant_wait_p95
    )
    print(slo.render())
    return 0 if slo.passed else 1


def _cmd_soak(args) -> int:
    from repro.experiments import run_soak

    progress = None
    if args.verbose:

        def progress(completed, total):
            print(f"  {completed}/{total} submissions completed")

    report = run_soak(
        seed=args.seed,
        machines=args.machines,
        submissions=args.submissions,
        journal=not args.no_journal,
        restarts=args.restarts,
        memory_checkpoints=args.memory_checkpoints,
        progress=progress,
    )
    print(report.render())
    if report.memory_samples:
        print("memory checkpoints (submissions, traced bytes):")
        for completed, traced in report.memory_samples:
            print(f"  {completed:>8} {traced:>12}")
    ok = report.drained and report.stuck_allocations == 0
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ResourceBroker (IPPS 1999) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every table and figure"
    )
    reproduce.add_argument(
        "--quick",
        action="store_true",
        help="shorten the five-hour utilization run to 30 minutes",
    )
    reproduce.add_argument("--trace", metavar="PATH", help=_TRACE_HELP)
    reproduce.set_defaults(fn=_cmd_reproduce)

    for name in ("table1", "table2", "table3", "fig7", "utilization"):
        single = sub.add_parser(name, help=f"regenerate {name} only")
        single.add_argument("--quick", action="store_true")
        single.add_argument("--trace", metavar="PATH", help=_TRACE_HELP)
        single.set_defaults(fn=_cmd_single(name))

    demo = sub.add_parser("demo", help="90-second adaptive-allocation tour")
    demo.add_argument("--trace", metavar="PATH", help=_TRACE_HELP)
    demo.set_defaults(fn=_cmd_demo)

    chaos = sub.add_parser(
        "chaos", help="mixed workload under a seeded fault schedule"
    )
    chaos.add_argument(
        "--seed", type=int, default=1, help="fault-schedule seed (default 1)"
    )
    chaos.add_argument(
        "--broker-crash",
        action="store_true",
        dest="broker_crash",
        help="also SIGKILL and restart the broker mid-run "
        "(exercises leases, re-registration and session resumption)",
    )
    chaos.add_argument(
        "--journal",
        action="store_true",
        help="run the broker durable (write-ahead journal + snapshot "
        "recovery) and add journal faults: a guaranteed broker crash, a "
        "torn journal tail at the crash instant, and a disk-stall window",
    )
    chaos.add_argument(
        "--standby",
        action="store_true",
        help="run with a warm-standby replica (WAL shipping) and the "
        "failover schedule: a standby kill, a ship-link partition, and a "
        "primary SIGKILL mid-ship with no restart — recovery must come "
        "from fenced promotion, with zero double grants",
    )
    chaos.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run the federated scenario: partition the machines across "
        "this many durable broker shards, force cross-shard borrowing, "
        "and add a shard-broker SIGKILL plus an inter-shard link "
        "partition — every job must complete with zero double grants",
    )
    chaos.add_argument(
        "--verbose", action="store_true", help="also print the fault plan"
    )
    chaos.add_argument("--trace", metavar="PATH", help=_TRACE_HELP)
    chaos.set_defaults(fn=_cmd_chaos)

    sweep = sub.add_parser(
        "sweep",
        help="fan a deterministic simulation grid across worker processes",
    )
    sweep.add_argument(
        "--sizes",
        default="8,16,32",
        help="comma-separated cluster sizes (default 8,16,32)",
    )
    sweep.add_argument(
        "--seeds", default="1", help="comma-separated seeds (default 1)"
    )
    sweep.add_argument(
        "--workloads",
        default="churn",
        help="comma-separated workload names (churn, sequential)",
    )
    sweep.add_argument(
        "--minutes",
        type=float,
        default=2.0,
        help="simulated minutes per cell (default 2)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; results are identical either way)",
    )
    sweep.add_argument(
        "--out", metavar="PATH", help="write canonical merged results JSON"
    )
    sweep.add_argument(
        "--bench",
        metavar="PATH",
        help="write the BENCH_kernel.json performance envelope",
    )
    sweep.add_argument(
        "--health",
        action="store_true",
        help="attach a health monitor to every cell and embed its report "
        "(changes event counts; off for pinned benchmarks)",
    )
    sweep.add_argument(
        "--lanes",
        type=int,
        default=0,
        help="kernel event lanes per cell (0 reads RB_KERNEL_LANES; "
        "results are byte-identical for any lane count)",
    )
    sweep.set_defaults(fn=_cmd_sweep)

    slo = sub.add_parser(
        "slo",
        help="run the churn workload under a health monitor and evaluate "
        "service-level objectives",
    )
    slo.add_argument(
        "--machines",
        type=int,
        default=16,
        help="cluster size (default 16)",
    )
    slo.add_argument(
        "--seed", type=int, default=1, help="simulation seed (default 1)"
    )
    slo.add_argument(
        "--minutes",
        type=float,
        default=5.0,
        help="simulated minutes to run (default 5)",
    )
    slo.add_argument(
        "--grant-wait-p95",
        type=float,
        default=30.0,
        dest="grant_wait_p95",
        help="objective: p95 grant wait in seconds (default 30)",
    )
    slo.set_defaults(fn=_cmd_slo)

    soak = sub.add_parser(
        "soak",
        help="service-mode soak: the durable broker under a large diurnal "
        "arrival trace with mid-run crash/restarts",
    )
    soak.add_argument(
        "--seed", type=int, default=1, help="simulation seed (default 1)"
    )
    soak.add_argument(
        "--machines",
        type=int,
        default=12,
        help="worker machines (default 12; the broker host is extra)",
    )
    soak.add_argument(
        "--submissions",
        type=int,
        default=2000,
        help="submissions to drain (default 2000)",
    )
    soak.add_argument(
        "--restarts",
        type=int,
        default=1,
        help="broker crash+restart pairs spread across the trace (default 1)",
    )
    soak.add_argument(
        "--no-journal",
        action="store_true",
        dest="no_journal",
        help="run without the write-ahead journal (restarts then recover "
        "from daemon re-registration alone)",
    )
    soak.add_argument(
        "--memory-checkpoints",
        type=int,
        default=0,
        dest="memory_checkpoints",
        help="sample tracemalloc this many times across the run "
        "(wall-side metering; 0 = off)",
    )
    soak.add_argument(
        "--verbose", action="store_true", help="print drain progress"
    )
    soak.set_defaults(fn=_cmd_soak)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
