"""ResourceBroker — the paper's inter-job resource manager.

Layout mirrors the paper's architecture (§3):

* :mod:`repro.broker.core` — the single network-wide **broker process**
  (resource-management layer, upper half).
* :mod:`repro.broker.daemon` — the per-machine **monitoring daemon**
  (resource-management layer, lower half).
* :mod:`repro.broker.app` — the **app / subapp** processes (application
  layer): one app per submitted job, one subapp per remotely-acquired
  machine.
* :mod:`repro.broker.rshprime` — **rsh'**, the interposed remote shell that
  turns symbolic host names into just-in-time allocation requests.
* :mod:`repro.broker.modules` — the **external module** mechanism
  (``<module>_grow`` / ``_shrink`` / ``_halt`` scripts).
* :mod:`repro.broker.state` — broker-side bookkeeping (machines, jobs,
  allocations, pending requests).
* :mod:`repro.broker.service` — host-side harness that installs the broker
  onto a :class:`~repro.cluster.builder.Cluster` and offers a typed
  submission API.
* :mod:`repro.broker.journal` — the durable broker's write-ahead journal
  and snapshot/replay recovery (DESIGN.md §14).
"""

from repro.broker.journal import BrokerJournal, RecoveryInfo, state_fingerprint
from repro.broker.service import BrokerService, JobHandle
from repro.broker.state import (
    AllocationState,
    BrokerState,
    JobRecord,
    MachineRecord,
    PendingRequest,
)

__all__ = [
    "AllocationState",
    "BrokerJournal",
    "BrokerService",
    "BrokerState",
    "JobHandle",
    "JobRecord",
    "MachineRecord",
    "PendingRequest",
    "RecoveryInfo",
    "state_fingerprint",
]
