"""The application layer: ``app`` and ``subapp`` (paper §3, §5).

One **app** process runs per submitted job, on the machine where the user
submitted it.  It registers the job with the broker, spawns the actual
command as its child (with ``RB_APP_HOST``/``RB_APP_PORT`` in the inherited
environment — the breadcrumb every descendant ``rsh'`` follows home), and then
brokers between the job and the resource-management layer:

* answers intercepted ``rsh'`` requests (default redirection, or the
  two-phase external-module protocol for PVM/LAM-style systems);
* carries out revocations — **sequentially**, one machine at a time, which is
  where Figure 7's linear reallocation cost comes from;
* reports released machines and job completion to the broker.

One **subapp** process runs per remotely acquired machine.  It fetches the
real command from the app, spawns it *as the job's user* (so Unix signal
permissions work out even though the broker itself is another user), reports
its exit, and on revocation sends SIGTERM, waits out the grace period, then
SIGKILLs — the paper's "sends a standard Unix signal to the child process,
and if the child does not terminate within a specified amount of time, the
subapp terminates the child process".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.broker import protocol
from repro.broker.modules import (
    expect_marker_path,
    grow_program,
    halt_program,
    shrink_program,
)
from repro.cluster import ports
from repro.os.errors import (
    ConnectionClosed,
    ConnectionRefused,
    NoSuchHost,
    NoSuchProgram,
)
from repro.os.retry import connect_any_with_backoff, connect_with_backoff
from repro.os.signals import SIGKILL, SIGTERM
from repro.rsl import is_symbolic_hostname, parse_rsl
from repro.sim.stores import Store


def _safe_send(conn, message) -> bool:
    """Send unless the connection is locally closed (e.g. severed by a
    fault); True if the message went out.  Peers that matter notice loss
    through EOF, never through our crash."""
    try:
        conn.send(message)
        return True
    except ConnectionClosed:
        return False


def _send_broker(st, message) -> bool:
    """Send to the broker unless the management link is gone; True if sent.

    The paper's stance is that the job outlives its manager: losing the
    broker degrades the job to an unmanaged one instead of killing it, so
    every broker send funnels through this guard.
    """
    if st.broker_lost:
        return False
    if _safe_send(st.broker, message):
        return True
    st.broker_lost = True
    return False


# ---------------------------------------------------------------------------
# app
# ---------------------------------------------------------------------------


@dataclass
class _SubappRecord:
    host: str
    conn: Any
    exited: Any  # Event fired with the child's exit code
    pid: Optional[int] = None


@dataclass
class _AppState:
    jobid: int = -1
    #: Broker incarnation that acked our submit; sessions resume by
    #: (jobid, epoch) after a broker crash.
    epoch: int = 1
    module: Optional[str] = None
    firm: bool = True
    broker: Any = None
    broker_host: str = ""
    #: Well-known broker addresses in dial order (primary first, then the
    #: warm standby when one is configured): a resume after a failover must
    #: find whichever incarnation is alive.
    broker_hosts: List[str] = field(default_factory=list)
    #: Registration fields, kept verbatim so a resume can replay them to a
    #: fresh broker incarnation that never saw the original submit.
    rsl_text: str = ""
    command: List[str] = field(default_factory=list)
    adaptive: bool = False
    inbox: Store = None  # type: ignore[assignment]
    waiters: Dict[int, Any] = field(default_factory=dict)
    tokens: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    subapps: Dict[str, _SubappRecord] = field(default_factory=dict)
    #: In-flight machine requests by reqid (symbolic name + firmness),
    #: resubmitted verbatim when the session resumes on a new broker.
    outstanding: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    pending_add: Set[str] = field(default_factory=set)
    revoking: Set[str] = field(default_factory=set)
    broker_lost: bool = False
    reqids: Any = None
    tokenids: Any = None
    #: FIFO of ("grow"|"shrink", host, trace-context): module scripts run one
    #: at a time — they share user-level state like ~/.pvmrc, exactly as the
    #: real scripts in the paper do.
    module_queue: Store = None  # type: ignore[assignment]
    #: Observability: the run-wide tracer and this app's ``app.run`` span.
    tracer: Any = None
    span: Any = None


def app_main(proc):
    """Program body: ``argv = ["app", rsl_text, command, args...]``."""
    from repro.obs import context_from_environ, tracer_of

    if len(proc.argv) < 3:
        return 1
    rsl_text, command = proc.argv[1], proc.argv[2:]
    broker_host = proc.environ.get("RB_BROKER_HOST")
    if broker_host is None:
        return 1
    standby_host = proc.environ.get("RB_BROKER_STANDBY")
    broker_hosts = list(
        dict.fromkeys([broker_host] + ([standby_host] if standby_host else []))
    )
    cal = proc.machine.network.calibration
    rsl = parse_rsl(rsl_text)
    tracer = tracer_of(proc)
    app_span = tracer.start(
        "app.run",
        parent=context_from_environ(proc.environ),
        actor=f"app:{proc.machine.name}",
        host=proc.machine.name,
        argv=list(command),
    )
    proc.terminated.add_callback(
        lambda ev: app_span.end(code=ev.value) if not app_span.finished else None
    )
    register_span = tracer.start(
        "app.register", parent=app_span, actor=app_span.attrs["actor"]
    )

    # One-time submission cost (app startup + registration bookkeeping).
    yield proc.sleep(cal.app_submit)

    port = proc.machine.network.ephemeral_port(proc.machine)
    listener = proc.listen(port)
    try:
        from repro.obs import metrics_of

        broker = yield from connect_with_backoff(
            proc,
            broker_host,
            ports.BROKER,
            counter=metrics_of(proc).counter("app.connect_retries"),
        )
    except (ConnectionRefused, NoSuchHost):
        register_span.end(error="broker unreachable")
        return 1
    sent = _safe_send(
        broker,
        protocol.attach_trace(
            protocol.submit(
                user=proc.uid,
                host=proc.machine.name,
                rsl=rsl_text,
                argv=command,
                adaptive=rsl.adaptive,
            ),
            app_span.context,
        ),
    )
    if not sent:
        register_span.end(error="broker link lost")
        return 1
    try:
        ack = yield broker.recv()
    except ConnectionClosed:
        register_span.end(error="broker hung up")
        return 1
    register_span.end(jobid=int(ack["jobid"]))
    app_span.set(jobid=int(ack["jobid"]))

    st = _AppState(
        jobid=int(ack["jobid"]),
        epoch=int(ack.get("epoch", 1)),
        module=rsl.module,
        # Firmness of this job's machine requests: explicit demand (module
        # consoles, rigid jobs) preempts; pure adaptive expansion does not.
        firm=(not rsl.adaptive) or (rsl.module is not None),
        broker=broker,
        broker_host=broker_host,
        broker_hosts=broker_hosts,
        rsl_text=rsl_text,
        command=list(command),
        adaptive=rsl.adaptive,
        inbox=Store(proc.env),
        reqids=itertools.count(1),
        tokenids=itertools.count(1),
        module_queue=Store(proc.env),
        tracer=tracer,
        span=app_span,
    )

    # The paper's start_script RSL extension: a user-supplied setup program
    # (e.g. one that writes the job's hostfile) runs to completion before
    # the job itself starts.
    if rsl.start_script is not None:
        try:
            script = proc.spawn([rsl.start_script])
        except NoSuchProgram:
            _send_broker(st, protocol.job_done(st.jobid, 1))
            return 1
        script_code = yield proc.wait(script)
        if script_code != 0:
            _send_broker(st, protocol.job_done(st.jobid, script_code))
            return int(script_code)

    child = proc.spawn(
        command,
        environ={
            "RB_APP_HOST": proc.machine.name,
            "RB_APP_PORT": str(port),
            "RB_JOBID": str(st.jobid),
            # Descendant rsh' invocations parent their spans under the app.
            **app_span.environ(),
        },
    )

    proc.thread(_broker_reader(proc, st), name="broker-reader")
    proc.thread(_acceptor(proc, st, listener), name="acceptor")
    if st.module is not None:
        proc.thread(_module_runner(proc, st), name="module-runner")
        # The paper's count extension: "(count>=4) ... is a request to
        # execute a PVM program on at least four machines."  Ask the broker
        # for the extra machines as part of startup; each grant arrives as
        # an async_grant and flows through the module-grow path, so the
        # virtual machine reaches the requested size.  The requests go out
        # only after the runtime has had a moment to boot — a grow script
        # poking a master daemon that does not exist yet helps nobody.
        if rsl.count_min > 1:
            proc.thread(
                _presize(proc, st, rsl.count_min - 1), name="presize"
            )

    # -- main control loop (serializes revocations) -------------------------
    while True:
        get = st.inbox.get()
        outcome = yield proc.env.any_of([get, child.terminated])
        if child.terminated in outcome:
            st.inbox.cancel(get)
            break
        msg = get.value
        kind = msg.get("type")
        if kind == "revoke":
            yield from _handle_revoke(proc, st, msg, cal)
        elif kind == "async_grant":
            _begin_module_add(proc, st, msg["host"], protocol.trace_of(msg))
        elif kind == "subapp_gone":
            _handle_subapp_gone(st, msg["host"])
        elif kind == "halt":
            # Broker-initiated job stop: through the halt module when there
            # is one (a graceful virtual-machine teardown), otherwise via a
            # plain SIGTERM to the job.  Either way the child's exit drives
            # the normal shutdown path.
            if st.module is not None:
                try:
                    proc.spawn([halt_program(st.module)])
                except NoSuchProgram:
                    child.kill_tree(SIGTERM, sender=proc)
            elif child.is_alive:
                child.kill_tree(SIGTERM, sender=proc)
        elif kind == "broker_lost":
            st.broker_lost = True
            # Try to resume the session on a (re)started broker; if that
            # fails the job simply keeps running unmanaged — the paper's
            # stance is that the job outlives its manager.
            yield from _resume_broker_session(proc, st)

    # -- shutdown -------------------------------------------------------------
    code = child.exit_code
    _send_broker(st, protocol.job_done(st.jobid, code))
    for record in list(st.subapps.values()):
        _safe_send(record.conn, protocol.subapp_revoke())
    return code


def _presize(proc, st, extra_machines):
    """Request the RSL count's extra machines once the runtime is up."""
    yield proc.sleep(3.0)
    for _ in range(extra_machines):
        reqid = next(st.reqids)
        st.outstanding[reqid] = {"symbolic": "anyhost", "firm": True}
        if not _send_broker(
            st, protocol.machine_request(st.jobid, "anyhost", reqid, firm=True)
        ):
            st.outstanding.pop(reqid, None)
            return


def _resume_broker_session(proc, st):
    """Redial the broker and reattach this job's session by (jobid, epoch).

    Runs inline in the app's control loop after the reader reports EOF.  On
    success the broker knows the job again (holdings re-adopted, unanswered
    machine requests resubmitted) and a fresh reader thread takes over; on
    failure every blocked machine-wait is denied and the job stays unmanaged.
    """
    from repro.obs import metrics_of

    cal = proc.machine.network.calibration
    metrics = metrics_of(proc)
    span = st.tracer.start(
        "app.resume",
        parent=st.span,
        actor=st.span.attrs["actor"],
        jobid=st.jobid,
        epoch=st.epoch,
    )
    st.broker.close()
    try:
        # Alternate across the well-known addresses: after a failover the
        # live broker answers at the standby's address, not the primary's.
        conn = yield from connect_any_with_backoff(
            proc,
            st.broker_hosts or [st.broker_host],
            ports.BROKER,
            attempts=cal.broker_resume_attempts,
            counter=metrics.counter("app.resume_connect_retries"),
        )
    except (ConnectionRefused, NoSuchHost):
        metrics.counter("app.resume_failures").inc()
        span.end(outcome="unreachable")
        _fail_waiters(st)
        return
    # Everything the new incarnation needs: what we hold (live subapps plus
    # grants still in the module-grow pipeline) and what we asked for but
    # never saw answered.
    holdings = sorted(set(st.subapps) | st.pending_add)
    pending = [
        {"reqid": reqid, "symbolic": info["symbolic"], "firm": info["firm"]}
        for reqid, info in sorted(st.outstanding.items())
    ]
    sent = _safe_send(
        conn,
        protocol.attach_trace(
            protocol.resume(
                st.jobid,
                st.epoch,
                user=proc.uid,
                host=proc.machine.name,
                rsl=st.rsl_text,
                argv=st.command,
                adaptive=st.adaptive,
                holdings=holdings,
                pending=pending,
            ),
            span.context,
        ),
    )
    ack = None
    if sent:
        try:
            ack = yield conn.recv()
        except ConnectionClosed:
            ack = None
    if not (ack and ack.get("type") == "resume_ack" and ack.get("ok")):
        conn.close()
        metrics.counter("app.resume_failures").inc()
        span.end(outcome="refused" if ack else "lost")
        _fail_waiters(st)
        return
    st.broker = conn
    st.epoch = int(ack.get("epoch", st.epoch))
    st.broker_lost = False
    proc.thread(_broker_reader(proc, st), name="broker-reader")
    metrics.counter("app.sessions_resumed").inc()
    span.end(outcome="resumed", epoch=st.epoch)


def _fail_waiters(st):
    """Deny every in-flight machine wait: the job is now unmanaged.

    Blocked ``rsh'`` chains get the ordinary denial path instead of hanging
    on a waiter no broker will ever answer."""
    for reqid in sorted(st.waiters):
        waiter = st.waiters.pop(reqid)
        if not waiter.triggered:
            waiter.succeed(None)
    st.outstanding.clear()


def _broker_reader(proc, st):
    """Route broker messages: grants to waiters, control to the inbox."""
    while True:
        try:
            msg = yield st.broker.recv()
        except ConnectionClosed:
            st.inbox.put_nowait({"type": "broker_lost"})
            return
        kind = msg.get("type")
        if kind in ("machine_grant", "machine_denied"):
            # Answered: the request is no longer outstanding for resume.
            st.outstanding.pop(msg["reqid"], None)
        if kind == "machine_grant":
            waiter = st.waiters.pop(msg["reqid"], None)
            if waiter is not None:
                waiter.succeed(msg["host"])
            else:
                # Asynchronous phase-II grant for a module job.  Forward the
                # grant's trace context so the module grow stays connected.
                st.inbox.put_nowait(
                    protocol.attach_trace(
                        {"type": "async_grant", "host": msg["host"]},
                        protocol.trace_of(msg),
                    )
                )
        elif kind == "machine_denied":
            waiter = st.waiters.pop(msg["reqid"], None)
            if waiter is not None:
                waiter.succeed(None)
        elif kind in ("revoke", "grow", "halt"):
            st.inbox.put_nowait(msg)


def _acceptor(proc, st, listener):
    while True:
        try:
            conn = yield listener.accept()
        except ConnectionClosed:
            return
        proc.thread(_client_handler(proc, st, conn), name="app-client")


def _client_handler(proc, st, conn):
    try:
        first = yield conn.recv()
    except ConnectionClosed:
        conn.close()
        return
    kind = first.get("type")
    if kind == "rsh_request":
        yield from _handle_rsh_request(proc, st, conn, first)
        conn.close()
    elif kind == "subapp_hello":
        yield from _handle_subapp(proc, st, conn, first)
    else:
        conn.close()


# -- rsh' requests -------------------------------------------------------------


def _make_token(proc, st, argv, host):
    token = f"tok{proc.pid}-{next(st.tokenids)}"
    st.tokens[token] = {"argv": list(argv), "host": host}
    return token


def _handle_rsh_request(proc, st, conn, msg):
    cal = proc.machine.network.calibration
    host, argv = msg["host"], msg["argv"]
    span = st.tracer.start(
        "app.rsh_request",
        parent=protocol.trace_of(msg) or st.span,
        actor=st.span.attrs["actor"],
        host=host,
    )

    if not is_symbolic_hostname(host):
        # Phase II of the module protocol: a real name we just arranged.
        if host in st.pending_add:
            st.pending_add.discard(host)
            proc.unlink_file(expect_marker_path(host))
            token = _make_token(proc, st, argv, host)
            _safe_send(
                conn,
                protocol.rsh_exec(host, wrap=True, token=token, jobid=st.jobid),
            )
            span.end(path="expected")
        else:
            # A host the user named explicitly: let it proceed untouched.
            _safe_send(conn, protocol.rsh_exec(host, wrap=False))
            span.end(path="passthrough")
        return

    # Symbolic name: a just-in-time allocation request.
    reqid = next(st.reqids)
    waiter = proc.env.event()
    st.waiters[reqid] = waiter
    st.outstanding[reqid] = {"symbolic": host, "firm": st.firm}
    wait_span = st.tracer.start(
        "app.machine_wait", parent=span, actor=span.attrs["actor"], reqid=reqid
    )
    if not _send_broker(
        st,
        protocol.attach_trace(
            protocol.machine_request(
                st.jobid, host, reqid, firm=st.firm, hint=msg.get("hint")
            ),
            wait_span.context,
        ),
    ):
        st.waiters.pop(reqid, None)
        st.outstanding.pop(reqid, None)
        wait_span.end(outcome="broker_lost")
        _safe_send(conn, protocol.rsh_fail("broker unreachable"))
        span.end(path="broker_lost")
        return
    if st.module is not None:
        # Module path: bounded wait, then report failure (phase I).  The
        # request stays queued broker-side; a later grant arrives as an
        # async_grant and triggers phase II then.
        outcome = yield proc.env.any_of(
            [waiter, proc.env.timeout(cal.module_request_timeout)]
        )
        if waiter in outcome and waiter.value is not None:
            target = waiter.value
            wait_span.end(outcome="granted", host=target)
            _safe_send(conn, protocol.rsh_fail("deferred to module grow"))
            _begin_module_add(proc, st, target, wait_span.context)
            span.end(path="module")
        else:
            st.waiters.pop(reqid, None)  # future grant -> async path
            wait_span.end(outcome="queued")
            _safe_send(conn, protocol.rsh_fail("request queued"))
            span.end(path="module")
        return

    # Default path: block until the broker produces a machine, then
    # redirect the rsh there, wrapped with a subapp.
    target = yield waiter
    if target is None:
        wait_span.end(outcome="denied")
        _safe_send(conn, protocol.rsh_fail("request denied"))
        span.end(path="denied")
        return
    wait_span.end(outcome="granted", host=target)
    token = _make_token(proc, st, argv, target)
    _safe_send(
        conn, protocol.rsh_exec(target, wrap=True, token=token, jobid=st.jobid)
    )
    span.end(path="redirected", target=target)


def _begin_module_add(proc, st, target, ctx=None):
    """Phase II: mark the host expected and queue ``<module>_grow <host>``."""
    st.pending_add.add(target)
    proc.write_file(expect_marker_path(target), "1\n")
    st.module_queue.put_nowait(("grow", target, ctx))


def _module_fallback(proc, st, verb, host):
    """Recover from a module script that cannot do its job.

    A grow that never happened denies the grant — the machine goes straight
    back to the broker instead of leaking; a shrink falls back to the blunt
    instrument (subapp SIGTERM/SIGKILL), which always works."""
    if verb == "grow":
        st.pending_add.discard(host)
        proc.unlink_file(expect_marker_path(host))
        _send_broker(st, protocol.released(st.jobid, host))
    else:
        record = st.subapps.get(host)
        if record is not None:
            _safe_send(record.conn, protocol.subapp_revoke())


def _module_runner(proc, st):
    """Run the job's module scripts strictly one at a time.

    Each run is bounded: a script that neither exits nor makes progress
    within ``module_script_deadline`` (a wedged master daemon, a console
    hanging on a dead host) is SIGKILLed and retried up to
    ``module_script_retries`` times, after which :func:`_module_fallback`
    denies the grow or force-shrinks — a stuck user script must not wedge
    the whole two-phase protocol."""
    from repro.obs import metrics_of

    cal = proc.machine.network.calibration
    timeouts = metrics_of(proc).counter("app.module_script_timeouts")
    while True:
        verb, host, ctx = yield st.module_queue.get()
        program = (
            grow_program(st.module) if verb == "grow" else shrink_program(st.module)
        )
        span = st.tracer.start(
            f"module.{program}",
            parent=ctx or st.span,
            actor=st.span.attrs["actor"],
            host=host,
        )
        missing = False
        wedged = False
        code = None
        for _attempt in range(cal.module_script_retries + 1):
            try:
                # The script's own children (console commands, rsh chains)
                # parent under the module span via the environ breadcrumb.
                script = proc.spawn([program, host], environ=span.environ())
            except NoSuchProgram:
                missing = True
                break
            deadline = proc.sleep(cal.module_script_deadline)
            try:
                yield proc.env.any_of([script.terminated, deadline])
            finally:
                deadline.cancel()
            if script.terminated.triggered:
                wedged = False
                code = script.exit_code
                break
            wedged = True
            timeouts.inc()
            if script.is_alive:
                script.kill_tree(SIGKILL, sender=proc)
        if missing or wedged:
            span.end(error="no such program" if missing else "script wedged")
            _module_fallback(proc, st, verb, host)
            continue
        span.end(code=code)
        if verb == "grow" and host in st.pending_add:
            # The grow script finished without the job ever rsh-ing to the
            # granted host (e.g. the runtime considered it already present).
            # Give the machine back instead of leaking the allocation.
            st.pending_add.discard(host)
            proc.unlink_file(expect_marker_path(host))
            _send_broker(st, protocol.released(st.jobid, host))


# -- subapp sessions -------------------------------------------------------


def _handle_subapp(proc, st, conn, hello):
    token = hello.get("token")
    info = st.tokens.pop(token, None)
    if info is None:
        _safe_send(conn, {"type": "subapp_abort"})
        conn.close()
        return
    host = hello["host"]
    record = _SubappRecord(host=host, conn=conn, exited=proc.env.event())
    st.subapps[host] = record
    _safe_send(conn, protocol.subapp_run(info["argv"]))
    code = None
    try:
        while True:
            msg = yield conn.recv()
            kind = msg.get("type")
            if kind == "subapp_started":
                record.pid = msg["pid"]
            elif kind == "subapp_exit":
                code = msg.get("code")
                break
    except ConnectionClosed:
        code = None
    st.subapps.pop(host, None)
    if not record.exited.triggered:
        record.exited.succeed(code)
    st.inbox.put_nowait({"type": "subapp_gone", "host": host, "code": code})
    conn.close()


# -- revocation ---------------------------------------------------------------


def _handle_revoke(proc, st, msg, cal):
    host = msg["host"]
    span = st.tracer.start(
        "app.revoke",
        parent=protocol.trace_of(msg) or st.span,
        actor=st.span.attrs["actor"],
        host=host,
    )
    record = st.subapps.get(host)
    if record is None:
        # Nothing of ours runs there (e.g. a not-yet-consumed pending add).
        if host in st.pending_add:
            st.pending_add.discard(host)
            proc.unlink_file(expect_marker_path(host))
        _send_broker(st, protocol.released(st.jobid, host))
        span.end(path="idle")
        return
    st.revoking.add(host)
    if st.module is not None:
        # Ask the job itself to drop the host, via the user's module script
        # (queued: scripts share user state); the runtime shutting down its
        # remote process makes the subapp's child exit, which we await below.
        st.module_queue.put_nowait(("shrink", host, span.context))
    else:
        _safe_send(record.conn, protocol.subapp_revoke())
    yield record.exited
    _send_broker(st, protocol.released(st.jobid, host))
    span.end(path="module" if st.module is not None else "subapp")


def _handle_subapp_gone(st, host):
    if host in st.revoking:
        # The revocation handler already reported the release.
        st.revoking.discard(host)
        return
    if not st.broker_lost:
        _send_broker(st, protocol.released(st.jobid, host))


# ---------------------------------------------------------------------------
# subapp
# ---------------------------------------------------------------------------


def subapp_main(proc):
    """Program body: ``argv = ["subapp", app_host, app_port, token]``."""
    if len(proc.argv) < 4:
        return 1
    app_host, app_port, token = (
        proc.argv[1],
        int(proc.argv[2]),
        proc.argv[3],
    )
    cal = proc.machine.network.calibration
    yield proc.sleep(cal.subapp_startup)
    try:
        conn = yield proc.connect(app_host, app_port)
    except (ConnectionRefused, NoSuchHost):
        return 1
    if not _safe_send(
        conn, protocol.subapp_hello(token, proc.machine.name, proc.pid)
    ):
        return 1
    try:
        msg = yield conn.recv()
    except ConnectionClosed:
        return 1
    if msg.get("type") != "subapp_run":
        conn.close()
        return 1

    child = proc.spawn(msg["argv"])
    _safe_send(conn, protocol.subapp_started(child.pid))
    # Stay attached: the rsh chain that started us returns when the command
    # finishes — or as soon as the command itself daemonizes (a pvmd-style
    # runtime daemon), in which case we detach with it.

    recv_ev = conn.recv()
    daemon_ev = child.daemonized  # dropped from the wait set once handled
    while True:
        wait_set = [child.terminated, recv_ev]
        if daemon_ev is not None:
            wait_set.append(daemon_ev)
        try:
            yield proc.env.any_of(wait_set)
        except ConnectionClosed:
            # The app (and so probably the job) is gone: reclaim the machine.
            if child.is_alive:
                child.kill_tree(SIGKILL, sender=proc)
            return 1
        if daemon_ev is not None and daemon_ev.processed:
            proc.daemonize()
            daemon_ev = None
        if child.terminated.processed:
            _safe_send(
                conn, protocol.subapp_exit(proc.machine.name, child.exit_code)
            )
            conn.close()
            # Our own exit status stands in for the command's (the rsh chain
            # only distinguishes success from failure).
            return 0 if child.exit_code == 0 else 1
        if recv_ev.processed:
            msg = recv_ev.value
            recv_ev = conn.recv()
            if msg.get("type") == "subapp_revoke" and child.is_alive:
                yield from _graceful_kill(proc, child, cal.sigterm_grace)


def _graceful_kill(proc, child, grace):
    """SIGTERM, wait out the grace period, then SIGKILL."""
    child.signal(SIGTERM, sender=proc)
    yield proc.env.any_of([child.terminated, proc.env.timeout(grace)])
    if child.is_alive:
        child.signal(SIGKILL, sender=proc)
