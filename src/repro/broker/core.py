"""The network-wide broker process (resource-management layer, upper half).

One instance runs (with ordinary user privileges, as user ``rbroker``) on a
designated machine.  It:

* spawns a monitoring daemon on every managed machine **via plain rsh** and
  restarts daemons whose connection drops (paper §3: "The resource manager
  process spawns the daemon processes at startup and restarts them if they
  fail");
* ingests periodic daemon reports into :class:`~repro.broker.state.BrokerState`;
* accepts job registrations and machine requests from app processes;
* runs the pluggable :class:`~repro.policy.base.Policy` over the queue of
  pending requests whenever anything changes, granting idle machines or
  initiating revocations;
* enforces the owner's absolute priority on private machines.

The broker process body is produced by :func:`make_broker_main`, a closure
over the :class:`~repro.broker.service.BrokerService` so experiments can
inject policies and inspect state without any side-channel globals inside
program code.

Crash recovery (DESIGN.md §11): every grant is a **lease** renewed by daemon
heartbeats and swept by :meth:`_BrokerControl.lease_sweeper`; a restarted
broker incarnation (``service.epoch > 1``) reconstructs state from daemon
re-registration inventories and app session resumption (``resume``
messages), and an app connection EOF orphans the session for a grace period
instead of finishing the job outright, so an app that merely lost its link
can reattach.

Control-plane scaling (DESIGN.md §12): with ``BrokerState.use_indexes`` on
(the default), :meth:`_BrokerControl._schedule` is **dirty-driven** — it
evaluates only the pending requests whose candidate set may have changed
since their last evaluation, pulled from the state's dirty set in service
order; the sweepers iterate the state's expiry indexes instead of copying
the whole machine table; denial feasibility verdicts are memoized against
the machine-capability version; and delta heartbeats are folded in without
touching the record.  ``use_indexes = False`` preserves the original
evaluate-everything scheduler as the reference that
``tests/broker/test_sched_equivalence.py`` compares against.
"""

from __future__ import annotations

import zlib

from repro.broker import protocol
from repro.broker.journal import snapshot_state
from repro.broker.state import (
    Allocation,
    AllocationState,
    PendingRequest,
)
from repro.cluster import ports
from repro.obs.timeseries import windowed_rate
from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.os.retry import connect_forever
from repro.os.signals import SIGKILL


def _safe_send(conn, message) -> bool:
    """Send unless the connection died under us; True if the message went
    out.  The broker serves many sessions from one process — one dead app
    must never take the scheduler down with it."""
    try:
        conn.send(message)
        return True
    except ConnectionClosed:
        return False


def make_broker_main(service):
    """Build the broker program body bound to ``service``."""

    def rbroker_main(proc):
        ctl = _BrokerControl(proc, service)
        service.control = ctl  # introspection handle for tools and tests
        if service.epoch > 1:
            # A restarted incarnation: trace the recovery window — it ends
            # when every managed daemon has re-reported (service.ready).
            recover = service.tracer.start(
                "broker.recover",
                actor="rbroker",
                host=proc.machine.name,
                epoch=service.epoch,
            )
            service.ready.add_callback(
                lambda ev: recover.end() if not recover.finished else None
            )
        listener = proc.listen(ports.BROKER)
        if service.replicated:
            # Warm-standby replication (DESIGN.md §16): serve the WAL ship
            # stream, heartbeat it, keep the standby process alive, and —
            # on a promoted incarnation — fence the ex-primary.
            ship_listener = proc.listen(ports.SHIP)
            proc.thread(ctl.ship_acceptor(ship_listener), name="ship-acceptor")
            proc.thread(ctl.ship_heartbeater(), name="ship-heartbeater")
            if service.standby_host != proc.machine.name:
                proc.thread(
                    ctl.standby_keeper(service.standby_host),
                    name="standby-keeper",
                )
            if (
                service.fence_target
                and service.fence_target != proc.machine.name
            ):
                proc.thread(ctl.fencer(service.fence_target), name="fencer")
        if service.shard is not None and service.shard.count > 1:
            # Federation (DESIGN.md §17): serve sibling shards' borrow
            # requests on the federation port.
            fed_listener = proc.listen(ports.FEDERATION)
            proc.thread(
                ctl.federation_acceptor(fed_listener),
                name="federation-acceptor",
            )
        for host in service.managed_hosts:
            proc.thread(ctl.daemon_keeper(host), name=f"daemon-keeper-{host}")
        proc.thread(ctl.liveness_sweeper(), name="liveness-sweeper")
        proc.thread(ctl.lease_sweeper(), name="lease-sweeper")
        if service.journal is not None:
            proc.thread(ctl.journal_flusher(), name="journal-flusher")
        while True:
            try:
                conn = yield listener.accept()
            except ConnectionClosed:
                return 0
            proc.thread(ctl.serve(conn), name="broker-session")

    return rbroker_main


class _BrokerControl:
    """All broker behaviour, shared across its connection handler threads."""

    def __init__(self, proc, service) -> None:
        self.proc = proc
        self.service = service
        self.state = service.state
        self.policy = service.policy
        self.cal = proc.machine.network.calibration
        self.tracer = service.tracer
        self.metrics = service.metrics
        # Captured per-incarnation, NOT read through the service: after a
        # standby promotion the service points at the *new* incarnation's
        # state/journal/epoch/events, and a partitioned ex-primary that kept
        # running must keep serving its own — that split is exactly what the
        # fencing protocol exists to resolve (DESIGN.md §16).
        self.epoch = service.epoch
        self.journal = service.journal
        self._ready = service.ready
        self._daemon_down = service._daemon_down
        #: Fencing on = a warm standby is configured: epoch-stamp grants and
        #: renewals toward daemons, serve the ship port.  Off (the default)
        #: leaves the wire protocol byte-identical to the pre-standby broker.
        self._fencing = service.fencing
        self._addresses = list(service.broker_addresses)
        #: host -> live daemon connection (for epoch-stamped sends).
        self._daemon_conns = {}
        #: The live ship session to the standby (None when disconnected).
        self._ship_conn = None
        #: Stream offset shipped on the current session.
        self._ship_sent = 0
        #: Triggered when the ship session drops (wakes the standby keeper).
        self._standby_down = None
        #: Set once this incarnation is fenced; all grants stop.
        self._demoted = False
        self._reqids = {}  # (jobid, reqid) -> PendingRequest (for dedupe)
        self._reports_seen = set()
        self._managed_set = frozenset(service.managed_hosts)
        #: (symbolic, rsl source, home host) -> (satisfiable?, capability
        #: version).  A verdict is valid while the capability universe it
        #: was computed against is unchanged; a stale entry is recomputed in
        #: place, so the memo never grows past the distinct request shapes.
        self._deny_memo = {}
        #: The armed liveness sweep timer (cancelled on re-arm, see
        #: :meth:`liveness_sweeper`).
        self._sweep_timer = None
        #: The armed lease sweep timer (same coalescing discipline).
        self._lease_timer = None
        #: Until this instant a restarted incarnation trusts daemon lease
        #: inventories enough to *adopt* allocations from them; -1.0 on a
        #: first-epoch broker (nothing to recover, adoption disabled).
        self._recovery_until = (
            proc.env.now + self.cal.broker_recovery_window
            if self.epoch > 1
            else -1.0
        )
        # Span bookkeeping lives here, NOT on the state dataclasses: putting
        # spans on PendingRequest would change its equality semantics, which
        # the pending-queue membership tests rely on.
        self._job_spans = {}  # jobid -> broker.job span
        self._request_spans = {}  # (jobid, reqid) -> broker.request span
        self._reclaim_spans = {}  # host -> broker.reclaim span
        # -- federation (DESIGN.md §17) --------------------------------------
        #: This broker's shard assignment, or None outside a federation.  A
        #: one-shard federation keeps every federated behaviour switched off
        #: so its timeline is byte-identical to a plain broker's.
        self._shard = service.shard
        self._fed_enabled = (
            service.shard is not None and service.shard.count > 1
        )
        #: (jobid, reqid) pairs with a live borrow loop, so one queued
        #: request never runs two concurrent loops.
        self._borrowing = set()
        #: Loaned-out hosts whose borrower already got a recall notice.
        self._recalled = set()

    # -- daemon management ----------------------------------------------------

    def daemon_keeper(self, host):
        """Spawn the daemon on ``host`` and respawn it whenever it dies.

        The daemon argv carries every well-known broker address (primary
        plus standby, when one is configured) so a daemon spawned before a
        failover finds whichever incarnation is alive afterwards.
        """
        while True:
            down = self.proc.env.event()
            self._daemon_down[host] = down
            rsh = self.proc.spawn(
                ["system:rsh", host, "rbdaemon", *self._addresses],
            )
            code = yield self.proc.wait(rsh)
            if code != 0:
                # Machine unreachable; back off and retry.
                yield self.proc.sleep(self.cal.daemon_report_interval)
                continue
            yield down  # triggered when the daemon's connection drops
            self.metrics.counter("broker.daemon_restarts").inc()
            self.service.log(event="daemon_restart", host=host)

    def standby_keeper(self, host):
        """Spawn the warm standby on ``host`` and respawn it whenever its
        ship session drops (the same keeper discipline as daemons: the
        *connection* is the liveness signal, never the process)."""
        while True:
            down = self.proc.env.event()
            self._standby_down = down
            rsh = self.proc.spawn(
                ["system:rsh", host, "rbstandby", self.proc.machine.name],
            )
            code = yield self.proc.wait(rsh)
            if code != 0:
                # Standby machine unreachable; back off and retry.
                yield self.proc.sleep(self.cal.daemon_report_interval)
                continue
            yield down  # triggered when the ship session drops
            self.metrics.counter("broker.standby_restarts").inc()
            self.service.log(event="standby_restart", host=host)

    # -- WAL shipping and fencing (DESIGN.md §16) -----------------------------

    def ship_acceptor(self, listener):
        """Accept ship-port sessions (the standby's hello, or a promoted
        peer's fence notice)."""
        while True:
            try:
                conn = yield listener.accept()
            except ConnectionClosed:
                return
            self.proc.thread(self._serve_ship(conn), name="ship-session")

    def _serve_ship(self, conn):
        """Serve one ship session: resume or re-baseline the stream, then
        drain frames as the journal flushes and trim on acks."""
        journal = self.journal
        try:
            first = yield conn.recv()
        except ConnectionClosed:
            conn.close()
            return
        kind = first.get("type")
        if kind == "fence_notice":
            # A peer broker announcing a higher epoch over the ship port:
            # the fencing path for an ex-primary whose daemons are all on
            # the far side of a partition.
            witnessed = int(first.get("epoch", 0))
            conn.close()
            if witnessed > self.epoch:
                self._demote(witnessed=witnessed, source="fence_notice")
            return
        if kind != "ship_hello" or journal is None or not journal.ship_enabled:
            conn.close()
            return
        self._ship_conn = conn
        self.metrics.counter("ship.sessions").inc()
        acked = int(first.get("acked", 0))
        resumable = (
            int(first.get("stream", -1)) == journal.ship_stream
            and acked <= journal.flushed_offset
            and journal.ship_pending(acked) is not None
        )
        if resumable:
            # The standby holds a prefix of this very stream: trim to its
            # ack and resend whatever it missed.
            journal.note_ship_ack(acked)
            self._ship_sent = acked
            if journal.flushed_offset > acked:
                self.metrics.counter("ship.resends").inc()
        else:
            # Different stream (a new incarnation) or a gap past the
            # retained window: re-baseline with a full-state snapshot at
            # the current flushed offset.
            journal.flush(force=True)
            self._ship_sent = journal.flushed_offset
            journal.note_ship_ack(self._ship_sent)
            self.metrics.counter("ship.snapshots").inc()
            _safe_send(
                conn,
                protocol.ship_snapshot(
                    journal.ship_stream,
                    self._ship_sent,
                    snapshot_state(self.state),
                    self.epoch,
                ),
            )
        journal.set_ship_kick(self._ship_drain)
        self._ship_drain()
        try:
            while True:
                msg = yield conn.recv()
                mtype = msg.get("type")
                if self._ship_conn is not conn:
                    return  # superseded by a fresh session
                if mtype == "ship_ack":
                    if int(msg.get("stream", -1)) == journal.ship_stream:
                        journal.note_ship_ack(int(msg.get("acked", 0)))
                        self._ship_drain()
                elif mtype == "fence_notice":
                    witnessed = int(msg.get("epoch", 0))
                    if witnessed > self.epoch:
                        self._demote(
                            witnessed=witnessed, source="fence_notice"
                        )
                        return
        except ConnectionClosed:
            pass
        conn.close()
        if self._ship_conn is conn:
            self._ship_conn = None
            journal.set_ship_kick(None)
            # Wake the standby keeper so it respawns the replica (which
            # resumes from its locally persisted offset).
            down = self._standby_down
            if down is not None and not down.triggered:
                down.succeed()

    def _ship_drain(self):
        """Push flushed-but-unshipped journal chars down the live ship
        session, whole retained chunks at a time (chunks are whole frames —
        the standby parses each one independently), bounded by the in-flight
        window."""
        conn = self._ship_conn
        journal = self.journal
        if conn is None or journal is None:
            return
        while self._ship_sent < journal.flushed_offset:
            if (
                self._ship_sent - journal.acked_offset
                >= self.cal.ship_window_chars
            ):
                self.metrics.counter("ship.window_stalls").inc()
                return  # window full: the next ack re-kicks the drain
            pending = journal.ship_pending(self._ship_sent)
            if not pending:
                return
            start, data = pending[0]
            if not _safe_send(
                conn, protocol.ship_frame(journal.ship_stream, start, data)
            ):
                return
            self._ship_sent = start + len(data)
            self.metrics.counter("ship.frames").inc()
            self.metrics.counter("ship.shipped_chars").inc(len(data))

    def ship_heartbeater(self):
        """Beat the ship session every ``standby_heartbeat_interval`` so the
        standby's silence clock only runs when the primary (or the path to
        it) is actually gone."""
        while True:
            yield self.proc.sleep(self.cal.standby_heartbeat_interval)
            if self._ship_conn is not None:
                _safe_send(
                    self._ship_conn,
                    protocol.ship_heartbeat(self.epoch, self.proc.env.now),
                )

    def fencer(self, target):
        """Chase the ex-primary with a fence notice (promoted incarnations
        only).  Daemons fence a reachable ex-primary through its own
        sessions; this covers the one nobody else can reach — an ex-primary
        isolated with zero daemons, still believing it is the broker."""
        conn = yield from connect_forever(
            self.proc,
            target,
            ports.SHIP,
            counter=self.metrics.counter("fencing.notice_retries"),
        )
        _safe_send(conn, protocol.fence_notice(self.epoch))
        try:
            # Hold the session open until the peer acts on the notice (its
            # demotion closes the connection).
            yield conn.recv()
        except ConnectionClosed:
            pass
        conn.close()

    def _demote(self, witnessed, source, host=None) -> None:
        """Fenced: a higher epoch exists, so this incarnation must stop
        granting *now*.  Process death is the simplest correct way — every
        session, sweeper and keeper dies with it, and grants already sent
        are bounded by their leases."""
        if self._demoted:
            return
        self._demoted = True
        self.metrics.counter("broker.demotions").inc()
        self.service.log(
            event="broker_demoted",
            epoch=self.epoch,
            witnessed=witnessed,
            source=source,
            host=host,
        )
        self.proc.signal(SIGKILL)

    # -- federation: cross-shard lease borrowing (DESIGN.md §17) --------------

    def federation_acceptor(self, listener):
        """Accept sibling shards' sessions on the federation port."""
        while True:
            try:
                conn = yield listener.accept()
            except ConnectionClosed:
                return
            self.proc.thread(
                self._serve_federation(conn), name="federation-session"
            )

    def _serve_federation(self, conn):
        """Serve one sibling session: a borrow request (replied to on the
        same connection) or a one-way loan-lifecycle notice."""
        try:
            msg = yield conn.recv()
        except ConnectionClosed:
            conn.close()
            return
        kind = msg.get("type")
        if kind == "borrow_request":
            yield from self._serve_borrow(conn, msg)
        elif kind == "borrow_release":
            yield from self._serve_borrow_release(msg)
        elif kind == "borrow_recall":
            yield from self._serve_borrow_recall(msg)
        conn.close()

    def _serve_borrow(self, conn, msg):
        """Donor side of a loan: place a sibling's request on one of this
        shard's idle machines, if any fits.

        A successful pick is allocated *before* the reply leaves — state
        ``MIGRATING``, the borrower's jobid, one ordinary lease TTL — and
        the grant is installed on the hosting daemon under this
        incarnation's epoch: the same fencing discipline as a local grant,
        so the daemon's double-grant audit covers loans too.  The lease
        then renews from the daemon's inventory once the borrower's subapp
        lands, and expires (reclaiming the loan) if it never does; the
        borrower is NOT trusted to renew, so a dead borrower can never pin
        a donor machine for longer than one TTL."""
        yield self.proc.sleep(self.cal.broker_decision)
        borrower = int(msg["shard"])
        jobid = int(msg["jobid"])
        symbolic = msg["symbolic"]
        rsl_text = msg.get("rsl", "")
        adaptive = bool(msg.get("adaptive"))
        record = (
            None
            if self._demoted
            else self.state.best_idle_for_loan(symbolic, rsl_text, adaptive)
        )
        if record is None:
            self.service.federation_counters["loan_refusals"] += 1
            self.metrics.counter("federation.loan_refusals").inc()
            _safe_send(
                conn,
                protocol.borrow_reply(
                    ok=False,
                    satisfiable=self.state.loan_satisfiable(
                        symbolic, rsl_text, adaptive
                    ),
                    reported=self.state.all_reported(
                        self.service.managed_hosts
                    ),
                    shard=self._shard.index,
                ),
            )
            return
        now = self.proc.env.now
        allocation = self.state.allocate(
            record.host,
            jobid,
            firm=bool(msg.get("firm")),
            now=now,
            lease_expires_at=now + self.cal.lease_ttl,
        )
        allocation.state = AllocationState.MIGRATING
        allocation.loaned_to = borrower
        journal = self.state.journal
        if journal is not None:
            journal.record(
                {
                    "op": "loan",
                    "host": record.host,
                    "jobid": jobid,
                    "to": borrower,
                }
            )
        self.service.federation_counters["loans_out"] += 1
        self.metrics.counter("federation.loans_out").inc()
        self.service.log(
            event="loan_out", host=record.host, jobid=jobid, to_shard=borrower
        )
        daemon = self._daemon_conns.get(record.host)
        if daemon is not None:
            _safe_send(
                daemon,
                protocol.grant_install(
                    jobid, int(msg.get("reqid", -1)), self.epoch
                ),
            )
        _safe_send(
            conn,
            protocol.borrow_reply(
                ok=True,
                host=record.host,
                platform=record.platform,
                kind=record.kind,
                shard=self._shard.index,
            ),
        )

    def _serve_borrow_release(self, msg):
        """Donor side: the borrower returned a loan — free the machine.

        Stale-safe: the notice names the loan's jobid, so one that raced
        with lease expiry (the machine possibly re-loaned or granted again
        since) matches nothing and is ignored."""
        host = str(msg["host"])
        jobid = int(msg["jobid"])
        record = self.state.machines.get(host)
        allocation = record.allocation if record is not None else None
        if (
            allocation is None
            or allocation.state is not AllocationState.MIGRATING
            or allocation.jobid != jobid
        ):
            return
        self.state.release(host)
        self._recalled.discard(host)
        self.metrics.counter("federation.loan_returns").inc()
        self.service.log(
            event="loan_release",
            host=host,
            jobid=jobid,
            from_shard=int(msg.get("shard", -1)),
        )
        yield from self._schedule()

    def _serve_borrow_recall(self, msg):
        """Borrower side: the donor recalled a loan (owner at the console,
        or the donor reclaimed a leak).

        With a live holder the machine is revoked from its app exactly
        like an owner reclaim; the release then travels the ordinary
        return path.  With no live holder (orphaned or pruned job) the
        borrowed record is dropped on the spot."""
        host = str(msg["host"])
        jobid = int(msg["jobid"])
        record = self.state.machines.get(host)
        if record is None or record.borrowed_from is None:
            return
        allocation = record.allocation
        job = self.state.jobs.get(jobid)
        if (
            allocation is not None
            and allocation.jobid == jobid
            and allocation.state is AllocationState.ACTIVE
            and job is not None
            and not job.done
            and job.conn is not None
        ):
            self.service.log(
                event="loan_recalled",
                host=host,
                jobid=jobid,
                from_shard=record.borrowed_from,
            )
            _safe_send(job.conn, protocol.revoke(host))
            return
        donor = record.borrowed_from
        if allocation is not None:
            self.state.release(host)
            self._forget_loan(host, jobid, donor)
        else:
            self.state.forget_machine(host)
        yield from self._schedule()

    def _forget_loan(self, host, jobid, donor) -> None:
        """Borrower side: drop a released borrowed record and send the
        donor a best-effort return notice (a partitioned donor misses it
        and reclaims the loan through lease expiry instead)."""
        self.state.forget_machine(host)
        self.service.federation_counters["returns"] += 1
        self.metrics.counter("federation.returns").inc()
        self.service.log(
            event="loan_returned", host=host, jobid=jobid, to_shard=donor
        )
        self.proc.thread(
            self._fed_notify(
                donor, protocol.borrow_release(self._shard.index, host, jobid)
            ),
            name=f"borrow-return-{host}",
        )

    def _end_loan(self, host, allocation, outcome) -> None:
        """Donor side: a loan ended without the borrower's release (lease
        leak or machine death): free the machine and send the borrower a
        best-effort recall so it drops its side too."""
        borrower = allocation.loaned_to
        jobid = allocation.jobid
        self.state.release(host)
        self._recalled.discard(host)
        self.metrics.counter("federation.loans_reclaimed").inc()
        self.service.log(
            event="loan_reclaimed",
            host=host,
            jobid=jobid,
            to_shard=borrower,
            outcome=outcome,
        )
        if borrower is not None and self._fed_enabled:
            self.proc.thread(
                self._fed_notify(
                    borrower, protocol.borrow_recall(host, jobid)
                ),
                name=f"loan-recall-{host}",
            )

    def _fed_notify(self, shard, message):
        """Dial one sibling shard's federation port and deliver a one-way
        notice, best-effort: a partitioned or down sibling misses it and
        the loan self-heals through lease expiry instead."""
        host = self._shard.broker_hosts[shard]
        try:
            conn = yield self.proc.connect(host, ports.FEDERATION)
        except (ConnectionRefused, NoSuchHost):
            self.metrics.counter("federation.notify_failures").inc()
            return
        if _safe_send(conn, message):
            # Hold until the sibling closes (its handler is done) so the
            # notice is never torn down in flight; the timer bounds a peer
            # partitioned mid-session.
            timer = self.proc.sleep(self.cal.federation_rpc_timeout)
            recv_ev = conn.recv()
            try:
                yield self.proc.env.any_of([timer, recv_ev])
            except ConnectionClosed:
                pass
            finally:
                timer.cancel()
        conn.close()

    def _maybe_borrow(self, job, request, hint=None) -> None:
        """Federated variant of the deny decision: before giving up on a
        request the local shard cannot place, try to borrow a machine from
        the sibling shards.

        Spawns at most one borrow loop per queued request.  The plain
        denial still exists — the loop issues it only on conclusive
        evidence that no shard could *ever* satisfy the request, so
        federation keeps the single-broker deny semantics stretched
        across all shards."""
        if request not in self.state.pending:
            return  # already granted (or reclaimed-for) by the local pass
        if hint is not None:
            request.shard_hint = int(hint) % self._shard.count
        key = (request.jobid, request.reqid)
        if key in self._borrowing:
            return
        self._borrowing.add(key)
        self.proc.thread(
            self._borrow_for(job, request),
            name=f"borrow-{request.jobid}-{request.reqid}",
        )

    def _borrow_for(self, job, request):
        """Borrow loop for one queued request.

        Runs while the request stays queued with no local prospect: each
        round walks the sibling ring (starting at the request's locality
        hint) until some shard lends a machine or all refuse.  Between
        rounds it sleeps ``federation_borrow_retry`` — roughly one daemon
        report interval, so newly idle donor machines are visible by the
        next ask."""
        key = (request.jobid, request.reqid)
        interval = self.cal.federation_borrow_retry
        try:
            while True:
                if (
                    request not in self.state.pending
                    or request.reserved_host is not None
                    or job.done
                    or job.conn is None
                    or self._demoted
                ):
                    return
                if self.state.all_reported(self.service.managed_hosts):
                    if self.state.best_idle(request) is None:
                        verdict = yield from self._borrow_round(job, request)
                        if verdict == "granted":
                            return
                        if verdict == "hopeless" and not self._satisfiable(
                            job, request.symbolic
                        ):
                            # Conclusively unsatisfiable on every shard.
                            self._deny_request(job, request)
                            return
                yield self.proc.sleep(interval)
        finally:
            self._borrowing.discard(key)

    def _borrow_round(self, job, request):
        """One pass over the sibling ring.

        Returns ``granted`` when a loan was adopted (or the request
        resolved some other way mid-round), ``hopeless`` when every
        sibling conclusively refused — answered, fully reported, and the
        request unsatisfiable there even in the best case — and ``retry``
        otherwise (somebody was unreachable, silent, or merely busy)."""
        count = self._shard.count
        start = request.shard_hint
        if start is None or not 0 <= start < count:
            start = zlib.crc32(request.symbolic.encode()) % count
        hopeless = True
        for step in range(count):
            shard = (start + step) % count
            if shard == self._shard.index:
                continue
            if (
                request not in self.state.pending
                or request.reserved_host is not None
                or job.done
                or job.conn is None
            ):
                return "granted"  # resolved while this round was running
            reply = yield from self._borrow_rpc(shard, job, request)
            if reply is None:
                hopeless = False  # unreachable sibling: evidence incomplete
                continue
            if reply.get("ok"):
                if self._adopt_borrowed(job, request, reply):
                    return "granted"
                # The request resolved while the RPC was in flight: hand
                # the loaned machine straight back to its donor.
                self.proc.thread(
                    self._fed_notify(
                        shard,
                        protocol.borrow_release(
                            self._shard.index,
                            str(reply["host"]),
                            request.jobid,
                        ),
                    ),
                    name=f"borrow-return-{reply['host']}",
                )
                return "granted"
            if not reply.get("reported") or reply.get("satisfiable"):
                hopeless = False
        return "hopeless" if hopeless else "retry"

    def _borrow_rpc(self, shard, job, request):
        """One borrow request/reply exchange with a sibling; None when the
        sibling is unreachable, silent past the RPC deadline, or answered
        garbage."""
        host = self._shard.broker_hosts[shard]
        self.service.federation_counters["forwards"] += 1
        self.metrics.counter("federation.forwards").inc()
        try:
            conn = yield self.proc.connect(host, ports.FEDERATION)
        except (ConnectionRefused, NoSuchHost):
            return None
        reply = None
        if _safe_send(
            conn,
            protocol.borrow_request(
                self._shard.index,
                request.jobid,
                request.symbolic,
                job.rsl.source,
                job.adaptive,
                request.firm,
                request.reqid,
            ),
        ):
            timer = self.proc.sleep(self.cal.federation_rpc_timeout)
            recv_ev = conn.recv()
            try:
                yield self.proc.env.any_of([timer, recv_ev])
                if recv_ev.processed:
                    reply = recv_ev.value
            except ConnectionClosed:
                pass
            finally:
                timer.cancel()
        conn.close()
        if reply is not None and reply.get("type") != "borrow_reply":
            return None
        return reply

    def _adopt_borrowed(self, job, request, reply) -> bool:
        """Install a sibling's loan as the grant for ``request``.

        The borrowed machine joins this shard's table fully formed —
        created, flagged ``borrowed_from``, allocated and touched with no
        intervening yield — so no scheduler pass can ever see it idle and
        it never joins the general candidate pool.  Its lease is infinite
        on the borrower: renewal flows to the *donor* (the machine's
        daemon reports there), which bounds the loan and recalls it if
        this shard dies.  No ``grant_install`` is sent from here either —
        the donor already installed the grant under its own epoch, the
        one the machine's daemon actually witnesses."""
        if (
            request not in self.state.pending
            or request.reserved_host is not None
            or job.done
            or job.conn is None
            or self._demoted
        ):
            return False
        host = str(reply["host"])
        if host in self.state.machines:
            return False  # never shadow a machine this shard already knows
        now = self.proc.env.now
        record = self.state.add_machine(host)
        record.borrowed_from = int(reply.get("shard", -1))
        if record.platform != reply.get("platform", ""):
            record.platform = reply["platform"]
        if record.kind != reply.get("kind", "public"):
            record.kind = reply["kind"]
        self.state.allocate(host, request.jobid, firm=request.firm, now=now)
        record.touch(now)
        self.state.pending.remove(request)
        self._reqids.pop((request.jobid, request.reqid), None)
        waited = now - request.arrived_at
        span = self._request_spans.pop((request.jobid, request.reqid), None)
        if span is not None:
            span.end(
                outcome="granted",
                host=host,
                waited=waited,
                borrowed_from=record.borrowed_from,
            )
        self.metrics.counter("broker.grants").inc()
        self.metrics.counter("federation.cross_shard_grants").inc()
        self.service.federation_counters["cross_shard_grants"] += 1
        self.metrics.histogram("broker.grant_wait").observe(waited)
        self.metrics.gauge("broker.pending_requests").dec()
        self.service.log(
            event="grant",
            jobid=request.jobid,
            reqid=request.reqid,
            host=host,
            waited=waited,
            borrowed_from=record.borrowed_from,
        )
        _safe_send(
            job.conn,
            protocol.attach_trace(
                protocol.machine_grant(request.reqid, host),
                span.context if span is not None else None,
            ),
        )
        return True

    # -- liveness detection ---------------------------------------------------

    def liveness_sweeper(self):
        """Declare machines dead after a deadline of silence.

        A healthy machine's daemon reports every ``daemon_report_interval``;
        even a killed daemon is respawned by the keeper within roughly one
        interval, so sustained silence past ``liveness_deadline`` means the
        *machine* (or its network path) is gone, not just its daemon.  Dead
        machines become ineligible and whatever they held is reclaimed
        through the ordinary revocation path, so every substrate adapts
        exactly as it does for an owner reclaim.

        The per-machine heartbeat deadlines (``last_seen + deadline``) are
        coalesced into a *single* sweep timer armed at the earliest one: the
        broker wakes exactly when some machine could first be overdue rather
        than polling every report interval, and scans only at those instants.
        Deadlines only ever move later (a report refreshes ``last_seen``),
        so a wake armed from stale knowledge fires early, finds nothing
        overdue, and re-arms — never late.  A superseded timer is cancelled,
        not abandoned (kernel lazy deletion reclaims its heap entry).
        """
        deadline = self.cal.liveness_deadline
        interval = self.cal.daemon_report_interval
        while True:
            # One pass both collects the already-overdue machines and finds
            # the earliest future deadline to arm the next wake at.
            now = self.proc.env.now
            due = None
            overdue = []
            tracked = self.state.tracked_records()
            self.metrics.counter("broker.sweep_scans").inc(len(tracked))
            for record in tracked:
                if record.dead or record.last_seen < 0.0:
                    continue  # already handled / never heard from at all
                if record.borrowed_from is not None:
                    # A borrowed machine's daemon reports to its donor
                    # shard; the donor's sweepers own its liveness.
                    continue
                if now - record.last_seen > deadline:
                    overdue.append(record)
                else:
                    candidate = record.last_seen + deadline
                    if due is None or candidate < due:
                        due = candidate
            for record in overdue:
                if record.dead or record.last_seen < 0.0:
                    continue  # a report raced in while marking the others
                silence = self.proc.env.now - record.last_seen
                if silence > deadline:
                    yield from self._mark_machine_dead(record, silence)
            if due is None:
                # Nothing reporting yet: re-check once a report could exist.
                wait = interval
            else:
                # The epsilon lands the wake strictly *past* the deadline so
                # `silence > deadline` holds for a machine exactly due.
                wait = max(due - self.proc.env.now, 0.0) + 1e-6
            timer = self.proc.sleep(wait)
            self._sweep_timer = timer
            try:
                yield timer
            finally:
                if self._sweep_timer is timer:
                    self._sweep_timer = None
                timer.cancel()  # no-op after firing; frees it on interrupt

    # -- journal flushing -----------------------------------------------------

    def journal_flusher(self):
        """Drain the journal's coalesced notes (machine views, lease
        renewals) to disk every ``journal_flush_interval``.

        Structural ops are flushed write-through at record time, so this
        thread bounds only the staleness of the high-rate noise; it dies
        with the broker process, which is exactly the page-cache-loss
        semantics :meth:`BrokerJournal.discard_unflushed` models."""
        journal = self.journal
        interval = self.cal.journal_flush_interval
        while True:
            yield self.proc.sleep(interval)
            journal.flush()

    def _mark_machine_dead(self, record, silence):
        record.dead = True
        record.last_report = -1.0  # ineligible until it reports again
        span = self.tracer.start(
            "broker.machine_dead",
            actor="rbroker",
            host=record.host,
            silent_for=silence,
        )
        self.metrics.counter("broker.machines_marked_dead").inc()
        self.service.log(
            event="machine_dead", host=record.host, silent_for=silence
        )
        allocation = record.allocation
        if (
            allocation is not None
            and allocation.state is AllocationState.MIGRATING
        ):
            # A loaned machine died: free it donor-side and recall the
            # borrower (whose app sees the severed subapp regardless).
            self._end_loan(record.host, allocation, outcome="machine_dead")
        elif allocation is not None and allocation.state is AllocationState.ACTIVE:
            victim = self.state.jobs.get(allocation.jobid)
            if victim is not None and not victim.done and victim.conn is not None:
                # Reclaim via the normal revocation path: the victim's subapp
                # connection was severed by the failure, so the app releases
                # as soon as it processes the revoke.
                self._start_reclaim(record.host, claimed_by=None)
            else:
                self.state.release(record.host)
        # RECLAIMING allocations need nothing extra: a revoke is already in
        # flight and the release arrives once the victim notices the severed
        # subapp connection.
        span.end()
        yield from self._schedule()

    # -- lease expiry ---------------------------------------------------------

    def lease_sweeper(self):
        """Expire grants whose leases stopped being renewed.

        The liveness sweeper catches machines that go silent; this sweeper
        catches the dual failure — the machine is fine but the *grant
        holder* is gone (its app never EOF'd, e.g. the whole session state
        died with a previous broker incarnation and nobody resumed it).
        Daemon heartbeats renew the lease of any allocation whose jobid has
        a live subapp on the machine; an allocation past its
        ``lease_expires_at`` is reclaimed so the machine becomes grantable
        again.

        Same coalesced-timer discipline as :meth:`liveness_sweeper`: a
        single cancellable timer armed at the earliest expiry, re-armed
        after every pass, idling one TTL when no lease is outstanding (a new
        grant always expires at least one TTL out, so an idle wake is never
        late).
        """
        ttl = self.cal.lease_ttl
        while True:
            now = self.proc.env.now
            due = None
            expired = []
            leased = self.state.leased_records()
            self.metrics.counter("broker.sweep_scans").inc(len(leased))
            for record in leased:
                allocation = record.allocation
                if allocation is None or record.dead:
                    continue  # the liveness path owns dead machines
                if self._lease_overdue(record, now):
                    expired.append(record)
                elif allocation.lease_expires_at != float("inf"):
                    if due is None or allocation.lease_expires_at < due:
                        due = allocation.lease_expires_at
            for record in expired:
                if not self._lease_overdue(record, self.proc.env.now):
                    continue  # renewed or resolved while expiring the others
                yield from self._expire_lease(record)
            wait = (
                ttl
                if due is None
                else max(due - self.proc.env.now, 0.0) + 1e-6
            )
            timer = self.proc.sleep(wait)
            self._lease_timer = timer
            try:
                yield timer
            finally:
                if self._lease_timer is timer:
                    self._lease_timer = None
                timer.cancel()

    def _lease_overdue(self, record, now) -> bool:
        """Whether the machine's lease has run out with nobody to renew it.

        An ACTIVE allocation past its expiry is always overdue.  A
        RECLAIMING one is overdue only when its victim has no live session:
        the revoke went (or would go) into the void, so nobody will ever
        send the release — without this the machine would stay RECLAIMING
        forever, invisible to both sweepers."""
        allocation = record.allocation
        if allocation is None or allocation.lease_expires_at > now:
            return False
        if allocation.state is AllocationState.ACTIVE:
            return True
        if allocation.state is AllocationState.RECLAIMING:
            victim = self.state.jobs.get(allocation.jobid)
            return victim is None or victim.done or victim.conn is None
        if allocation.state is AllocationState.MIGRATING:
            # A loan renews from the machine's own daemon inventory (the
            # borrower's jobid appears once its subapp lands); expiry means
            # the loan leaked and the donor takes the machine back.
            return True
        return False

    def _expire_lease(self, record):
        allocation = record.allocation
        span = self.tracer.start(
            "lease.expire",
            parent=self._job_spans.get(allocation.jobid),
            actor="rbroker",
            host=record.host,
            jobid=allocation.jobid,
            state=allocation.state.value,
        )
        self.metrics.counter("leases.expired").inc()
        self.service.log(
            event="lease_expired", host=record.host, jobid=allocation.jobid
        )
        victim = self.state.jobs.get(allocation.jobid)
        if allocation.state is AllocationState.MIGRATING:
            # A leaked loan: reclaim the machine and recall the borrower.
            self._end_loan(record.host, allocation, outcome="lease_expired")
        elif (
            allocation.state is AllocationState.ACTIVE
            and victim is not None
            and not victim.done
            and victim.conn is not None
        ):
            # The holder is still attached: reclaim through the ordinary
            # revocation path so its substrate adapts gracefully.
            self._start_reclaim(record.host, claimed_by=None)
        else:
            # Holder unknown or unreachable: nobody can release, free it.
            released = self.state.release(record.host)
            reclaim = self._reclaim_spans.pop(record.host, None)
            if reclaim is not None:
                reclaim.end(outcome="lease_expired")
            claim = released.claimed_by if released else None
            if claim is not None:
                # Un-reserve the claiming request so the scheduler pass
                # below can satisfy it (with this very machine, usually).
                claim.reserved_host = None
        span.end()
        yield from self._schedule()

    # -- connection dispatch -------------------------------------------------

    def serve(self, conn):
        try:
            first = yield conn.recv()
        except ConnectionClosed:
            conn.close()
            return
        kind = first.get("type")
        if kind == "daemon_hello":
            yield from self._serve_daemon(conn, first)
        elif kind == "submit":
            yield from self._serve_app(conn, first)
        elif kind == "resume":
            yield from self._serve_resume(conn, first)
        elif kind == "status":
            _safe_send(conn, protocol.status_reply(self.state.summary()))
            conn.close()
        elif kind == "stats":
            _safe_send(conn, protocol.stats_reply(self.stats()))
            conn.close()
        elif kind == "halt_job":
            jobid = int(first.get("jobid", -1))
            job = self.state.jobs.get(jobid)
            ok = job is not None and not job.done and job.conn is not None
            if ok:
                _safe_send(job.conn, protocol.halt())
                self.service.log(event="halt_job", jobid=jobid)
            _safe_send(conn, protocol.halt_ack(jobid, ok))
            conn.close()
        else:
            conn.close()

    def stats(self) -> dict:
        """The live introspection snapshot served by the ``stats`` RPC.

        Read-only over state, counters and the service's online phase
        digests — no scans beyond the leased set, no simulation events, so
        polling it never perturbs the run being observed."""
        state = self.state
        metrics = self.metrics
        now = self.proc.env.now
        grants = metrics.counter("broker.grants")
        leased = state.leased_records()
        reclaiming = sum(
            1
            for record in leased
            if record.allocation is not None
            and record.allocation.state is AllocationState.RECLAIMING
        )
        scanned = state.machines_scanned
        journal = self.journal

        def metric_value(name: str) -> float:
            # Read without creating: a stats poll must not mint instruments
            # (that would change self-metering counts under observation).
            instrument = metrics._metrics.get(name)
            return instrument.value if instrument is not None else 0.0

        recovery = {
            "from_journal": metric_value("recovery.from_journal"),
            "from_reregistration": metric_value("recovery.from_reregistration"),
            "replayed_records": metric_value("recovery.replayed_records"),
            "conflicts": metric_value("recovery.conflicts"),
            "latency_seconds": metric_value("recovery.latency_seconds"),
        }
        if self.service.replicated:
            # A promoted incarnation has no standby of its own (shipping
            # off), but its fencing/promotion counters still belong here.
            ship = (
                journal.ship_stats()
                if journal is not None and journal.ship_enabled
                else {"enabled": False}
            )
            replication = {
                **ship,
                "sessions": metric_value("ship.sessions"),
                "frames": metric_value("ship.frames"),
                "snapshots": metric_value("ship.snapshots"),
                "resends": metric_value("ship.resends"),
                "promotions": metric_value("broker.promotions"),
                "demotions": metric_value("broker.demotions"),
                "fencing_rejections": metric_value("fencing.rejections"),
                "double_grants": metric_value("fencing.double_grants"),
            }
        else:
            replication = {"enabled": False}
        if self._fed_enabled:
            borrowed = 0
            loaned = 0
            for record in leased:
                allocation = record.allocation
                if record.borrowed_from is not None:
                    borrowed += 1
                elif (
                    allocation is not None
                    and allocation.state is AllocationState.MIGRATING
                ):
                    loaned += 1
            federation = {
                "enabled": True,
                "shard": self._shard.index,
                "shards": self._shard.count,
                "owned_machines": len(state.machines) - borrowed,
                "borrowed_machines": borrowed,
                "loaned_machines": loaned,
                "fencing_rejections": metric_value("fencing.rejections"),
                "double_grants": metric_value("fencing.double_grants"),
                **self.service.federation_counters,
            }
        else:
            federation = {"enabled": False}
        heap = self.proc.env.heap_stats()
        lane_detail = heap["lanes"]
        lane_clocks = [lane["clock"] for lane in lane_detail]
        kernel = {
            "lanes": len(lane_detail),
            # Spread of the per-lane dispatch clocks: how unevenly the
            # partitions are progressing (0.0 when serial).
            "lane_clock_skew": max(lane_clocks) - min(lane_clocks),
            "window_stalls": sum(lane["window_stalls"] for lane in lane_detail),
            "events_processed": heap["processed"],
            "heap_high_water": heap["heap_high_water"],
            "lane_detail": lane_detail,
        }
        return {
            "time": now,
            "kernel": kernel,
            "journal": journal.stats() if journal is not None else {"enabled": False},
            "replication": replication,
            "federation": federation,
            "recovery": recovery,
            "epoch": self.epoch,
            "pending": len(state.pending),
            "dirty_pending": state.dirty_pending_count(),
            "machines": len(state.machines),
            "machines_reported": state.reported_count(),
            "leased": len(leased),
            "reclaiming": reclaiming,
            "jobs": len(state.jobs),
            "jobs_done": sum(1 for job in state.jobs.values() if job.done),
            "grants": grants.value,
            "denials": metrics.counter("broker.denials").value,
            "revokes": metrics.counter("broker.revokes").value,
            "leases_adopted": metrics.counter("leases.adopted").value,
            "leases_expired": metrics.counter("leases.expired").value,
            "sessions_resumed": metrics.counter("sessions.resumed").value,
            "machines_scanned": scanned,
            "scans_per_grant": (
                scanned / grants.value if grants.value else 0.0
            ),
            "grant_rate": windowed_rate(grants.samples, now, window=60.0),
            "phases": self.service.phase_stats.summary(),
            "obs": {
                "tracer": self.tracer.self_stats(),
                "metrics": metrics.self_stats(),
            },
            "metrics": metrics.snapshot(),
        }

    # -- daemon sessions ----------------------------------------------------

    def _serve_daemon(self, conn, hello):
        host = hello["host"]
        record = self.state.add_machine(host)
        if hello.get("resumed"):
            self.metrics.counter("broker.daemon_reregistrations").inc()
            self.service.log(
                event="daemon_reregistered",
                host=host,
                leases=list(hello.get("leases", ())),
            )
        self._reconcile_recovered(record, hello.get("leases", ()))
        self._adopt_from_inventory(record, hello.get("leases", ()))
        self._daemon_conns[host] = conn
        if self._fencing:
            # Stamp the session with this incarnation's epoch; a daemon that
            # has witnessed a higher one answers with fence_reject, which
            # demotes us (DESIGN.md §16).
            _safe_send(conn, protocol.daemon_welcome(self.epoch))
        try:
            while True:
                msg = yield conn.recv()
                if msg.get("type") == "fence_reject":
                    self._demote(
                        witnessed=int(msg.get("witnessed", 0)),
                        source="fence_reject",
                        host=msg.get("host"),
                    )
                    return
                if msg.get("type") != "daemon_report":
                    continue
                was_reported = record.reported
                was_active = record.console_active
                was_dead = record.dead
                if msg.get("delta"):
                    # Delta beacon: nothing monitorable changed since the
                    # machine's last full report, so the retained record
                    # fields are exact — only the liveness clocks move and
                    # the stored lease inventory renews.  A record with no
                    # retained snapshot at all (its full report was lost in
                    # transit) cannot be reconstructed from a beacon; it
                    # waits for the next full report, which the daemon's
                    # full-every-N cadence bounds.
                    if record.last_seen < 0.0:
                        continue
                    record.touch(msg["time"])
                    if record.dead:
                        record.dead = False
                    leases = record.leases
                else:
                    record.update(msg["snapshot"])
                    record.leases = tuple(msg.get("leases", ()))
                    leases = record.leases
                    # A full report is a live inventory: cross-check any
                    # journal-recovered allocation against it.
                    self._reconcile_recovered(record, leases)
                if was_dead:
                    self.metrics.counter("broker.machine_rejoins").inc()
                    self.service.log(event="machine_rejoin", host=host)
                if leases or record.allocation is not None:
                    self._ingest_leases(record, leases)
                self._note_ready(host)
                self._owner_priority(record)
                # Scheduling is event-driven: most reports change nothing a
                # policy can act on, so only a machine appearing for the
                # first time or a console-activity flip triggers a pass.
                if not was_reported or record.console_active != was_active:
                    yield from self._schedule()
        except ConnectionClosed:
            conn.close()
            if self._daemon_conns.get(host) is conn:
                del self._daemon_conns[host]
            # Monitoring lost: the machine may be down.  Treat it as unknown
            # (ineligible) until a daemon reports again.
            record.last_report = -1.0
            down = self._daemon_down.get(host)
            if down is not None and not down.triggered:
                down.succeed()

    def _ingest_leases(self, record, leases) -> None:
        """Fold one report's lease list into the machine's allocation.

        A listed jobid matching the current allocation renews its lease
        (RECLAIMING included: a graceful shutdown in progress still has a
        live subapp and must not be swept mid-handover); with no allocation
        at all, the list can seed an adoption — but only inside a restarted
        incarnation's recovery window (see :meth:`_adopt_from_inventory`)."""
        allocation = record.allocation
        if allocation is not None and allocation.jobid in leases:
            allocation.lease_expires_at = (
                self.proc.env.now + self.cal.lease_ttl
            )
            allocation.recovered = False  # a live inventory confirms it
            journal = self.state.journal
            if journal is not None:
                journal.note_lease(record.host, allocation.lease_expires_at)
            if self._fencing:
                # Echo the renewal with our epoch stamp: a daemon holding a
                # higher witness fences us before the stale lease can matter.
                daemon = self._daemon_conns.get(record.host)
                if daemon is not None:
                    _safe_send(
                        daemon,
                        protocol.lease_renew(self.epoch, [allocation.jobid]),
                    )
        elif allocation is None:
            self._adopt_from_inventory(record, leases)

    def _reconcile_recovered(self, record, leases) -> None:
        """Cross-check a journal-recovered allocation against a live daemon
        inventory (hello or full report).

        Agreement — the recovered jobid in the machine's own lease list —
        confirms the allocation and clears its flag.  Disagreement resolves
        toward the live inventory (the daemon knows what actually runs on
        its machine; the journal knows what a dead broker *intended*): the
        recovered allocation is dropped, counted in ``recovery.conflicts``,
        and the machine becomes grantable again."""
        allocation = record.allocation
        if allocation is None or not allocation.recovered:
            return
        if allocation.jobid in set(int(j) for j in leases):
            allocation.recovered = False
            allocation.lease_expires_at = max(
                allocation.lease_expires_at,
                self.proc.env.now + self.cal.lease_ttl,
            )
            return
        if allocation.state is AllocationState.MIGRATING:
            # A recovered loan: its confirming signal — the borrower's
            # subapp in this inventory — may legitimately lag the crash
            # (the borrower's rsh could still be in flight), so never drop
            # it on disagreement; lease expiry bounds a loan that truly
            # died with the previous incarnation.
            return
        self._drop_recovered(record, trusted=sorted(int(j) for j in leases))

    def _drop_recovered(self, record, trusted) -> None:
        """Release a recovered allocation the live side disagrees with."""
        allocation = record.allocation
        self.metrics.counter("recovery.conflicts").inc()
        self.service.log(
            event="recovery_conflict",
            host=record.host,
            jobid=allocation.jobid,
            trusted=trusted,
        )
        released = self.state.release(record.host)
        reclaim = self._reclaim_spans.pop(record.host, None)
        if reclaim is not None:
            reclaim.end(outcome="recovery_conflict")
        claim = released.claimed_by if released else None
        if claim is not None:
            claim.reserved_host = None

    def _adopt_from_inventory(self, record, leases) -> None:
        """Adopt a pre-crash allocation a daemon inventory testifies to.

        Only a restarted incarnation inside its recovery window adopts:
        outside it, an unknown lease in a report is stale noise (e.g. a
        subapp the app is about to tear down), and a wrong adoption would
        merely block the host until the lease expired.  The lowest listed
        jobid wins when several are named — a deterministic pick so two
        same-seed runs reconstruct byte-identical state regardless of
        daemon re-registration order."""
        leases = sorted(int(j) for j in leases)
        if not leases or self.proc.env.now >= self._recovery_until:
            return
        now = self.proc.env.now
        fresh = record.allocation is None
        allocation = self.state.adopt_allocation(
            record.host,
            leases[0],
            now=now,
            lease_expires_at=now + self.cal.lease_ttl,
        )
        if allocation is None:
            self.service.log(
                event="lease_conflict", host=record.host, leases=leases
            )
            return
        if fresh:
            self.metrics.counter("leases.adopted").inc()
            self.service.log(
                event="lease_adopted", host=record.host, jobid=leases[0]
            )

    def _note_ready(self, host) -> None:
        if self._ready.triggered:
            return
        self._reports_seen.add(host)
        if self._reports_seen >= self._managed_set:
            self._ready.succeed()

    def _owner_priority(self, record) -> None:
        """Revoke an allocation when the machine's owner is at the console."""
        allocation = record.allocation
        if (
            record.console_active
            and allocation is not None
            and allocation.state is AllocationState.ACTIVE
            and self.policy.reclaim_on_owner_return(self.state, record)
        ):
            self.service.log(
                event="owner_reclaim", host=record.host, jobid=allocation.jobid
            )
            self._start_reclaim(record.host, claimed_by=None)
        elif (
            record.console_active
            and allocation is not None
            and allocation.state is AllocationState.MIGRATING
            and record.host not in self._recalled
        ):
            # Owner back on a loaned machine: recall the loan gracefully.
            # The donor does NOT release here — the loan ends through the
            # borrower's release (or lease expiry as the backstop), so the
            # machine is never grantable on two shards at once.
            self._recalled.add(record.host)
            self.service.federation_counters["recalls"] += 1
            self.metrics.counter("federation.recalls").inc()
            self.service.log(
                event="loan_recall",
                host=record.host,
                jobid=allocation.jobid,
                to_shard=allocation.loaned_to,
            )
            self.proc.thread(
                self._fed_notify(
                    allocation.loaned_to,
                    protocol.borrow_recall(record.host, allocation.jobid),
                ),
                name=f"loan-recall-{record.host}",
            )

    # -- app sessions --------------------------------------------------------

    def _serve_app(self, conn, submit_msg):
        job = self.state.register_job(
            user=submit_msg["user"],
            home_host=submit_msg["host"],
            rsl_text=submit_msg["rsl"],
            argv=submit_msg["argv"],
            adaptive_hint=bool(submit_msg.get("adaptive")),
        )
        job.conn = conn
        self._job_spans[job.jobid] = self.tracer.start(
            "broker.job",
            parent=protocol.trace_of(submit_msg),
            actor="rbroker",
            host=self.proc.machine.name,
            jobid=job.jobid,
            user=job.user,
        )
        self.metrics.counter("broker.submits").inc()
        self.service.log(
            event="submit",
            jobid=job.jobid,
            user=job.user,
            rsl=submit_msg["rsl"],
            argv=list(submit_msg["argv"]),
        )
        _safe_send(conn, protocol.submit_ack(job.jobid, epoch=self.epoch))
        yield from self._session_loop(job, conn)

    def _session_loop(self, job, conn):
        """Serve one app connection until the job finishes or the link dies.

        On EOF with the job unfinished the session is *orphaned*, not
        killed: the app may merely have lost its link (or be resuming after
        a broker restart found its old connection half-open), so the job
        gets ``session_resume_grace`` seconds to reattach before its
        holdings are freed."""
        try:
            while True:
                msg = yield conn.recv()
                yield from self._app_message(job, msg)
                if job.done:
                    break
        except ConnectionClosed:
            conn.close()
            if job.conn is conn and not job.done:
                job.conn = None
                yield from self._orphan_session(job)
            return
        conn.close()

    def _orphan_session(self, job):
        """Give a disconnected app a grace period to resume before the job
        is declared gone (then: requests dropped, holdings freed)."""
        self.metrics.counter("broker.sessions_orphaned").inc()
        self.service.log(event="session_orphaned", jobid=job.jobid)
        timer = self.proc.sleep(self.cal.session_resume_grace)
        try:
            yield timer
        finally:
            timer.cancel()
        if job.conn is None and not job.done:
            yield from self._finish_job(job, code=None)

    def _serve_resume(self, conn, msg):
        """Reattach an app session lost to a broker (or link) failure.

        The job keeps its original jobid.  Reconciliation order matters for
        the no-double-grant guarantee: first drop ACTIVE allocations the app
        no longer claims (their grant message died with the old link), then
        adopt everything it does claim, then requeue its unanswered
        requests — deduped against requests already queued — and only then
        run the scheduler."""
        jobid = int(msg["jobid"])
        span = self.tracer.start(
            "broker.resume",
            parent=protocol.trace_of(msg),
            actor="rbroker",
            jobid=jobid,
            epoch=self.epoch,
        )
        job = self.state.jobs.get(jobid)
        if job is None:
            job = self.state.adopt_job(
                jobid=jobid,
                user=msg["user"],
                home_host=msg["host"],
                rsl_text=msg["rsl"],
                argv=msg["argv"],
                adaptive_hint=bool(msg.get("adaptive")),
            )
            self._job_spans[jobid] = self.tracer.start(
                "broker.job",
                parent=protocol.trace_of(msg),
                actor="rbroker",
                host=self.proc.machine.name,
                jobid=jobid,
                user=job.user,
                resumed=True,
            )
        if job.done:
            _safe_send(
                conn, protocol.resume_ack(jobid, self.epoch, ok=False)
            )
            span.end(outcome="rejected")
            conn.close()
            return
        old = job.conn
        job.conn = conn
        if old is not None and old is not conn:
            # The previous session thread sees EOF, notices it is no longer
            # job.conn, and exits without orphaning.
            old.close()
        now = self.proc.env.now
        claimed = set(str(h) for h in msg.get("holdings", ()))
        for allocation in sorted(
            self.state.allocations_of(jobid), key=lambda a: a.host
        ):
            if (
                allocation.host not in claimed
                and allocation.state is AllocationState.ACTIVE
            ):
                # Granted by a previous incarnation (or into a severed
                # link) and never consumed by the app: take it back.
                self.state.release(allocation.host)
                self.service.log(
                    event="stale_allocation_dropped",
                    host=allocation.host,
                    jobid=jobid,
                )
        for host in sorted(claimed):
            adopted = self.state.adopt_allocation(
                host, jobid, now=now, lease_expires_at=now + self.cal.lease_ttl
            )
            if adopted is None:
                record = self.state.machines.get(host)
                existing = record.allocation if record is not None else None
                if existing is not None and existing.recovered:
                    # A journal-recovered allocation against a live app's
                    # claim: the live side wins (the recovered holder may
                    # not even exist any more).
                    self._drop_recovered(record, trusted=[jobid])
                    self.state.adopt_allocation(
                        host,
                        jobid,
                        now=now,
                        lease_expires_at=now + self.cal.lease_ttl,
                    )
                else:
                    self.service.log(
                        event="lease_conflict", host=host, leases=[jobid]
                    )
        for allocation in self.state.allocations_of(jobid):
            if allocation.state is AllocationState.RECLAIMING:
                # The revoke sent to the old session died with it: repeat it
                # so the reclamation can complete.
                _safe_send(conn, protocol.revoke(allocation.host))
        for entry in msg.get("pending", ()):
            reqid = int(entry["reqid"])
            if (jobid, reqid) in self._reqids:
                continue  # still queued from this very incarnation
            request = PendingRequest(
                reqid=reqid,
                jobid=jobid,
                symbolic=entry["symbolic"],
                firm=bool(entry["firm"]),
                arrived_at=now,
            )
            self.state.pending.append(request)
            self._reqids[(jobid, reqid)] = request
            self._request_spans[(jobid, reqid)] = self.tracer.start(
                "broker.request",
                parent=self._job_spans.get(jobid),
                actor="rbroker",
                jobid=jobid,
                reqid=reqid,
                symbolic=request.symbolic,
                firm=request.firm,
                resubmitted=True,
            )
            self.metrics.gauge("broker.pending_requests").inc()
            self.service.log(
                event="machine_request",
                jobid=jobid,
                reqid=reqid,
                symbolic=request.symbolic,
                firm=request.firm,
                resubmitted=True,
            )
        self.metrics.counter("sessions.resumed").inc()
        self.service.log(
            event="session_resumed",
            jobid=jobid,
            epoch=self.epoch,
            holdings=sorted(claimed),
            pending=len(msg.get("pending", ())),
        )
        _safe_send(
            conn, protocol.resume_ack(jobid, self.epoch, ok=True)
        )
        span.end(outcome="resumed")
        # Requests that waited out the orphan period were skipped (not
        # evaluated) by every pass in between: now that grants are
        # deliverable again they must be re-examined.
        self.state.mark_job_requests_dirty(jobid)
        yield from self._schedule()
        if self._fed_enabled:
            # Requeued requests lost their borrow loops with the old
            # incarnation (or never had one): restart them.
            for request in list(self.state.pending):
                if request.jobid == jobid:
                    self._maybe_borrow(job, request)
        yield from self._session_loop(job, conn)

    def _app_message(self, job, msg):
        kind = msg.get("type")
        if kind == "machine_request":
            yield self.proc.sleep(self.cal.broker_decision)
            request = PendingRequest(
                reqid=msg["reqid"],
                jobid=job.jobid,
                symbolic=msg["symbolic"],
                firm=bool(msg["firm"]),
                arrived_at=self.proc.env.now,
            )
            self.state.pending.append(request)
            self._reqids[(job.jobid, request.reqid)] = request
            self._request_spans[(job.jobid, request.reqid)] = self.tracer.start(
                "broker.request",
                parent=protocol.trace_of(msg) or self._job_spans.get(job.jobid),
                actor="rbroker",
                jobid=job.jobid,
                reqid=request.reqid,
                symbolic=request.symbolic,
                firm=request.firm,
            )
            self.metrics.gauge("broker.pending_requests").inc()
            self.service.log(
                event="machine_request",
                jobid=job.jobid,
                reqid=request.reqid,
                symbolic=request.symbolic,
                firm=request.firm,
            )
            yield from self._schedule()
            if not self._fed_enabled:
                self._deny_if_unsatisfiable(job, request)
            else:
                # Federated deny semantics: before giving up, ask the
                # sibling shards (the borrow loop issues the denial itself
                # once unsatisfiability is conclusive federation-wide).
                self._maybe_borrow(job, request, hint=msg.get("hint"))
        elif kind == "released":
            yield from self._on_released(job, msg["host"])
        elif kind == "job_done":
            yield from self._finish_job(job, code=msg.get("code"))

    def _deny_if_unsatisfiable(self, job, request) -> None:
        """Reject a request no machine on the network could *ever* satisfy.

        A request is queued while machines are merely busy; but if every
        managed machine has reported and none matches the symbolic name and
        RSL constraints even in the best case, waiting is futile and the
        job deserves an immediate error (its rsh' then fails like a plain
        rsh to an unknown host would).
        """
        if request not in self.state.pending:
            return  # already granted or being reclaimed for
        if not self.state.all_reported(self.service.managed_hosts):
            return  # incomplete knowledge: keep waiting
        if self._satisfiable(job, request.symbolic):
            return  # satisfiable in principle; stay queued
        self._deny_request(job, request)

    def _deny_request(self, job, request) -> None:
        """Issue the denial for a conclusively unsatisfiable request."""
        self.state.pending.remove(request)
        self._reqids.pop((job.jobid, request.reqid), None)
        span = self._request_spans.pop((job.jobid, request.reqid), None)
        if span is not None:
            span.end(outcome="denied")
        self.metrics.counter("broker.denials").inc()
        self.metrics.gauge("broker.pending_requests").dec()
        self.service.log(
            event="denied",
            jobid=job.jobid,
            reqid=request.reqid,
            symbolic=request.symbolic,
        )
        if job.conn is not None:
            _safe_send(
                job.conn,
                protocol.machine_denied(request.reqid, "no machine can match"),
            )

    def _satisfiable(self, job, symbolic) -> bool:
        """Whether any reported machine could ever satisfy (symbolic, RSL).

        Memoized per request shape against the state's capability version:
        the verdict can only change when the reported set or a reported
        machine's matching view changes, and every such change bumps the
        version."""
        if not self.state.use_indexes:
            return self.state.satisfiable_somewhere(symbolic, job)
        key = (symbolic, job.rsl.source, job.home_host)
        version = self.state.capability_version
        hit = self._deny_memo.get(key)
        if hit is not None and hit[1] == version:
            return hit[0]
        verdict = self.state.satisfiable_somewhere(symbolic, job)
        self._deny_memo[key] = (verdict, version)
        return verdict

    # -- allocation engine -----------------------------------------------------

    def _schedule(self):
        """Run the policy over the pending queue until no progress.

        Indexed mode evaluates only the dirty requests — those whose
        candidate set may have changed since they last waited (the state's
        invariant: a clean request's decision is always "wait").  Each
        batch is a frozen service-order snapshot, evaluated against the
        evolving state exactly like one of the reference scheduler's
        passes; any grant or preemption re-dirties the whole queue, which
        reproduces the reference loop's evaluate-until-no-progress fixed
        point decision for decision."""
        decisions = self.metrics.counter("broker.policy_decisions")
        if not self.state.use_indexes:
            # Reference scheduler: evaluate every pending request, repeat
            # until a full pass makes no progress.
            progress = True
            while progress:
                progress = False
                self.metrics.counter("broker.sched_passes").inc()
                for request in self.state.pending_sorted():
                    if request not in self.state.pending:
                        continue  # satisfied earlier in this very pass
                    if request.reserved_host is not None:
                        continue  # a machine is being reclaimed for this one
                    job = self.state.jobs.get(request.jobid)
                    if job is None or job.done:
                        self.state.pending.remove(request)
                        continue
                    if job.conn is None:
                        # Orphaned session: hold its requests (it may resume
                        # and want them) but never grant into the void.
                        continue
                    decision = self.policy.decide(self.state, request)
                    decisions.inc()
                    if decision.kind.value == "grant":
                        self._grant(request, decision.host)
                        progress = True
                    elif decision.kind.value == "preempt":
                        self._start_reclaim(decision.host, claimed_by=request)
                        progress = True
            return
        while True:
            batch = self.state.take_dirty_pending()
            if not batch:
                break
            self.metrics.counter("broker.sched_passes").inc()
            for request in batch:
                if request not in self.state.pending:
                    continue  # satisfied earlier in this very pass
                if request.reserved_host is not None:
                    continue  # a machine is being reclaimed for this request
                job = self.state.jobs.get(request.jobid)
                if job is None or job.done:
                    self.state.pending.remove(request)
                    continue
                if job.conn is None:
                    continue  # orphaned session: hold, never grant
                decision = self.policy.decide(self.state, request)
                decisions.inc()
                if decision.kind.value == "grant":
                    # The allocation change marks everything dirty, so the
                    # next batch replays the queue like a reference re-pass.
                    self._grant(request, decision.host)
                elif decision.kind.value == "preempt":
                    self._start_reclaim(decision.host, claimed_by=request)
                    # No allocation flipped (the victim still holds until it
                    # releases); re-dirty explicitly to mirror the reference
                    # scheduler's progress-driven re-pass.
                    self.state.mark_all_pending_dirty()
        return
        yield  # pragma: no cover - generator form for uniform call sites

    def _grant(self, request: PendingRequest, host: str) -> None:
        job = self.state.job(request.jobid)
        self.state.pending.remove(request)
        self._reqids.pop((request.jobid, request.reqid), None)
        self.state.allocate(
            host,
            request.jobid,
            firm=request.firm,
            now=self.proc.env.now,
            lease_expires_at=self.proc.env.now + self.cal.lease_ttl,
        )
        waited = self.proc.env.now - request.arrived_at
        span = self._request_spans.pop((request.jobid, request.reqid), None)
        if span is not None:
            span.end(outcome="granted", host=host, waited=waited)
        self.metrics.counter("broker.grants").inc()
        self.metrics.histogram("broker.grant_wait").observe(waited)
        self.metrics.gauge("broker.pending_requests").dec()
        self.service.log(
            event="grant",
            jobid=request.jobid,
            reqid=request.reqid,
            host=host,
            waited=waited,
        )
        if self._fencing:
            # Install the grant on the hosting daemon, epoch-stamped, before
            # the app hears about it: a fenced (stale-epoch) incarnation is
            # rejected here and demotes before its grant can double-allocate,
            # and the daemon audits the machine for a second job's subapp
            # (the double-grant counter the chaos harness pins at zero).
            daemon = self._daemon_conns.get(host)
            if daemon is not None:
                _safe_send(
                    daemon,
                    protocol.grant_install(
                        request.jobid, request.reqid, self.epoch
                    ),
                )
        if job.conn is not None:
            # The grant carries the request span's context so the app can
            # parent asynchronous module grows under the broker's decision.
            _safe_send(
                job.conn,
                protocol.attach_trace(
                    protocol.machine_grant(request.reqid, host),
                    span.context if span is not None else None,
                ),
            )

    def _start_reclaim(self, host: str, claimed_by) -> None:
        record = self.state.machine(host)
        allocation = record.allocation
        assert allocation is not None and allocation.state is AllocationState.ACTIVE
        allocation.state = AllocationState.RECLAIMING
        allocation.reclaiming_since = self.proc.env.now
        allocation.claimed_by = claimed_by
        if claimed_by is not None:
            claimed_by.reserved_host = host
        journal = self.state.journal
        if journal is not None:
            journal.record(
                {
                    "op": "reclaim",
                    "host": host,
                    "since": allocation.reclaiming_since,
                    "claim": (
                        [claimed_by.jobid, claimed_by.reqid]
                        if claimed_by is not None
                        else None
                    ),
                }
            )
        victim = self.state.job(allocation.jobid)
        # Parent the reclaim under whatever demanded it: the claiming
        # request's span, or the victim's own job span on owner reclaims.
        if claimed_by is not None:
            parent = self._request_spans.get((claimed_by.jobid, claimed_by.reqid))
        else:
            parent = self._job_spans.get(allocation.jobid)
        reclaim = self.tracer.start(
            "broker.reclaim",
            parent=parent,
            actor="rbroker",
            host=host,
            victim=allocation.jobid,
            for_jobid=claimed_by.jobid if claimed_by else None,
        )
        self._reclaim_spans[host] = reclaim
        self.metrics.counter("broker.revokes").inc()
        self.service.log(
            event="revoke",
            host=host,
            victim=allocation.jobid,
            for_jobid=claimed_by.jobid if claimed_by else None,
        )
        if victim.conn is not None:
            _safe_send(
                victim.conn,
                protocol.attach_trace(protocol.revoke(host), reclaim.context),
            )

    def _on_released(self, job, host: str):
        record = self.state.machines.get(host)
        if record is None or record.allocation is None:
            return
        if record.allocation.jobid != job.jobid:
            return  # stale release from a previous holder
        if record.borrowed_from is not None:
            # Returning a loan: the record leaves this shard's table
            # entirely (the donor resumes scheduling over the machine).
            donor = record.borrowed_from
            self.state.release(host)
            self._forget_loan(host, job.jobid, donor)
            yield from self._schedule()
            return
        allocation = self.state.release(host)
        reclaim = self._reclaim_spans.pop(host, None)
        if reclaim is not None:
            reclaim.end()
            self.metrics.histogram("broker.reclaim_seconds").observe(
                reclaim.duration
            )
        self.service.log(event="released", host=host, jobid=job.jobid)
        claim = allocation.claimed_by
        if claim is not None:
            claim.reserved_host = None
            if claim in self.state.pending:
                claimer = self.state.jobs.get(claim.jobid)
                if (
                    claimer is not None
                    and not claimer.done
                    and claimer.conn is not None
                    # The machine may have died between the revoke and the
                    # release (its daemon connection dropped): only hand it
                    # over if it is still known-good, otherwise leave the
                    # request queued for the scheduler pass below.
                    and record.reported
                    and not record.console_active
                ):
                    self._grant(claim, host)
        yield from self._schedule()

    def _finish_job(self, job, code):
        job.done = True
        self.state.drop_job_requests(job.jobid)
        for key in [k for k in self._request_spans if k[0] == job.jobid]:
            self._request_spans.pop(key).end(outcome="dropped")
            self.metrics.gauge("broker.pending_requests").dec()
        for key in [k for k in self._reqids if k[0] == job.jobid]:
            self._reqids.pop(key, None)
        for allocation in self.state.allocations_of(job.jobid):
            record = self.state.machines.get(allocation.host)
            released = self.state.release(allocation.host)
            reclaim = self._reclaim_spans.pop(allocation.host, None)
            if reclaim is not None:
                reclaim.end(outcome="job_done")
            claim = released.claimed_by if released else None
            if claim is not None:
                claim.reserved_host = None
            if record is not None and record.borrowed_from is not None:
                self._forget_loan(
                    allocation.host, job.jobid, record.borrowed_from
                )
        span = self._job_spans.pop(job.jobid, None)
        if span is not None:
            span.end(code=code)
        retain = self.service.retain_done_jobs
        journal = self.state.journal
        if journal is not None:
            journal.record(
                {"op": "job_done", "jobid": job.jobid, "prune": not retain}
            )
        if not retain:
            # Service mode: the job table must not grow without bound.  A
            # resume for a pruned job cannot arrive (its app exited before
            # job_done), and a stray one would self-heal through the
            # orphan-session grace anyway.
            self.state.jobs.pop(job.jobid, None)
        self.service.log(event="job_done", jobid=job.jobid, code=code)
        yield from self._schedule()
