"""``rbdaemon`` — the per-machine monitoring daemon.

Started on every managed machine by the broker (via plain rsh, with ordinary
user privileges) at broker startup.  It periodically reports the machine's
monitorable state — "the CPU status, the users who are logged on, the number
of running jobs, and the keyboard- and the mouse-status" (paper §3) — over a
persistent connection.  It takes no actions itself: all job control flows
through the application layer, which is what lets the whole resource
management layer run unprivileged.

The reporting is **delta-based** (DESIGN.md §12): a full snapshot + lease
inventory goes out on hello, on any change of the machine's cheap *change
probe* (cpu load, process-table version, console state, login count), and at
least every ``daemon_full_report_every`` cycles; the reports in between are
compact :func:`~repro.broker.protocol.daemon_beacon` messages that renew
liveness and leases without shipping a snapshot.  The probe covers every
field the broker's :meth:`MachineRecord.update` consumes — a lease change
always changes the process table, so a beacon never hides one — and the
message cadence is unchanged, so heartbeat timing (and with it every grant
timeline) is byte-identical to always-full reporting.

Two additions beyond the paper support broker crash recovery:

* every hello/report carries the machine's **lease inventory** — the jobids
  with a live subapp on the host, read straight from the process table (the
  subapp's argv names its job) — which renews the grants' leases and lets a
  restarted broker re-adopt allocations it lost with its state;
* the daemon watches its broker connection for EOF (a send into a dead peer
  is silently dropped on this LAN, so only ``recv`` surfaces loss) and, when
  the connection dies, **re-registers**: it redials forever with capped
  backoff and replays a full-inventory hello.  It never exits on broker
  loss — exiting would deadlock the keeper, which respawns daemons only when
  their connection (not their process) drops.
"""

from __future__ import annotations

import json

from repro.cluster import ports
from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.os.retry import connect_any_forever, connect_any_with_backoff
from repro.broker import protocol

#: Per-machine fencing token: the highest broker epoch any process on this
#: machine has witnessed, persisted so it survives daemon restarts (it must —
#: a respawned daemon that forgot the epoch would accept a stale ex-primary).
EPOCH_WITNESS_PATH = "/var/rb_epoch"


def witnessed_epoch(machine) -> int:
    """The highest broker epoch this machine has witnessed (0 = none)."""
    if not machine.fs.exists(EPOCH_WITNESS_PATH):
        return 0
    try:
        return int(machine.fs.read(EPOCH_WITNESS_PATH).strip())
    except ValueError:
        return 0


def witness_epoch(machine, epoch: int) -> int:
    """Raise (never lower) the machine's witnessed epoch; returns the new
    witnessed value."""
    current = witnessed_epoch(machine)
    if epoch > current:
        machine.fs.write(EPOCH_WITNESS_PATH, str(int(epoch)))
        return int(epoch)
    return current


def leased_jobids(proc):
    """The machine's lease inventory: sorted jobids with a live subapp here.

    Wrapped execs put the jobid in the subapp's argv (``subapp app_host
    app_port token jobid``) precisely so this scan needs nothing but the
    process table — the daemon keeps no state of its own to lose.
    """
    jobids = set()
    for p in proc.machine.procs.values():
        if not (p.is_alive and p.argv and p.argv[0] == "subapp"):
            continue
        if len(p.argv) < 5:
            continue  # pre-lease wire format: no jobid to report
        try:
            jobids.add(int(p.argv[4]))
        except ValueError:
            continue
    return sorted(jobids)


def _another_daemon_running(proc) -> bool:
    """True if a different live rbdaemon already watches this machine.

    After a broker restart the keeper rsh-spawns a fresh daemon while the
    old one is busy re-registering; whichever boots second bows out so the
    broker never sees two sessions for one host.
    """
    for p in proc.machine.procs.values():
        if p is proc:
            continue
        if p.is_alive and p.argv and p.argv[0] == "rbdaemon":
            return True
    return False


def _change_probe(proc):
    """The machine facts whose change forces a full report.

    Everything :meth:`MachineRecord.update` consumes is covered: cpu load
    and process/login counts directly, console state directly, and the
    lease inventory transitively (a subapp starting or exiting bumps the
    process-table version).  Platform/kind/owner are static per machine.
    """
    machine = proc.machine
    return (
        machine.cpu.load,
        machine.proc_table_version,
        machine.console_active,
        len(machine.logged_in),
    )


def _handle_broker_message(proc, conn, msg, metrics) -> None:
    """Epoch witnessing and fencing over the broker's chatter (DESIGN.md §16).

    Epoch-stamped messages (``daemon_welcome``, ``grant_install``,
    ``lease_renew`` — only sent when a warm standby is configured) raise the
    machine's persisted witness; one stamped *below* the witness is answered
    with :func:`~repro.broker.protocol.fence_reject`, which demotes the
    sender.  ``grant_install`` additionally audits the machine for a live
    subapp of another job — the double-grant counter the chaos harness pins
    at zero.
    """
    kind = msg.get("type")
    if kind not in ("daemon_welcome", "grant_install", "lease_renew"):
        return
    epoch = int(msg.get("epoch", 0))
    witnessed = witnessed_epoch(proc.machine)
    if epoch < witnessed:
        metrics.counter("fencing.rejections").inc()
        conn.send(protocol.fence_reject(epoch, witnessed, proc.machine.name))
        return
    witness_epoch(proc.machine, epoch)
    if kind == "grant_install":
        granted = int(msg.get("jobid", -1))
        others = [j for j in leased_jobids(proc) if j != granted]
        if others:
            metrics.counter("fencing.double_grants").inc()


def rbdaemon_main(proc):
    """Program body: ``argv = ["rbdaemon", broker_host, *failover_hosts]``.

    Extra argv entries are alternate broker addresses (the warm standby's
    well-known secondary); every reconnect round dials them all so the
    daemon finds whichever incarnation is alive within one backoff step.
    """
    from repro.obs import metrics_of, tracer_of

    if len(proc.argv) < 2:
        return 1
    broker_hosts = list(dict.fromkeys(proc.argv[1:]))
    cal = proc.machine.network.calibration
    boot = tracer_of(proc).start(
        "rbdaemon.boot",
        actor=f"rbdaemon:{proc.machine.name}",
        host=proc.machine.name,
    )
    yield proc.sleep(cal.daemon_startup)
    if _another_daemon_running(proc):
        boot.end(outcome="duplicate")
        return 0
    try:
        # The daemon may boot while the broker is still starting (or while
        # the LAN is partitioned); retry with backoff before giving up.
        conn = yield from connect_any_with_backoff(
            proc,
            broker_hosts,
            ports.BROKER,
            counter=metrics_of(proc).counter("rbdaemon.connect_retries"),
        )
    except (ConnectionRefused, NoSuchHost):
        boot.end(error="broker unreachable")
        return 1
    conn.send(protocol.daemon_hello(proc.machine.name, leases=leased_jobids(proc)))
    boot.end()
    # Detach so the broker's rsh invocation returns while we keep running.
    proc.daemonize()
    metrics = metrics_of(proc)
    reports = metrics.counter("rbdaemon.reports")
    full_reports = metrics.counter("rbdaemon.full_reports")
    beacons = metrics.counter("rbdaemon.beacons")
    report_bytes = metrics.counter("rbdaemon.report_bytes")
    reregistrations = metrics.counter("rbdaemon.reregistrations")
    full_every = max(1, cal.daemon_full_report_every)
    # Beacons differ only in their timestamp; size one once and reuse it.
    beacon_bytes = len(json.dumps(protocol.daemon_beacon(0.0)))
    # None forces the first report after (re)connecting to be a full one.
    last_probe = None
    cycles_since_full = 0
    while True:
        try:
            # The broker never speaks on this connection; the pending recv
            # exists to surface EOF — the only signal of broker death a
            # send-mostly peer gets on a drop-silently LAN.
            recv_ev = conn.recv()
            while True:
                probe = _change_probe(proc)
                if probe == last_probe and cycles_since_full < full_every:
                    conn.send(protocol.daemon_beacon(proc.env.now))
                    beacons.inc()
                    report_bytes.inc(beacon_bytes)
                    cycles_since_full += 1
                else:
                    message = protocol.daemon_report(
                        proc.machine.snapshot(), leases=leased_jobids(proc)
                    )
                    conn.send(message)
                    full_reports.inc()
                    report_bytes.inc(len(json.dumps(message)))
                    last_probe = probe
                    cycles_since_full = 1
                reports.inc()
                # Broker chatter (epoch stamps, with a standby configured) is
                # handled without resetting the report *deadline* — the
                # cadence the broker's liveness deadline counts on must not
                # stretch or compress under fencing traffic.  Each wait arms
                # a fresh timer for the remaining interval: a triggered
                # any_of cancels its losing timeout, so a woken-by-recv pass
                # cannot reuse the old one.
                due = proc.env.now + cal.daemon_report_interval
                while True:
                    remaining = due - proc.env.now
                    if remaining <= 0.0:
                        break
                    timer = proc.sleep(remaining)
                    try:
                        yield proc.env.any_of([timer, recv_ev])
                    finally:
                        timer.cancel()
                    if recv_ev.processed:
                        _handle_broker_message(
                            proc, conn, recv_ev.value, metrics
                        )
                        recv_ev = conn.recv()
                    if timer.processed:
                        break
        except ConnectionClosed:
            conn.close()
            last_probe = None  # the next incarnation starts with a full report
            cycles_since_full = 0
        # Broker (or the path to it) is gone: re-register.  Redial forever —
        # the keeper of a live broker respawns daemons on *connection* loss,
        # so a daemon that exited here would never be replaced.
        conn = yield from connect_any_forever(
            proc,
            broker_hosts,
            ports.BROKER,
            counter=metrics_of(proc).counter("rbdaemon.connect_retries"),
        )
        reregistrations.inc()
        conn.send(
            protocol.daemon_hello(
                proc.machine.name, leases=leased_jobids(proc), resumed=True
            )
        )
