"""``rbdaemon`` — the per-machine monitoring daemon.

Started on every managed machine by the broker (via plain rsh, with ordinary
user privileges) at broker startup.  It periodically reports the machine's
monitorable state — "the CPU status, the users who are logged on, the number
of running jobs, and the keyboard- and the mouse-status" (paper §3) — over a
persistent connection.  It takes no actions itself: all job control flows
through the application layer, which is what lets the whole resource
management layer run unprivileged.
"""

from __future__ import annotations

from repro.cluster import ports
from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.os.retry import connect_with_backoff
from repro.broker import protocol


def rbdaemon_main(proc):
    """Program body: ``argv = ["rbdaemon", broker_host]``."""
    from repro.obs import metrics_of, tracer_of

    if len(proc.argv) < 2:
        return 1
    broker_host = proc.argv[1]
    cal = proc.machine.network.calibration
    boot = tracer_of(proc).start(
        "rbdaemon.boot",
        actor=f"rbdaemon:{proc.machine.name}",
        host=proc.machine.name,
    )
    yield proc.sleep(cal.daemon_startup)
    try:
        # The daemon may boot while the broker is still starting (or while
        # the LAN is partitioned); retry with backoff before giving up.
        conn = yield from connect_with_backoff(
            proc,
            broker_host,
            ports.BROKER,
            counter=metrics_of(proc).counter("rbdaemon.connect_retries"),
        )
    except (ConnectionRefused, NoSuchHost):
        boot.end(error="broker unreachable")
        return 1
    conn.send(protocol.daemon_hello(proc.machine.name))
    boot.end()
    # Detach so the broker's rsh invocation returns while we keep running.
    proc.daemonize()
    reports = metrics_of(proc).counter("rbdaemon.reports")
    try:
        while True:
            conn.send(protocol.daemon_report(proc.machine.snapshot()))
            reports.inc()
            yield proc.sleep(cal.daemon_report_interval)
    except ConnectionClosed:
        return 1
