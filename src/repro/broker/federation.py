"""Federated broker control plane (DESIGN.md §17).

A federation partitions the managed machines across ``N`` broker shards —
contiguous slices of the machine list, aligned with the kernel's event-lane
partition (DESIGN.md §15) so one shard's whole control loop lives on one
lane — and runs one full :class:`~repro.broker.service.BrokerService` per
shard.  Each shard schedules only its own machines with flat per-shard
decision cost; a shard that cannot satisfy a request *borrows* a machine
from a sibling through the lease-migration protocol in
:mod:`repro.broker.core` (``borrow_request`` / ``borrow_reply`` /
``borrow_release`` / ``borrow_recall``).

Submissions route by **locality**: a job submitted from a machine goes to
the shard that manages that machine (structurally guaranteed — each shard's
program directory shadows ``rsh`` only on its own slice, and apps get their
shard's broker address in the environment).  Symbolic machine names carry a
**hash hint** (``crc32(name) % shards``, computed by rsh' when
``RB_FED_SHARDS`` is set) that seeds the borrow ring, so every shard
forwards a given name toward the same sibling first.

A one-shard federation is the degenerate case the identity property test
pins: every federated behaviour is gated on ``shard.count > 1``, so its
timeline, traces and state fingerprints are byte-identical to a standalone
:class:`BrokerService` on the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.broker.service import BrokerService, JobHandle


@dataclass(frozen=True)
class ShardConfig:
    """One broker's membership card in a federation.

    Immutable and shared by value: every shard's config lists the same
    ``broker_hosts`` (indexed by shard number), so any shard can dial any
    sibling's federation port without a lookup service."""

    #: This shard's index in ``[0, count)``.
    index: int
    #: Total number of shards in the federation.
    count: int
    #: Broker host of every shard, indexed by shard number.
    broker_hosts: Tuple[str, ...] = field(default=())


def shard_partitions(hosts: Sequence[str], shards: int) -> List[List[str]]:
    """Split ``hosts`` into ``shards`` contiguous slices.

    The split point formula (``index * shards // count``) is the same one
    the parallel kernel uses to map machines to event lanes, so with
    ``shards == lanes`` a shard's machines — and therefore its broker, its
    daemons and its apps — all land on one lane and the shard's control
    loop never crosses a lane boundary except to borrow."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, not {shards}")
    if shards > len(hosts):
        raise ValueError(
            f"cannot split {len(hosts)} machines into {shards} shards"
        )
    parts: List[List[str]] = [[] for _ in range(shards)]
    count = len(hosts)
    for i, host in enumerate(hosts):
        parts[i * shards // count].append(host)
    return parts


class FederationService:
    """Boot and drive a federation of broker shards on one cluster.

    The harness-side twin of :class:`BrokerService` for multi-shard runs:
    same submission/inspection surface, with routing by home host.  Tests
    and experiments that drive a single service keep working — a
    federation of one shard *is* a single service (``self.services[0]``)
    with nothing federated switched on."""

    def __init__(
        self,
        cluster,
        shards: int,
        policy_factory: Optional[Callable[[], Any]] = None,
        managed_hosts: Optional[Sequence[str]] = None,
        scheduler_mode: Optional[str] = None,
        journal: Optional[bool] = None,
        event_log_cap: Optional[int] = None,
        retain_done_jobs: bool = True,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        hosts = list(
            managed_hosts if managed_hosts is not None else cluster.machines
        )
        self.partitions = shard_partitions(hosts, shards)
        broker_hosts = tuple(part[0] for part in self.partitions)
        #: Shard index for every managed host (locality routing).
        self._shard_of_host: Dict[str, int] = {}
        for index, part in enumerate(self.partitions):
            for host in part:
                self._shard_of_host[host] = index
        #: The per-shard broker services, in shard order.
        self.services: List[BrokerService] = []
        for index, part in enumerate(self.partitions):
            config = ShardConfig(
                index=index, count=shards, broker_hosts=broker_hosts
            )
            self.services.append(
                BrokerService(
                    cluster,
                    policy=policy_factory() if policy_factory else None,
                    managed_hosts=part,
                    broker_host=part[0],
                    scheduler_mode=scheduler_mode,
                    journal=journal,
                    event_log_cap=event_log_cap,
                    retain_done_jobs=retain_done_jobs,
                    shard=config,
                )
            )
        #: Fault injectors find the federation through the cluster handle
        #: (e.g. ``ShardLinkPartition`` resolves shard indexes to broker
        #: hosts here).
        cluster.federation = self

    @property
    def shards(self) -> int:
        """Number of shards in this federation."""
        return len(self.services)

    def shard_of(self, host: str) -> int:
        """The shard index managing ``host`` (KeyError if unmanaged)."""
        return self._shard_of_host[host]

    def service_for(self, host: str) -> BrokerService:
        """The shard service managing ``host``."""
        return self.services[self._shard_of_host[host]]

    def broker_host_of(self, shard: int) -> str:
        """The broker machine of shard ``shard``."""
        return self.services[shard].broker_host

    # -- lifecycle ---------------------------------------------------------

    def wait_ready(self) -> None:
        """Run the simulation until every shard's daemons have reported."""
        for service in self.services:
            service.wait_ready()

    # -- submission (locality routing) -------------------------------------

    def submit(
        self,
        host: str,
        argv: Sequence[str],
        rsl: str = "",
        uid: str = "user",
    ) -> JobHandle:
        """Submit ``argv`` from ``host`` via the shard that manages it."""
        return self.service_for(host).submit(host, argv, rsl=rsl, uid=uid)

    # -- inspection --------------------------------------------------------

    def events_of(self, event: str) -> List[Dict[str, Any]]:
        """All shards' entries of one event kind, merged in time order.

        Ties break by shard index so two same-seed runs always merge
        identically."""
        merged: List[Tuple[float, int, Dict[str, Any]]] = []
        for index, service in enumerate(self.services):
            for entry in service.events_of(event):
                merged.append((float(entry.get("time", 0.0)), index, entry))
        merged.sort(key=lambda item: (item[0], item[1]))
        return [entry for _, _, entry in merged]

    def federation_stats(self) -> List[Dict[str, Any]]:
        """Each live shard's ``stats()`` federation block, in shard order."""
        blocks = []
        for service in self.services:
            if service.control is not None:
                blocks.append(service.control.stats()["federation"])
        return blocks

    def total_jobs_done(self) -> int:
        """Finished jobs across every shard (retained-jobs mode only)."""
        return sum(
            1
            for service in self.services
            for job in service.state.jobs.values()
            if job.done
        )
