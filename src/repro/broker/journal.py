"""Write-ahead journal and compacting snapshots for :class:`BrokerState`.

PR-4 taught a restarted broker to rebuild its tables from daemon
re-registration and app session resumption — correct, but blind for a whole
``broker_recovery_window`` and dependent on every periphery process
surviving to re-report.  This module makes the broker's ground truth
*durable*: every state mutation is appended to a checksummed write-ahead
log on the broker machine's simulated filesystem, so ``restart_broker()``
can recover jobs, leases, the pending queue, and the epoch from disk in
near-zero time and treat re-registration as a cross-check rather than the
sole source of truth (DESIGN.md §14).

Record framing
--------------
The journal is a stream of length-prefixed, CRC-checked records::

    [8-digit decimal payload length][8-hex-digit CRC32][JSON payload]

A record that ends mid-frame is a **torn tail** — the expected signature of
a crash (or an injected :class:`~repro.faults.JournalTornWrite`) — and
replay simply stops before it.  A full-length record whose CRC fails is
**corruption**; nothing after it can be trusted, so replay stops there too
and reconciliation against live daemon inventories covers the difference.

Generations
-----------
Files live under one directory as ``wal.NNNNNN`` / ``snap.NNNNNN`` pairs.
When the current WAL outgrows ``compact_bytes``, the attached state is
serialised into the next generation's snapshot and a fresh WAL is started;
only the last ``keep_generations`` generations are kept, so disk stays
bounded under sustained load.  Recovery loads the newest readable snapshot
(falling back one generation when it is missing or corrupt — generation 0's
snapshot is the implicit empty state) and replays every WAL from there
forward.

Crash model
-----------
All writes go through the per-machine :class:`~repro.os.filesystem
.Filesystem`, which survives process death (and even ``Machine.crash()``),
so fsync points are exactly the ``flush()`` calls — deterministic,
observable, and fault-injectable.  Structural mutations (grants, releases,
job registration, queue changes) are flushed write-through; high-rate noise
(machine view updates, lease renewals) is coalesced into dirty sets and
drained by the broker's periodic flusher thread.  A :class:`~repro.faults
.DiskStall` makes ``flush()`` a no-op for its duration (lag builds, the
health watchdog fires); ops buffered when the broker dies are discarded,
exactly like a page cache.

Shipping
--------
With a warm standby configured, every character that reaches a WAL (flushes
and compaction openers alike) is also accounted to a **ship stream** —
identified by the primary incarnation's epoch, offset in characters — and
retained until the standby acknowledges it, so the ship server can resend
the tail on reconnect.  Appends are whole frames, so acknowledged offsets
are always valid replay cut points (DESIGN.md §16).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.broker.state import (
    AllocationState,
    BrokerState,
    MachineRecord,
    PendingRequest,
)

#: Frame header: 8 decimal digits of payload length + 8 hex digits of CRC32.
_HEADER_CHARS = 16


def _frame(payload: str) -> str:
    """One framed journal record."""
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{len(payload):08d}{crc:08x}{payload}"


def parse_frames(data: str) -> Tuple[List[str], int, int]:
    """Split a journal file into payloads.

    Returns ``(payloads, torn, corrupt)``: ``torn`` counts an incomplete
    final frame (crash mid-write), ``corrupt`` a full-length frame whose
    header or checksum is wrong.  Either way parsing stops at the first bad
    frame — everything after an unreadable record is untrusted.
    """
    payloads: List[str] = []
    torn = 0
    corrupt = 0
    pos = 0
    end = len(data)
    while pos < end:
        header = data[pos : pos + _HEADER_CHARS]
        if len(header) < _HEADER_CHARS:
            torn += 1
            break
        try:
            length = int(header[:8])
            crc = int(header[8:], 16)
        except ValueError:
            corrupt += 1
            break
        payload = data[pos + _HEADER_CHARS : pos + _HEADER_CHARS + length]
        if len(payload) < length:
            torn += 1
            break
        if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != crc:
            corrupt += 1
            break
        payloads.append(payload)
        pos += _HEADER_CHARS + length
    return payloads, torn, corrupt


def _machine_op(record: MachineRecord) -> Dict[str, Any]:
    """The coalesced durable view of one machine record."""
    return {
        "op": "machine",
        "host": record.host,
        "platform": record.platform,
        "mkind": record.kind,
        "owner": record.owner,
        "console": record.console_active,
        "load": record.cpu_load,
        "nproc": record.n_processes,
        "reported": record.last_report >= 0.0,
        "seen": record.last_seen,
        "dead": record.dead,
        "leases": list(record.leases),
        "borrowed": record.borrowed_from,
    }


def snapshot_state(state: BrokerState) -> Dict[str, Any]:
    """Serialise the durable contract of ``state`` for a snapshot record."""
    allocations = []
    for host in state.machines:
        allocation = state.machines[host].allocation
        if allocation is None:
            continue
        claim = None
        if allocation.claimed_by is not None:
            claim = [allocation.claimed_by.jobid, allocation.claimed_by.reqid]
        allocations.append(
            {
                "host": allocation.host,
                "jobid": allocation.jobid,
                "firm": allocation.firm,
                "astate": allocation.state.value,
                "granted": allocation.granted_at,
                "expires": allocation.lease_expires_at,
                "since": allocation.reclaiming_since,
                "claim": claim,
                "loan": allocation.loaned_to,
            }
        )
    return {
        "next_jobid": state._next_jobid,
        "machines": [_machine_op(r) for r in state.machines.values()],
        "jobs": [
            {
                "jobid": job.jobid,
                "user": job.user,
                "home": job.home_host,
                "rsl": job.rsl.source,
                "argv": list(job.argv),
                "adaptive": job.adaptive,
                "done": job.done,
            }
            for job in state.jobs.values()
        ],
        "pending": [
            {
                "reqid": r.reqid,
                "jobid": r.jobid,
                "symbolic": r.symbolic,
                "firm": r.firm,
                "arrived": r.arrived_at,
                "reserved": r.reserved_host,
            }
            for r in state.pending
        ],
        "allocations": allocations,
    }


def state_fingerprint(state: BrokerState) -> Dict[str, Any]:
    """Canonical projection of the durable contract, for equivalence tests.

    Two states with equal fingerprints agree on everything the journal
    promises to preserve: machines (view, liveness, lease inventory), jobs,
    allocations (including reclaim progress and claims), the pending queue
    in order, and the jobid counter.  Volatile details — connections, index
    internals, exact ``last_report`` instants — are deliberately outside
    the contract.
    """
    return {
        "next_jobid": state._next_jobid,
        "machines": {
            host: _machine_op(record)
            for host, record in state.machines.items()
        },
        "jobs": {
            job.jobid: {
                "user": job.user,
                "home": job.home_host,
                "rsl": job.rsl.source,
                "argv": list(job.argv),
                "adaptive": job.adaptive,
                "done": job.done,
            }
            for job in state.jobs.values()
        },
        "allocations": {
            record.host: {
                "jobid": record.allocation.jobid,
                "firm": record.allocation.firm,
                "astate": record.allocation.state.value,
                "granted": record.allocation.granted_at,
                "expires": record.allocation.lease_expires_at,
                "since": record.allocation.reclaiming_since,
                "claim": (
                    None
                    if record.allocation.claimed_by is None
                    else [
                        record.allocation.claimed_by.jobid,
                        record.allocation.claimed_by.reqid,
                    ]
                ),
                "loan": record.allocation.loaned_to,
            }
            for record in state.machines.values()
            if record.allocation is not None
        },
        "pending": [
            {
                "reqid": r.reqid,
                "jobid": r.jobid,
                "symbolic": r.symbolic,
                "firm": r.firm,
                "arrived": r.arrived_at,
                "reserved": r.reserved_host,
            }
            for r in state.pending
        ],
    }


def restamp_recovered(state: BrokerState, now: float, lease_ttl: float) -> None:
    """Restart-time recovery policy over a rebuilt state (shared by journal
    recovery and standby promotion).

    Recovered machines keep their durable view but lose their *report* (no
    grants until the daemon proves liveness again) and get a fresh silence
    deadline; recovered leases are re-stamped at least one TTL out and marked
    ``recovered`` so re-registration can confirm them or flag a
    ``recovery.conflict``.
    """
    for record in state.machines.values():
        if record.last_report >= 0.0:
            record.last_report = -1.0
        if record.last_seen >= 0.0 and not record.dead:
            record.last_seen = now
        allocation = record.allocation
        if allocation is not None:
            allocation.recovered = True
            allocation.lease_expires_at = max(
                allocation.lease_expires_at, now + lease_ttl
            )
    state.mark_all_pending_dirty()


@dataclass
class RecoveryInfo:
    """What one snapshot+replay recovery saw and produced."""

    base_generation: int = 0
    top_generation: int = 0
    snapshot_used: bool = False
    records: int = 0
    epoch: int = 0
    torn_tails: int = 0
    corrupt_records: int = 0
    snapshot_fallbacks: int = 0
    skipped_ops: int = 0
    wal_files: List[int] = field(default_factory=list)


# -- replay (module-level: shared by recovery and the warm standby's shadow
# state, which applies shipped frames without owning a journal) --------------


def _apply_machine_op(state: BrokerState, op: Dict[str, Any]) -> None:
    record = state.add_machine(op["host"])
    if record.platform != op["platform"]:
        record.platform = op["platform"]
    if record.kind != op["mkind"]:
        record.kind = op["mkind"]
    if record.owner != op["owner"]:
        record.owner = op["owner"]
    if record.console_active != op["console"]:
        record.console_active = bool(op["console"])
    if record.cpu_load != op["load"]:
        record.cpu_load = int(op["load"])
    record.n_processes = int(op["nproc"])
    if op["reported"]:
        record.last_report = float(op["seen"])
    elif record.last_report >= 0.0:
        record.last_report = -1.0
    record.last_seen = float(op["seen"])
    if record.dead != bool(op["dead"]):
        record.dead = bool(op["dead"])
    record.leases = tuple(int(j) for j in op.get("leases", ()))
    record.borrowed_from = op.get("borrowed")


def _link_claim(state: BrokerState, allocation: Any, jobid: int, reqid: int) -> None:
    for request in state.pending:
        if request.jobid == jobid and request.reqid == reqid:
            allocation.claimed_by = request
            request.reserved_host = allocation.host
            return
    # The claimant is no longer pending (satisfied elsewhere, or its
    # job's requests were dropped) while the reclaim it demanded is
    # still in flight.  The live state keeps that dangling reference,
    # so replay carries the claim on a detached request rather than
    # silently forgetting who asked.
    allocation.claimed_by = PendingRequest(
        reqid=reqid,
        jobid=jobid,
        symbolic="",
        firm=False,
        arrived_at=-1.0,
        reserved_host=allocation.host,
    )


def apply_snapshot(
    state: BrokerState, doc: Dict[str, Any], info: RecoveryInfo
) -> None:
    """Rebuild ``state`` from one snapshot document (the replay baseline)."""
    state._next_jobid = max(state._next_jobid, int(doc.get("next_jobid", 1)))
    for op in doc.get("machines", ()):
        _apply_machine_op(state, op)
    for job in doc.get("jobs", ()):
        record = state.adopt_job(
            int(job["jobid"]),
            job["user"],
            job["home"],
            job.get("rsl", ""),
            list(job.get("argv", ())),
            adaptive_hint=bool(job.get("adaptive")),
        )
        if job.get("done"):
            record.done = True
    for entry in doc.get("pending", ()):
        request = PendingRequest(
            reqid=int(entry["reqid"]),
            jobid=int(entry["jobid"]),
            symbolic=entry["symbolic"],
            firm=bool(entry["firm"]),
            arrived_at=float(entry["arrived"]),
            reserved_host=entry.get("reserved"),
        )
        state.pending.append(request)
    for entry in doc.get("allocations", ()):
        host = entry["host"]
        state.add_machine(host)
        allocation = state.allocate(
            host,
            int(entry["jobid"]),
            bool(entry["firm"]),
            now=float(entry["granted"]),
            lease_expires_at=float(entry["expires"]),
        )
        if entry.get("astate") == AllocationState.RECLAIMING.value:
            allocation.state = AllocationState.RECLAIMING
            allocation.reclaiming_since = float(entry.get("since", -1.0))
        elif entry.get("astate") == AllocationState.MIGRATING.value:
            allocation.state = AllocationState.MIGRATING
            allocation.loaned_to = entry.get("loan")
        claim = entry.get("claim")
        if claim:
            _link_claim(state, allocation, claim[0], claim[1])


def apply_op(state: BrokerState, op: Dict[str, Any], info: RecoveryInfo) -> None:
    """Apply one replayed journal op to ``state``."""
    kind = op["op"]
    if kind == "epoch":
        info.epoch = max(info.epoch, int(op["epoch"]))
        state._next_jobid = max(state._next_jobid, int(op["first_jobid"]))
    elif kind == "machine":
        _apply_machine_op(state, op)
    elif kind == "job":
        state.adopt_job(
            int(op["jobid"]),
            op["user"],
            op["home"],
            op.get("rsl", ""),
            list(op.get("argv", ())),
            adaptive_hint=bool(op.get("adaptive")),
        )
    elif kind == "job_done":
        if op.get("prune"):
            state.jobs.pop(int(op["jobid"]), None)
        else:
            job = state.jobs.get(int(op["jobid"]))
            if job is not None:
                job.done = True
    elif kind == "alloc":
        state.add_machine(op["host"])
        state.allocate(
            op["host"],
            int(op["jobid"]),
            bool(op["firm"]),
            now=float(op["granted"]),
            lease_expires_at=float(op["expires"]),
        )
    elif kind == "release":
        record = state.machines.get(op["host"])
        if record is not None:
            released = record.allocation
            record.allocation = None
            if released is not None and released.claimed_by is not None:
                released.claimed_by.reserved_host = None
    elif kind == "reclaim":
        record = state.machines.get(op["host"])
        allocation = record.allocation if record is not None else None
        if allocation is not None:
            allocation.state = AllocationState.RECLAIMING
            allocation.reclaiming_since = float(op["since"])
            claim = op.get("claim")
            if claim:
                _link_claim(state, allocation, claim[0], claim[1])
    elif kind == "pend+":
        state.pending.append(
            PendingRequest(
                reqid=int(op["reqid"]),
                jobid=int(op["jobid"]),
                symbolic=op["symbolic"],
                firm=bool(op["firm"]),
                arrived_at=float(op["arrived"]),
            )
        )
    elif kind == "pend-":
        for request in state.pending:
            if request.reqid == op["reqid"] and request.jobid == op["jobid"]:
                state.pending.remove(request)
                break
    elif kind == "leases":
        for host, expires in op["leases"].items():
            record = state.machines.get(host)
            if record is not None and record.allocation is not None:
                record.allocation.lease_expires_at = float(expires)
    elif kind == "loan":
        # Donor side of a cross-shard borrow: the machine stays allocated
        # (to the borrower's jobid, leased as usual) but is marked out on
        # loan so the recovered donor excludes it from its own scheduling.
        record = state.machines.get(op["host"])
        allocation = record.allocation if record is not None else None
        if allocation is not None:
            allocation.state = AllocationState.MIGRATING
            allocation.loaned_to = op.get("to")
    elif kind == "forget":
        # Borrower side of a loan ending: the borrowed record vanishes.
        state.forget_machine(op["host"])
    # Unknown ops (a newer writer) are ignored: forward-compatible replay.


def apply_payloads(
    state: BrokerState, payloads: List[str], info: RecoveryInfo
) -> None:
    """Apply a run of framed payloads (shipped or replayed) to ``state``,
    with the same skip-on-inconsistency policy as WAL replay."""
    for payload in payloads:
        try:
            op = json.loads(payload)
        except ValueError:
            info.corrupt_records += 1
            break
        try:
            apply_op(state, op, info)
        except Exception:
            info.skipped_ops += 1
            continue
        info.records += 1


class BrokerJournal:
    """Append-only WAL + compacting snapshots over one simulated filesystem.

    Standalone-testable: only needs a :class:`Filesystem`, a clock callable
    returning the current simulated time, and (optionally) a metrics
    registry.  :class:`~repro.broker.service.BrokerService` wires the real
    ones and attaches the live state so mutations self-record.
    """

    def __init__(
        self,
        fs: Any,
        clock: Callable[[], float],
        metrics: Any = None,
        directory: str = "/var/rbroker",
        compact_bytes: int = 65536,
        keep_generations: int = 2,
    ) -> None:
        self.fs = fs
        self.clock = clock
        self.metrics = metrics
        self.directory = directory.rstrip("/")
        self.compact_bytes = compact_bytes
        self.keep_generations = max(2, keep_generations)
        self._state: Optional[BrokerState] = None
        existing = self._generations()
        self.generation = existing[-1] if existing else 0
        self._wal_bytes = (
            len(self.fs.read(self._wal_path(self.generation)))
            if self.fs.exists(self._wal_path(self.generation))
            else 0
        )
        #: Framed records accepted but not yet on disk (the "page cache").
        self._buffer: List[str] = []
        #: Oldest instant anything has been waiting to reach disk; -1 = clean.
        self._oldest_pending = -1.0
        #: Coalesced dirty sets drained at the next flush.
        self._machine_dirty: Dict[str, MachineRecord] = {}
        self._lease_dirty: Dict[str, float] = {}
        self._stall_until = -1.0
        #: Last attached epoch; re-seeded into every fresh generation's WAL
        #: so compaction cannot lose it.
        self._epoch = 0
        self.records_written = 0
        self.flushes = 0
        self.compactions = 0
        #: WAL shipping to a warm standby.  The ship *stream* is the
        #: concatenation of every character physically appended to a WAL
        #: after :meth:`enable_shipping` (flushes and compaction openers
        #: alike), identified by the enabling incarnation's epoch.  Offsets
        #: are characters of that stream; every append is whole frames, so
        #: chunk boundaries are always valid replay cut points.
        self.ship_enabled = False
        self.ship_stream = 0
        self.flushed_offset = 0
        self.acked_offset = 0
        #: Flushed-but-unacked chunks ``(offset, data)``, retained for
        #: resend on standby reconnect; trimmed as acks arrive.
        self._ship_chunks: List[Tuple[int, str]] = []
        #: Kick callable: invoked (if set) after each append so the ship
        #: server wakes and drains new data within its in-flight window.
        self._ship_kick: Optional[Callable[[], None]] = None

    # -- paths and generations ----------------------------------------------

    def _wal_path(self, generation: int) -> str:
        return f"{self.directory}/wal.{generation:06d}"

    def _snap_path(self, generation: int) -> str:
        return f"{self.directory}/snap.{generation:06d}"

    def _generations(self) -> List[int]:
        """Sorted generation numbers that have any file on disk."""
        prefix = self.directory + "/"
        found = set()
        for path in self.fs.listdir():
            if not path.startswith(prefix):
                continue
            name = path[len(prefix) :]
            for stem in ("wal.", "snap."):
                if name.startswith(stem):
                    try:
                        found.add(int(name[len(stem) :]))
                    except ValueError:
                        pass
        return sorted(found)

    # -- recording -----------------------------------------------------------

    def attach(self, state: BrokerState, epoch: int, compact: bool = False) -> None:
        """Bind the live state so its mutations self-record.

        ``compact=True`` (the post-recovery path) immediately snapshots the
        attached state into a fresh generation, so the next recovery replays
        from here rather than from the whole history.  An epoch record is
        always written: the successor broker must recover a strictly higher
        epoch than any it could have journalled.
        """
        self._state = state
        state.journal = self
        self._epoch = epoch
        if compact:
            self._compact()
        self.record({"op": "epoch", "epoch": epoch, "first_jobid": state._next_jobid})

    def record(self, op: Dict[str, Any]) -> None:
        """Append one structural op, write-through (flushed immediately
        unless the disk is stalled)."""
        self._buffer.append(_frame(json.dumps(op, sort_keys=True, separators=(",", ":"))))
        self.records_written += 1
        if self._oldest_pending < 0.0:
            self._oldest_pending = self.clock()
        if self.metrics is not None:
            self.metrics.counter("journal.records").inc()
        self.flush()

    def note_machine(self, record: MachineRecord) -> None:
        """Mark one machine's durable view dirty (coalesced until flush)."""
        self._machine_dirty[record.host] = record
        if self._oldest_pending < 0.0:
            self._oldest_pending = self.clock()

    def note_lease(self, host: str, expires_at: float) -> None:
        """Mark one lease renewal (coalesced: only the latest expiry per
        host between flushes is written)."""
        self._lease_dirty[host] = expires_at
        if self._oldest_pending < 0.0:
            self._oldest_pending = self.clock()

    def note_forget(self, host: str) -> None:
        """Durably forget a machine (a borrowed record whose loan ended).

        Any coalesced notes still pending for the host are dropped first:
        ``flush`` drains notes into the same append as structural ops, so a
        surviving note would re-create the record right after the forget on
        replay."""
        self._machine_dirty.pop(host, None)
        self._lease_dirty.pop(host, None)
        self.record({"op": "forget", "host": host})

    def _drain_notes(self) -> None:
        if self._machine_dirty:
            for record in self._machine_dirty.values():
                payload = json.dumps(
                    _machine_op(record), sort_keys=True, separators=(",", ":")
                )
                self._buffer.append(_frame(payload))
                self.records_written += 1
                if self.metrics is not None:
                    self.metrics.counter("journal.records").inc()
            self._machine_dirty = {}
        if self._lease_dirty:
            payload = json.dumps(
                {"op": "leases", "leases": dict(self._lease_dirty)},
                sort_keys=True,
                separators=(",", ":"),
            )
            self._buffer.append(_frame(payload))
            self.records_written += 1
            if self.metrics is not None:
                self.metrics.counter("journal.records").inc()
            self._lease_dirty = {}

    def flush(self, force: bool = False) -> bool:
        """Write everything buffered to the WAL (the fsync point).

        Returns False without writing while a :class:`DiskStall` is in
        effect (unless forced): the data stays in the cache, flush lag
        builds, and a crash in the window loses it — which reconciliation
        against live daemon inventories then covers.
        """
        now = self.clock()
        if not force and now < self._stall_until:
            self._update_lag(now)
            return False
        self._drain_notes()
        if not self._buffer:
            self._oldest_pending = -1.0
            self._update_lag(now)
            return True
        data = "".join(self._buffer)
        self._buffer = []
        self._oldest_pending = -1.0
        self.fs.append(self._wal_path(self.generation), data)
        self._wal_bytes += len(data)
        self._ship_append(data)
        self.flushes += 1
        if self.metrics is not None:
            self.metrics.counter("journal.flushes").inc()
            self.metrics.counter("journal.flushed_bytes").inc(len(data))
        self._update_lag(now)
        if self._state is not None and self._wal_bytes >= self.compact_bytes:
            self._compact()
        if self.metrics is not None:
            self.metrics.gauge("journal.bytes").set(self.total_bytes())
        return True

    def _update_lag(self, now: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge("journal.flush_lag").set(self.flush_lag(now))

    def flush_lag(self, now: float) -> float:
        """How long the oldest unflushed op has been waiting (0 = clean)."""
        if self._oldest_pending < 0.0:
            return 0.0
        return max(0.0, now - self._oldest_pending)

    def pending_ops(self) -> int:
        """Ops accepted but not yet durable (buffered + coalesced)."""
        return (
            len(self._buffer)
            + len(self._machine_dirty)
            + (1 if self._lease_dirty else 0)
        )

    def total_bytes(self) -> int:
        """Total journal footprint on disk (all kept WALs + snapshots)."""
        prefix = self.directory + "/"
        return sum(
            len(self.fs.read(path))
            for path in self.fs.listdir()
            if path.startswith(prefix)
        )

    def discard_unflushed(self) -> None:
        """Drop everything still in the cache — the broker process died."""
        self._buffer = []
        self._machine_dirty = {}
        self._lease_dirty = {}
        self._oldest_pending = -1.0
        self._stall_until = -1.0

    # -- WAL shipping ---------------------------------------------------------

    def enable_shipping(self, stream: int, kick: Optional[Callable[[], None]] = None) -> None:
        """Start accounting appends as a ship stream identified by ``stream``
        (the enabling incarnation's epoch).  Offsets restart at zero: a new
        incarnation is a new stream, and a standby holding an old stream id
        re-baselines from a snapshot."""
        self.ship_enabled = True
        self.ship_stream = stream
        self.flushed_offset = 0
        self.acked_offset = 0
        self._ship_chunks = []
        self._ship_kick = kick

    def set_ship_kick(self, kick: Optional[Callable[[], None]]) -> None:
        """Install (or clear) the new-data wakeup for the ship server."""
        self._ship_kick = kick

    def _ship_append(self, data: str) -> None:
        if not self.ship_enabled or not data:
            return
        self._ship_chunks.append((self.flushed_offset, data))
        self.flushed_offset += len(data)
        if self.metrics is not None:
            self.metrics.gauge("journal.ship_lag").set(self.ship_lag())
        if self._ship_kick is not None:
            self._ship_kick()

    def note_ship_ack(self, offset: int) -> None:
        """The standby has durably applied the stream up to ``offset``;
        trim the retained resend tail."""
        if offset <= self.acked_offset:
            return
        self.acked_offset = min(offset, self.flushed_offset)
        self._ship_chunks = [
            (start, data)
            for start, data in self._ship_chunks
            if start + len(data) > self.acked_offset
        ]
        if self.metrics is not None:
            self.metrics.gauge("journal.ship_lag").set(self.ship_lag())

    def ship_pending(self, from_offset: int) -> Optional[List[Tuple[int, str]]]:
        """Retained chunks covering the stream from ``from_offset`` on, or
        None when the stream cannot be resumed there (the tail was trimmed
        past it) and the standby needs a snapshot baseline.

        Acks land on chunk boundaries, so a resumable ``from_offset`` is
        always one too; a mid-chunk offset is sliced defensively (frames
        would still align — chunks are whole frames)."""
        if from_offset >= self.flushed_offset:
            return []
        chunks = [
            (start, data)
            for start, data in self._ship_chunks
            if start + len(data) > from_offset
        ]
        if not chunks or chunks[0][0] > from_offset:
            return None
        start, data = chunks[0]
        if start < from_offset:
            chunks[0] = (from_offset, data[from_offset - start :])
        return chunks

    def ship_lag(self) -> int:
        """Characters flushed but not yet acknowledged by the standby."""
        return max(0, self.flushed_offset - self.acked_offset)

    def ship_stats(self) -> Dict[str, Any]:
        """Replication-side view for the ``stats`` RPC."""
        return {
            "enabled": self.ship_enabled,
            "stream": self.ship_stream,
            "flushed_offset": self.flushed_offset,
            "acked_offset": self.acked_offset,
            "lag_chars": self.ship_lag(),
            "retained_chars": sum(len(data) for _start, data in self._ship_chunks),
        }

    # -- compaction ----------------------------------------------------------

    def _compact(self) -> None:
        if self._state is None:
            return
        generation = self.generation + 1
        payload = json.dumps(
            {"op": "snapshot", "state": snapshot_state(self._state)},
            sort_keys=True,
            separators=(",", ":"),
        )
        self.fs.write(self._snap_path(generation), _frame(payload))
        # The fresh WAL opens with the current epoch record: the snapshot
        # carries only state, and a recovery must never see a *lower* epoch
        # than one it could have journalled just because compaction rolled
        # the file that held it.
        opener = ""
        if self._epoch:
            opener = _frame(
                json.dumps(
                    {
                        "op": "epoch",
                        "epoch": self._epoch,
                        "first_jobid": self._state._next_jobid,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        self.fs.write(self._wal_path(generation), opener)
        self._ship_append(opener)
        self.generation = generation
        self._wal_bytes = len(opener)
        floor = generation - self.keep_generations
        for old in self._generations():
            if old <= floor:
                self.fs.unlink(self._wal_path(old))
                self.fs.unlink(self._snap_path(old))
        self.compactions += 1
        if self.metrics is not None:
            self.metrics.counter("journal.compactions").inc()

    # -- fault hooks ---------------------------------------------------------

    def tear(self, drop_chars: int) -> int:
        """Truncate the current WAL's tail (a torn write); returns how many
        characters were actually dropped."""
        path = self._wal_path(self.generation)
        if not self.fs.exists(path):
            return 0
        data = self.fs.read(path)
        dropped = min(max(0, int(drop_chars)), len(data))
        if dropped:
            self.fs.write(path, data[: len(data) - dropped])
            self._wal_bytes -= dropped
        if self.metrics is not None:
            self.metrics.counter("journal.torn_writes").inc()
        return dropped

    def stall(self, duration: float) -> None:
        """Suspend flushes for ``duration`` simulated seconds from now."""
        self._stall_until = max(self._stall_until, self.clock() + duration)
        if self.metrics is not None:
            self.metrics.counter("journal.disk_stalls").inc()

    # -- recovery ------------------------------------------------------------

    def _load_snapshot(self, generation: int) -> Optional[Dict[str, Any]]:
        path = self._snap_path(generation)
        if not self.fs.exists(path):
            return None
        payloads, _torn, _corrupt = parse_frames(self.fs.read(path))
        if not payloads:
            return None
        try:
            doc = json.loads(payloads[0])
        except ValueError:
            return None
        if not isinstance(doc, dict) or doc.get("op") != "snapshot":
            return None
        state = doc.get("state")
        return state if isinstance(state, dict) else None

    def load_state(
        self, first_jobid: int = 1, use_indexes: bool = True
    ) -> Optional[Tuple[BrokerState, RecoveryInfo]]:
        """Pure snapshot+replay: rebuild a state from disk, or None when
        nothing recoverable exists.

        Tries the newest generation's snapshot first, falling back exactly
        one generation when it is missing or corrupt (older WALs are pruned,
        so further fallback cannot be replayed soundly).  Generation 0's
        snapshot is the implicit empty state.
        """
        generations = self._generations()
        if not generations:
            return None
        top = generations[-1]
        info = RecoveryInfo(top_generation=top, epoch=0)
        base_state: Optional[Dict[str, Any]] = None
        base_generation = -1
        for generation in (top, top - 1):
            if generation < 0:
                break
            if generation == 0:
                base_generation = 0
                break
            snapshot = self._load_snapshot(generation)
            if snapshot is not None:
                base_state = snapshot
                base_generation = generation
                info.snapshot_used = True
                break
            info.snapshot_fallbacks += 1
        if base_generation < 0:
            return None
        info.base_generation = base_generation
        state = BrokerState(first_jobid=first_jobid)
        state.use_indexes = use_indexes
        if base_state is not None:
            apply_snapshot(state, base_state, info)
        for generation in range(base_generation, top + 1):
            path = self._wal_path(generation)
            if not self.fs.exists(path):
                continue
            info.wal_files.append(generation)
            payloads, torn, corrupt = parse_frames(self.fs.read(path))
            info.torn_tails += torn
            info.corrupt_records += corrupt
            # Ops inconsistent with the rebuilt state (possible only after
            # a torn/corrupt prefix) are skipped inside; reconciliation
            # settles the difference.
            apply_payloads(state, payloads, info)
        return state, info

    def recover(
        self,
        first_jobid: int,
        use_indexes: bool,
        now: float,
        lease_ttl: float,
    ) -> Optional[Tuple[BrokerState, RecoveryInfo]]:
        """:meth:`load_state` plus the restart-time recovery policy.

        Recovered machines keep their durable view but lose their *report*
        (no grants until the daemon proves liveness again) and get a fresh
        silence deadline; recovered leases are re-stamped at least one TTL
        out and marked ``recovered`` so re-registration can confirm them or
        flag a ``recovery.conflict`` — surviving the case where the daemon
        died with the broker (the lease simply expires).
        """
        loaded = self.load_state(first_jobid=first_jobid, use_indexes=use_indexes)
        if loaded is None:
            return None
        state, info = loaded
        restamp_recovered(state, now, lease_ttl)
        return state, info

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Live stats for the ``stats`` RPC / ``rbstat --stats``."""
        now = self.clock()
        return {
            "enabled": True,
            "generation": self.generation,
            "records": self.records_written,
            "flushes": self.flushes,
            "compactions": self.compactions,
            "wal_bytes": self._wal_bytes,
            "total_bytes": self.total_bytes(),
            "pending_ops": self.pending_ops(),
            "flush_lag": round(self.flush_lag(now), 6),
            "stalled": now < self._stall_until,
        }

    def __repr__(self) -> str:
        return (
            f"<BrokerJournal gen={self.generation} records={self.records_written} "
            f"wal_bytes={self._wal_bytes}>"
        )
