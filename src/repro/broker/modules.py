"""External-module conventions (paper §4.2, §5.3).

A module is a *user-supplied executable* — not broker code — named by the
job's RSL (``(module="pvm")``).  For module ``xxx`` the broker assumes three
programs exist on the user's PATH:

* ``xxx_grow <host>``   — coerce the job into adding ``host``;
* ``xxx_shrink <host>`` — coerce the job into gracefully releasing ``host``;
* ``xxx_halt``          — stop the whole job.

The PVM and LAM modules live with their systems
(:mod:`repro.systems.pvm.modules`, :mod:`repro.systems.lam.modules`); adding
support for a brand-new programming system means writing three small scripts,
never recompiling the broker — the extensibility claim this module's helpers
encode.

This file also defines the *expected-host marker*: when the broker grants a
machine to a module job, the app drops ``~/.rb_expect_<host>`` in the user's
home.  The job's next ``rsh <host>`` (phase II, carrying the real name) is
spotted by ``rsh'`` via this marker and wrapped with a subapp; explicitly
user-named hosts have no marker and pass straight through, which is why the
per-machine overhead for explicit names stays sub-millisecond (Table 3).
"""

from __future__ import annotations


def grow_program(module: str) -> str:
    """Name of the grow script for ``module`` (``<module>_grow``)."""
    return f"{module}_grow"


def shrink_program(module: str) -> str:
    """Name of the shrink script for ``module`` (``<module>_shrink``)."""
    return f"{module}_shrink"


def halt_program(module: str) -> str:
    """Name of the halt script for ``module`` (``<module>_halt``)."""
    return f"{module}_halt"


def expect_marker_path(host: str) -> str:
    """Home-relative marker path for an expected broker-granted host."""
    return f"~/.rb_expect_{host}"
