"""Wire protocol between the broker, daemons, apps, subapps and rsh'.

All messages are dicts with a ``"type"`` key; the constructors below are the
single source of truth for their shapes.  Using plain dicts keeps the wire
format transparent in traces and lets tests build messages by hand.

Message flow summary (paper Figures 5 and 6):

=====================  =======================  ==============================
message                direction                 purpose
=====================  =======================  ==============================
daemon_hello            daemon -> broker         announce a machine (+ lease
                                                 inventory on re-registration)
daemon_report           daemon -> broker         periodic monitoring snapshot
                                                 (+ lease renewals); sent as a
                                                 compact delta *beacon* when
                                                 the machine's change probe
                                                 saw nothing move
submit                  app -> broker            register a job (RSL, user)
submit_ack              broker -> app            jobid assigned (+ broker epoch)
resume                  app -> broker            reattach a session by
                                                 (jobid, epoch) after broker loss
resume_ack              broker -> app            session resumed (or rejected)
machine_request         app -> broker            "job wants one more machine"
machine_grant           broker -> app            a machine is ready for the job
machine_denied          broker -> app            request cannot be satisfied
revoke                  broker -> app            take host away from this job
released                app -> broker            host given back
grow                    broker -> app            reserved (async offers
                                                 currently ride machine_grant)
job_done                app -> broker            job finished; free everything
rsh_request             rsh' -> app              intercepted rsh
rsh_exec                app -> rsh'              run via real rsh (maybe wrapped)
rsh_fail                app -> rsh'              report failure (module phase I)
subapp_hello            subapp -> app            subapp is up on target host
subapp_run              app -> subapp            the command to spawn
subapp_started          subapp -> app            child pid running
subapp_revoke           app -> subapp            kill the child (grace period)
subapp_exit             subapp -> app            child exited with code
=====================  =======================  ==============================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

Message = Dict[str, Any]


# -- trace context propagation -----------------------------------------------
#
# Any message may carry a ``"trace"`` key: the span context of the operation
# that caused it (see :mod:`repro.obs.spans`).  Receivers parent their own
# spans under it, which is what stitches one submission's rsh', app, broker
# and module activity into a single trace tree across process and machine
# boundaries.  The key is optional everywhere: hand-built test messages and
# untraced callers keep working unchanged.


def attach_trace(message: Message, context: Optional[Dict[str, int]]) -> Message:
    """Attach a span context to ``message`` (no-op on None); returns it."""
    if context:
        message["trace"] = dict(context)
    return message


def trace_of(message: Message) -> Optional[Dict[str, int]]:
    """The span context ``message`` carries, if any."""
    return message.get("trace")


# -- resource-management layer ----------------------------------------------


def daemon_hello(
    host: str,
    leases: Optional[List[int]] = None,
    resumed: bool = False,
) -> Message:
    """Daemon -> broker: announce the machine this daemon watches.

    ``leases`` is the machine's lease inventory — the sorted jobids with a
    live subapp on the host — so a freshly restarted broker can re-adopt
    allocations it lost with its state.  ``resumed`` marks re-registration
    after a lost broker connection (vs. first boot).
    """
    return {
        "type": "daemon_hello",
        "host": host,
        "leases": sorted(leases or ()),
        "resumed": bool(resumed),
    }


def daemon_report(
    snapshot: Message, leases: Optional[List[int]] = None
) -> Message:
    """Daemon -> broker: one periodic monitoring snapshot.

    ``leases`` piggybacks lease renewal on the heartbeat: every jobid listed
    still has a live subapp on the machine, so its grant's TTL is refreshed.
    """
    return {
        "type": "daemon_report",
        "snapshot": snapshot,
        "leases": sorted(leases or ()),
    }


def daemon_beacon(time: float) -> Message:
    """Daemon -> broker: a delta heartbeat — "nothing monitorable changed
    since my last full report".

    Sent instead of :func:`daemon_report` when the machine's change probe
    (cpu load, process-table version, console state, login count) is
    unchanged: it renews liveness and the leases from the last full report
    without shipping (or re-ingesting) a snapshot.  Deliberately the same
    ``"type"`` as a full report so fault-injection drop rules, and anything
    else filtering on message type, treat both report flavours alike.
    """
    return {"type": "daemon_report", "delta": True, "time": time}


def submit(
    user: str, host: str, rsl: str, argv: List[str], adaptive: bool
) -> Message:
    """App -> broker: register a job (user, home host, RSL, command)."""
    return {
        "type": "submit",
        "user": user,
        "host": host,
        "rsl": rsl,
        "argv": list(argv),
        "adaptive": adaptive,
    }


def submit_ack(jobid: int, epoch: int = 1) -> Message:
    """Broker -> app: the jobid assigned to a submission, plus the broker
    incarnation (``epoch``) that assigned it — the pair the app later resumes
    its session by if this broker dies."""
    return {"type": "submit_ack", "jobid": jobid, "epoch": epoch}


def resume(
    jobid: int,
    epoch: int,
    user: str,
    host: str,
    rsl: str,
    argv: List[str],
    adaptive: bool,
    holdings: List[str],
    pending: List[Message],
) -> Message:
    """App -> broker: reattach a session lost to a broker (or link) failure.

    Carries everything a fresh broker incarnation needs to reconstruct the
    job: the registration fields (as in :func:`submit`), the hosts the app
    still claims to hold (``holdings``), and the machine requests it sent but
    never saw answered (``pending``: dicts of reqid/symbolic/firm)."""
    return {
        "type": "resume",
        "jobid": jobid,
        "epoch": epoch,
        "user": user,
        "host": host,
        "rsl": rsl,
        "argv": list(argv),
        "adaptive": adaptive,
        "holdings": list(holdings),
        "pending": [dict(entry) for entry in pending],
    }


def resume_ack(jobid: int, epoch: int, ok: bool = True) -> Message:
    """Broker -> app: the session was resumed under ``epoch`` (or rejected —
    e.g. the broker already saw the job finish)."""
    return {"type": "resume_ack", "jobid": jobid, "epoch": epoch, "ok": ok}


def machine_request(
    jobid: int,
    symbolic: str,
    reqid: int,
    firm: bool,
    hint: Optional[int] = None,
) -> Message:
    """App -> broker: the job wants one more machine.

    ``hint`` is the federated routing hint (the shard index ``rshprime``
    hashed the symbolic name to); the key is omitted entirely outside
    federation so non-federated message bytes are unchanged."""
    message = {
        "type": "machine_request",
        "jobid": jobid,
        "symbolic": symbolic,
        "reqid": reqid,
        "firm": firm,
    }
    if hint is not None:
        message["hint"] = int(hint)
    return message


def machine_grant(reqid: int, host: str) -> Message:
    """Broker -> app: ``host`` is ready for request ``reqid``."""
    return {"type": "machine_grant", "reqid": reqid, "host": host}


def machine_denied(reqid: int, reason: str) -> Message:
    """Broker -> app: request ``reqid`` can never be satisfied."""
    return {"type": "machine_denied", "reqid": reqid, "reason": reason}


def revoke(host: str) -> Message:
    """Broker -> app: give ``host`` back (gracefully)."""
    return {"type": "revoke", "host": host}


def released(jobid: int, host: str) -> Message:
    """App -> broker: ``host`` has been given back."""
    return {"type": "released", "jobid": jobid, "host": host}


def grow(reqid: int, host: str) -> Message:
    """Broker -> app: asynchronous machine offer.  Reserved: the current
    broker delivers late grants through ``machine_grant`` (the app routes a
    grant with no waiter to its module-grow path), so this message is kept
    only as a protocol extension point."""
    return {"type": "grow", "reqid": reqid, "host": host}


def job_done(jobid: int, code: Optional[int]) -> Message:
    """App -> broker: the job exited; free all its holdings."""
    return {"type": "job_done", "jobid": jobid, "code": code}


# -- warm-standby replication and fencing ------------------------------------
#
# The primary broker serves a WAL-ship listener (``ports.SHIP``); the warm
# standby dials it, announces how much of the stream it already holds, and
# receives framed journal data plus heartbeats.  Promotion and the fencing
# handshake ride the daemon connections: every broker->daemon message that
# matters (welcome, grant install, lease renewal) is stamped with the sender's
# epoch, daemons remember the highest epoch they have ever witnessed, and a
# stale-epoch sender is answered with ``fence_reject`` — its cue to demote.


def ship_hello(host: str, stream: int, acked: int) -> Message:
    """Standby -> primary: subscribe to the WAL stream.

    ``stream`` identifies the primary incarnation whose stream the standby
    holds (its epoch); ``acked`` is how many characters of that stream it has
    durably applied.  A primary with a different stream id answers with a
    snapshot instead of a resend."""
    return {"type": "ship_hello", "host": host, "stream": stream, "acked": acked}


def ship_snapshot(stream: int, offset: int, state: Message, epoch: int) -> Message:
    """Primary -> standby: a full-state baseline at ``offset`` of stream
    ``stream`` — sent when the standby's stream id or offset cannot be
    resumed (first contact, or the primary compacted past it)."""
    return {
        "type": "ship_snapshot",
        "stream": stream,
        "offset": offset,
        "state": state,
        "epoch": epoch,
    }


def ship_frame(stream: int, offset: int, data: str) -> Message:
    """Primary -> standby: WAL characters ``[offset, offset + len(data))`` of
    stream ``stream``, in journal frame encoding."""
    return {"type": "ship_frame", "stream": stream, "offset": offset, "data": data}


def ship_ack(stream: int, acked: int) -> Message:
    """Standby -> primary: everything up to character ``acked`` of stream
    ``stream`` is applied and locally persisted."""
    return {"type": "ship_ack", "stream": stream, "acked": acked}


def ship_heartbeat(epoch: int, time: float) -> Message:
    """Primary -> standby: liveness beacon on the ship connection."""
    return {"type": "ship_heartbeat", "epoch": epoch, "time": time}


def daemon_welcome(epoch: int) -> Message:
    """Broker -> daemon: reply to ``daemon_hello`` naming the broker's epoch.

    The daemon records it as witnessed; a welcome from a *lower* epoch than
    the daemon has witnessed is answered with :func:`fence_reject`."""
    return {"type": "daemon_welcome", "epoch": epoch}


def grant_install(jobid: int, reqid: int, epoch: int) -> Message:
    """Broker -> daemon: a grant of this daemon's machine to ``jobid`` is
    being issued under ``epoch``.  The fencing write: a daemon that has
    witnessed a higher epoch rejects the install, and the grant never takes
    effect on the machine that matters."""
    return {"type": "grant_install", "jobid": jobid, "reqid": reqid, "epoch": epoch}


def lease_renew(epoch: int, jobids: List[int]) -> Message:
    """Broker -> daemon: the broker renewed these leases under ``epoch``
    (echo of the daemon's own piggybacked renewal, stamped so a stale
    ex-primary is detected on its very next renewal cycle)."""
    return {"type": "lease_renew", "epoch": epoch, "jobids": sorted(jobids)}


def fence_reject(stale_epoch: int, witnessed: int, host: str) -> Message:
    """Daemon -> broker: the message stamped ``stale_epoch`` was refused
    because this machine has witnessed ``witnessed``.  First such reply
    demotes the ex-primary."""
    return {
        "type": "fence_reject",
        "stale_epoch": stale_epoch,
        "witnessed": witnessed,
        "host": host,
    }


def fence_notice(epoch: int) -> Message:
    """Promoted broker -> ex-primary (on the ship port): a higher epoch
    exists; demote.  Closes the double-partition hole where an isolated
    ex-primary has no daemon left to reject it."""
    return {"type": "fence_notice", "epoch": epoch}


# -- federation: cross-shard machine borrowing --------------------------------
#
# Each broker shard serves a federation listener (``ports.FEDERATION``); a
# shard that cannot satisfy a request locally dials a sibling and asks to
# borrow one machine.  The donor revokes the machine into ``MIGRATING``
# (keeping the lease, renewed by the machine's daemon against the borrower's
# jobid) and installs an epoch-stamped grant on the daemon, so the PR-9
# witness fencing covers cross-shard grants exactly as local ones.  Every
# borrow exchange is one request/reply on a transient connection.


def borrow_request(
    shard: int,
    jobid: int,
    symbolic: str,
    rsl: str,
    adaptive: bool,
    firm: bool,
    reqid: int,
) -> Message:
    """Borrower shard -> donor shard: lend one machine for this request.

    ``shard`` is the borrower's index (for the loan record and the return
    path); ``jobid``/``reqid`` identify the borrower-side request the grant
    will serve; ``symbolic``/``rsl``/``adaptive`` let the donor run its own
    eligibility machinery over its own machines."""
    return {
        "type": "borrow_request",
        "shard": shard,
        "jobid": jobid,
        "symbolic": symbolic,
        "rsl": rsl,
        "adaptive": bool(adaptive),
        "firm": bool(firm),
        "reqid": reqid,
    }


def borrow_reply(
    ok: bool,
    host: str = "",
    platform: str = "",
    kind: str = "public",
    satisfiable: bool = False,
    reported: bool = True,
    shard: int = -1,
) -> Message:
    """Donor shard -> borrower shard: the loan decision.

    On ``ok`` the donor has already marked ``host`` MIGRATING and installed
    the fencing grant on its daemon; ``platform``/``kind`` seed the
    borrower's record of the machine.  On refusal, ``satisfiable`` says
    whether any donor machine could *ever* match (the borrower denies the
    app only once every shard answers False with ``reported`` True —
    i.e. with complete knowledge of its partition)."""
    return {
        "type": "borrow_reply",
        "ok": bool(ok),
        "host": host,
        "platform": platform,
        "kind": kind,
        "satisfiable": bool(satisfiable),
        "reported": bool(reported),
        "shard": shard,
    }


def borrow_release(shard: int, host: str, jobid: int) -> Message:
    """Borrower shard -> donor shard: the loan of ``host`` ended (the
    borrower's job released it or finished); the donor may reclaim it for
    its own scheduling.  ``jobid`` guards against a stale release racing a
    re-loan of the same machine."""
    return {
        "type": "borrow_release",
        "shard": shard,
        "host": host,
        "jobid": jobid,
    }


def borrow_recall(host: str, jobid: int) -> Message:
    """Donor shard -> borrower shard: the donor is taking ``host`` back
    (owner at the console, lease expired, or the machine died).  The
    borrower revokes it from its job and forgets the record."""
    return {"type": "borrow_recall", "host": host, "jobid": jobid}


# -- user queries and control (paper §4.1: "Users communicate with
# ResourceBroker to query machine availability, to learn the status of
# queued jobs ...") ----------------------------------------------------------


def status_request() -> Message:
    """User tool -> broker: request the status summary."""
    return {"type": "status"}


def status_reply(summary: Message) -> Message:
    """Broker -> user tool: the status summary."""
    return {"type": "status_reply", "summary": summary}


def stats_request() -> Message:
    """User tool -> broker: request the live telemetry snapshot.

    Unlike :func:`status_request` (machine/job tables), this asks for the
    continuous-telemetry view: queue depths, dirty-set size, lease and
    adoption counts, scans-per-grant, per-phase latency digests and the
    observability layer's own self-metering."""
    return {"type": "stats"}


def stats_reply(stats: Message) -> Message:
    """Broker -> user tool: the live telemetry snapshot."""
    return {"type": "stats_reply", "stats": stats}


def halt_job(jobid: int) -> Message:
    """User tool -> broker: stop job ``jobid``."""
    return {"type": "halt_job", "jobid": jobid}


def halt_ack(jobid: int, ok: bool) -> Message:
    """Broker -> user tool: whether the halt was deliverable."""
    return {"type": "halt_ack", "jobid": jobid, "ok": ok}


def halt() -> Message:
    """Broker -> app: stop the whole job (module ``xxx_halt`` or SIGTERM)."""
    return {"type": "halt"}


# -- application layer -----------------------------------------------------


def rsh_request(
    host: str, argv: List[str], user: str, hint: Optional[int] = None
) -> Message:
    """rsh' -> app: an intercepted rsh (host may be symbolic).

    ``hint`` carries the federated routing hint (see
    :func:`machine_request`); the key is omitted outside federation."""
    message = {
        "type": "rsh_request",
        "host": host,
        "argv": list(argv),
        "user": user,
    }
    if hint is not None:
        message["hint"] = int(hint)
    return message


def rsh_exec(
    target: str,
    wrap: bool,
    token: Optional[str] = None,
    jobid: Optional[int] = None,
) -> Message:
    """App -> rsh': proceed to ``target`` (wrapped in a subapp if ``wrap``).

    ``jobid`` rides along on wrapped execs so the subapp's argv names the
    job it belongs to — which is what lets the machine's monitoring daemon
    inventory leases by scanning the process table."""
    return {
        "type": "rsh_exec",
        "target": target,
        "wrap": wrap,
        "token": token,
        "jobid": jobid,
    }


def rsh_fail(reason: str) -> Message:
    """App -> rsh': report failure (module phase I or denial)."""
    return {"type": "rsh_fail", "reason": reason}


def subapp_hello(token: str, host: str, pid: int) -> Message:
    """Subapp -> app: up on ``host``, presenting its token."""
    return {"type": "subapp_hello", "token": token, "host": host, "pid": pid}


def subapp_run(argv: List[str]) -> Message:
    """App -> subapp: the real command to spawn."""
    return {"type": "subapp_run", "argv": list(argv)}


def subapp_started(pid: int) -> Message:
    """Subapp -> app: the command is running as ``pid``."""
    return {"type": "subapp_started", "pid": pid}


def subapp_revoke() -> Message:
    """App -> subapp: kill the child (grace period applies)."""
    return {"type": "subapp_revoke"}


def subapp_exit(host: str, code: Optional[int]) -> Message:
    """Subapp -> app: the child exited with ``code``."""
    return {"type": "subapp_exit", "host": host, "code": code}
