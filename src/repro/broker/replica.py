"""``rbstandby`` — the warm-standby broker replica (DESIGN.md §16).

Started on the configured standby machine by the primary broker's keeper
(via plain rsh, unprivileged, exactly like ``rbdaemon``).  It dials the
primary's ship port, subscribes to the WAL stream with the offset it has
durably applied, and maintains a **shadow** :class:`BrokerState` by applying
shipped frames with the same replay code journal recovery uses.  Everything
it applies is also persisted to its own machine's filesystem first, so a
killed-and-respawned standby resumes the stream from where it left off
instead of re-baselining.

Primary death is detected by silence: the primary heartbeats the ship
connection every ``standby_heartbeat_interval``; when nothing (heartbeat,
frame, or successful redial) has been heard for
``standby_promotion_deadline``, the standby promotes itself via
:meth:`~repro.broker.service.BrokerService.promote_standby` — the shadow
state becomes live under a bumped epoch, a fresh broker incarnation boots on
this machine (the well-known secondary address daemons and apps alternate
toward), and the ex-primary is fenced by epoch.  A partition of just the
ship link looks identical to primary death from here, so a *false* promotion
is possible by design; fencing (stale-epoch rejection by daemons plus the
promoted broker's ``fence_notice``) is what keeps it safe.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.broker import protocol
from repro.broker.journal import (
    RecoveryInfo,
    _frame,
    apply_payloads,
    apply_snapshot,
    parse_frames,
)
from repro.broker.state import BrokerState
from repro.cluster import ports
from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost

#: The standby's local persistence (its machine's filesystem, so it
#: survives process death): the stream id it holds, the stream offset of
#: its snapshot baseline, the framed baseline snapshot, and every shipped
#: frame accepted since.
_DIR = "/var/rbstandby"


def _broker_running_here(proc, service) -> bool:
    """True when this machine already hosts the live broker.

    Guard against double promotion: after a false promotion (a ship-link
    partition, not a dead primary) heals, the not-yet-fenced ex-primary's
    keeper respawns a standby on this machine — where the *promoted* broker
    now runs.  That replica must never promote its stale shadow on top of
    it; it bows out instead.
    """
    if service.broker_host == proc.machine.name:
        return True
    for p in proc.machine.procs.values():
        if p is not proc and p.is_alive and p.argv and p.argv[0] == "rbroker":
            return True
    return False


def _another_standby_running(proc) -> bool:
    """True if a different live rbstandby already runs on this machine
    (the keeper respawns eagerly after a connection loss, like rbdaemon's)."""
    for p in proc.machine.procs.values():
        if p is proc:
            continue
        if p.is_alive and p.argv and p.argv[0] == "rbstandby":
            return True
    return False


class _Replica:
    """The shadow state plus its local persistence."""

    def __init__(self, proc, service) -> None:
        self.proc = proc
        self.fs = proc.machine.fs
        self.service = service
        from repro.obs import metrics_of

        self.metrics = metrics_of(proc)
        self.stream = 0
        #: Stream offset of the snapshot baseline (0 = empty baseline).
        self.base = 0
        #: Stream offset durably applied: ``base`` + persisted WAL length.
        self.acked = 0
        #: Highest primary epoch seen (stream ids, snapshot stamps,
        #: heartbeats, epoch records in the stream itself).
        self.witnessed = 0
        self.info = RecoveryInfo()
        self.state = self._blank_state()
        self._load()

    def _blank_state(self) -> BrokerState:
        state = BrokerState()
        state.use_indexes = self.service.scheduler_mode == "indexed"
        return state

    # -- local persistence ---------------------------------------------------

    def _read_int(self, name: str) -> int:
        path = f"{_DIR}/{name}"
        if not self.fs.exists(path):
            return 0
        try:
            return int(self.fs.read(path).strip())
        except ValueError:
            return 0

    def _load(self) -> None:
        """Rebuild the shadow from local persistence (a respawned standby
        resumes the stream instead of re-baselining)."""
        self.stream = self._read_int("stream")
        self.base = self._read_int("base")
        snap_path = f"{_DIR}/snap"
        if self.fs.exists(snap_path):
            payloads, _torn, _corrupt = parse_frames(self.fs.read(snap_path))
            if payloads:
                try:
                    doc = json.loads(payloads[0])
                except ValueError:
                    doc = None
                if isinstance(doc, dict) and isinstance(
                    doc.get("state"), dict
                ):
                    apply_snapshot(self.state, doc["state"], self.info)
                    self.witnessed = max(
                        self.witnessed, int(doc.get("epoch", 0))
                    )
        applied = 0
        wal_path = f"{_DIR}/wal"
        if self.fs.exists(wal_path):
            data = self.fs.read(wal_path)
            payloads, _torn, _corrupt = parse_frames(data)
            apply_payloads(self.state, payloads, self.info)
            applied = len(data)
        self.acked = self.base + applied
        self.witnessed = max(self.witnessed, self.info.epoch, self.stream)

    # -- stream ingestion ----------------------------------------------------

    def accept_snapshot(self, msg: Dict[str, Any]) -> None:
        """Re-baseline the shadow from a full-state snapshot."""
        self.stream = int(msg.get("stream", 0))
        self.base = int(msg.get("offset", 0))
        self.acked = self.base
        epoch = int(msg.get("epoch", 0))
        self.witnessed = max(self.witnessed, epoch, self.stream)
        self.info = RecoveryInfo()
        self.state = self._blank_state()
        doc = msg.get("state")
        if isinstance(doc, dict):
            apply_snapshot(self.state, doc, self.info)
        payload = json.dumps(
            {"op": "snapshot", "epoch": epoch, "state": doc},
            sort_keys=True,
            separators=(",", ":"),
        )
        self.fs.write(f"{_DIR}/stream", str(self.stream))
        self.fs.write(f"{_DIR}/base", str(self.base))
        self.fs.write(f"{_DIR}/snap", _frame(payload))
        self.fs.write(f"{_DIR}/wal", "")
        self.metrics.counter("standby.snapshots").inc()

    def accept_frame(self, msg: Dict[str, Any]) -> bool:
        """Persist and apply one shipped chunk; False means the stream is
        out of sync here (wrong stream or a gap) and the session must
        restart with a fresh hello."""
        if int(msg.get("stream", -1)) != self.stream:
            return False
        offset = int(msg.get("offset", 0))
        data = msg.get("data", "")
        if offset > self.acked:
            return False  # gap: an ack raced a resend boundary
        if offset + len(data) <= self.acked:
            return True  # pure duplicate of an already-applied chunk
        if offset < self.acked:
            # Overlap from a resend; acks land on chunk boundaries, so the
            # trim point is frame-aligned.
            data = data[self.acked - offset :]
        payloads, _torn, _corrupt = parse_frames(data)
        before = self.info.records
        apply_payloads(self.state, payloads, self.info)
        self.fs.append(f"{_DIR}/wal", data)
        self.acked += len(data)
        self.witnessed = max(self.witnessed, self.info.epoch)
        self.metrics.counter("standby.frames").inc()
        self.metrics.counter("standby.applied_records").inc(
            self.info.records - before
        )
        return True


def make_standby_main(service):
    """Bind the ``rbstandby`` program body to its service harness."""

    def rbstandby_main(proc):
        """Program body: ``argv = ["rbstandby", primary_host]``."""
        from repro.obs import metrics_of, tracer_of

        if len(proc.argv) < 2:
            return 1
        primary = proc.argv[1]
        cal = proc.machine.network.calibration
        boot = tracer_of(proc).start(
            "rbstandby.boot",
            actor=f"rbstandby:{proc.machine.name}",
            host=proc.machine.name,
        )
        yield proc.sleep(cal.daemon_startup)
        if _another_standby_running(proc):
            boot.end(outcome="duplicate")
            return 0
        if _broker_running_here(proc, service):
            boot.end(outcome="broker_here")
            return 0
        replica = _Replica(proc, service)
        boot.end(resumed_at=replica.acked, stream=replica.stream)
        # Detach so the keeper's rsh invocation returns while we run on.
        proc.daemonize()
        metrics = metrics_of(proc)
        retries = metrics.counter("rbstandby.connect_retries")
        deadline = cal.standby_promotion_deadline
        # Redial cadence is capped at the heartbeat interval so the
        # promotion decision lands within one beat of the deadline.
        redial_cap = cal.standby_heartbeat_interval
        last_heard = proc.env.now

        def promote():
            if _broker_running_here(proc, service):
                # The live broker moved here while we streamed (or a
                # promotion already happened): never promote on top of it.
                return 0
            span = tracer_of(proc).start(
                "broker.promotion",
                actor=f"rbstandby:{proc.machine.name}",
                host=proc.machine.name,
                witnessed=replica.witnessed,
                acked=replica.acked,
                silent_for=round(proc.env.now - last_heard, 6),
            )
            service.promote_standby(
                replica.state,
                witnessed=replica.witnessed,
                applied_records=replica.info.records,
                acked_offset=replica.acked,
            )
            span.end(epoch=service.epoch)
            return 0

        while True:
            # -- (re)establish the ship connection ---------------------------
            conn = None
            delay = cal.connect_retry_base
            while conn is None:
                try:
                    conn = yield proc.connect(primary, ports.SHIP)
                except (ConnectionRefused, NoSuchHost):
                    if proc.env.now - last_heard >= deadline:
                        return promote()
                    retries.inc()
                    backoff = proc.sleep(delay)
                    try:
                        yield backoff
                    finally:
                        backoff.cancel()
                    delay = min(delay * 2.0, redial_cap)
            conn.send(
                protocol.ship_hello(
                    proc.machine.name, replica.stream, replica.acked
                )
            )
            # -- stream until silence, desync, or EOF ------------------------
            resync = False
            try:
                recv_ev = conn.recv()
                while True:
                    timer = proc.sleep(deadline)
                    try:
                        yield proc.env.any_of([timer, recv_ev])
                    finally:
                        timer.cancel()
                    if not recv_ev.processed:
                        # Deadline of silence on an open connection: a
                        # partition blackholes sends without an EOF, and a
                        # dead primary can leave the endpoint dangling.
                        # Either way: promote.
                        conn.close()
                        return promote()
                    msg = recv_ev.value
                    recv_ev = conn.recv()
                    last_heard = proc.env.now
                    kind = msg.get("type")
                    if kind == "ship_snapshot":
                        replica.accept_snapshot(msg)
                        conn.send(
                            protocol.ship_ack(replica.stream, replica.acked)
                        )
                    elif kind == "ship_frame":
                        if replica.accept_frame(msg):
                            conn.send(
                                protocol.ship_ack(
                                    replica.stream, replica.acked
                                )
                            )
                        else:
                            # Out of sync: drop the session and re-hello
                            # (the primary answers with a resend or a
                            # snapshot baseline).
                            resync = True
                            metrics.counter("standby.resyncs").inc()
                            break
                    elif kind == "ship_heartbeat":
                        replica.witnessed = max(
                            replica.witnessed, int(msg.get("epoch", 0))
                        )
            except ConnectionClosed:
                pass
            conn.close()
            if resync:
                # The primary was alive a moment ago; restart the silence
                # clock from the resync point.
                last_heard = proc.env.now

    return rbstandby_main
