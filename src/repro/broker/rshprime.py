"""``rsh'`` — the broker's interposed remote shell (paper §5).

Registered under the name ``rsh`` in the broker's program directory, which
precedes the system directory on every managed machine's PATH; any program
that execs ``rsh`` without a hard-coded absolute path gets this wrapper
(required condition 2 of §5.1).

Decision table:

=====================  ==========================================
situation               behaviour
=====================  ==========================================
no ``RB_APP_PORT``      passthrough to the real rsh (the user is
                        not using the broker; overhead ~0.2 ms)
symbolic host name      ask the app for a just-in-time machine;
                        then redirect through a subapp (default
                        path) or fail (module phase I)
real name, expected     the marker ``~/.rb_expect_<host>`` says the
                        broker arranged this host: wrap in a subapp
real name, plain        passthrough to the real rsh
=====================  ==========================================
"""

from __future__ import annotations

import zlib

from repro.broker import protocol
from repro.broker.modules import expect_marker_path
from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.rsh.client import RshExit, remote_exec
from repro.rsl import is_symbolic_hostname


def rshprime_main(proc):
    """Program body: ``argv = ["rsh", host, command, args...]``."""
    from repro.obs import context_from_environ, tracer_of

    if len(proc.argv) < 3:
        return RshExit.ERROR
    host, command_argv = proc.argv[1], proc.argv[2:]
    cal = proc.machine.network.calibration
    span = tracer_of(proc).start(
        "rshprime",
        parent=context_from_environ(proc.environ),
        actor=f"rsh:{proc.machine.name}",
        host=host,
        argv=list(command_argv),
    )

    app_port = proc.environ.get("RB_APP_PORT")
    app_host = proc.environ.get("RB_APP_HOST")
    expected = not is_symbolic_hostname(host) and proc.file_exists(
        expect_marker_path(host)
    )

    if app_port is None or (not is_symbolic_hostname(host) and not expected):
        # Plain passthrough; marginal cost only (Table 3 "w/ host" rows).
        yield proc.sleep(cal.rshp_passthrough)
        code = yield from remote_exec(proc, host, command_argv)
        span.end(path="passthrough", code=code)
        return code

    # Consult the app process this job belongs to.
    yield proc.sleep(cal.rshp_symbolic_negotiation)
    try:
        conn = yield proc.connect(app_host, int(app_port))
    except (ConnectionRefused, NoSuchHost):
        span.end(path="negotiated", error="app unreachable")
        return RshExit.ERROR
    hint = None
    shards = proc.environ.get("RB_FED_SHARDS")
    if shards is not None and is_symbolic_hostname(host):
        # Federated routing hint (DESIGN.md §17): a symbolic name hashes to
        # a stable home shard, so every shard starts its borrow ring at the
        # same sibling for a given name.  Absent outside federations so the
        # wire bytes stay identical to a standalone broker's.
        hint = zlib.crc32(host.encode()) % int(shards)
    conn.send(
        protocol.attach_trace(
            protocol.rsh_request(host, command_argv, proc.uid, hint=hint),
            span.context,
        )
    )
    try:
        reply = yield conn.recv()
    except ConnectionClosed:
        span.end(path="negotiated", error="app hung up")
        return RshExit.ERROR
    conn.close()

    if reply.get("type") != "rsh_exec":
        # rsh_fail: module phase I, or denial.
        span.end(path="negotiated", error=reply.get("reason", "rsh_fail"))
        return RshExit.ERROR
    target = reply["target"]
    if reply.get("wrap"):
        remote_argv = ["subapp", app_host, str(app_port), reply["token"]]
        if reply.get("jobid") is not None:
            # The jobid in the subapp's argv is what lets the target
            # machine's daemon inventory leases from its process table.
            remote_argv.append(str(reply["jobid"]))
    else:
        remote_argv = command_argv
    code = yield from remote_exec(proc, target, remote_argv)
    span.end(path="negotiated", target=target, code=code)
    return code
