"""Host-side harness that overlays ResourceBroker onto a simulated cluster.

:class:`BrokerService` is not part of the paper's system — it plays the role
of the *system administrator*: it installs the broker's program directory
ahead of the system directory on each managed machine (the PATH interception),
boots the broker process as an unprivileged user, and gives tests and
experiments a typed submission API plus full visibility into broker state and
an event log.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.broker.app import app_main, subapp_main
from repro.broker.core import make_broker_main
from repro.broker.daemon import rbdaemon_main
from repro.broker.journal import BrokerJournal, restamp_recovered
from repro.broker.replica import make_standby_main
from repro.broker.rshprime import rshprime_main
from repro.broker.tools import rbctl_main, rbstat_main, rbtop_main, rbtrace_main
from repro.broker.state import BrokerState, JobRecord
from repro.obs.timeseries import SpanPhaseFolder
from repro.os.process import OSProcess
from repro.os.programs import ProgramDirectory
from repro.os.signals import SIGKILL
from repro.policy.default import DefaultPolicy

#: The unprivileged account the resource-management layer runs as.  Nothing
#: grants it special rights: the simulated OS denies it signals to other
#: users' processes exactly as real Unix would.
BROKER_UID = "rbroker"


class BrokerUnavailable(RuntimeError):
    """The broker process is down (or mid-restart): the requested control
    operation cannot be delivered.  Raised instead of silently dropping the
    message; call :meth:`BrokerService.restart_broker` to recover."""


class BrokerLost(RuntimeError):
    """A :meth:`JobHandle.wait` deadline expired with the broker dead and
    the job still running: the job is now unmanaged and may never terminate
    on its own (adaptive masters run until told to stop)."""


@dataclass
class JobHandle:
    """A submitted job as seen by the submitting harness."""

    service: "BrokerService"
    proc: OSProcess  # the app process
    argv: List[str]
    rsl: str
    uid: str
    #: Root span of this submission's trace tree (``job.submit``).
    span: Any = None

    @property
    def terminated(self):
        return self.proc.terminated

    @property
    def exit_code(self) -> Optional[int]:
        return self.proc.exit_code

    @property
    def status(self) -> str:
        """``"done"``, ``"broker_lost"`` (broker dead, job still running —
        the job is unmanaged) or ``"running"``."""
        if self.proc.terminated.triggered:
            return "done"
        if not self.service.broker_alive:
            return "broker_lost"
        return "running"

    def wait(self, deadline: Optional[float] = None) -> Optional[int]:
        """Run the simulation until this job's app exits.

        With ``deadline`` (simulated seconds from now), stop waiting then:
        if the broker died while the job still runs, raise
        :class:`BrokerLost` instead of blocking forever on a job nobody
        manages any more; if the job is merely slow, return None.
        """
        env = self.service.cluster.env
        if deadline is None:
            env.run(until=self.proc.terminated)
            return self.proc.exit_code
        limit = env.now + deadline
        while not self.proc.terminated.triggered and env.now < limit:
            env.run(until=min(env.now + 1.0, limit))
        if self.proc.terminated.triggered:
            return self.proc.exit_code
        if not self.service.broker_alive:
            raise BrokerLost(
                f"broker died with job {self.argv!r} still running "
                f"(waited {deadline}s); restart_broker() to re-manage it"
            )
        return None

    def job_record(self) -> Optional[JobRecord]:
        """The broker's record for this job (matched on user/host/argv)."""
        for job in self.service.state.jobs.values():
            if (
                job.user == self.uid
                and job.home_host == self.proc.machine.name
                and job.argv == self.argv
            ):
                return job
        return None


class BrokerService:
    """Install, boot and drive ResourceBroker on a cluster."""

    def __init__(
        self,
        cluster,
        policy=None,
        managed_hosts: Optional[Sequence[str]] = None,
        broker_host: Optional[str] = None,
        scheduler_mode: Optional[str] = None,
        journal: Optional[bool] = None,
        standby_host: Optional[str] = None,
        event_log_cap: Optional[int] = None,
        retain_done_jobs: bool = True,
        shard: Optional[Any] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.policy = policy if policy is not None else DefaultPolicy()
        #: Federation membership (:class:`~repro.broker.federation.ShardConfig`)
        #: or ``None`` for a standalone broker.  A one-shard federation keeps
        #: ``shard.count == 1`` and every federation behaviour gated off, so
        #: it is byte-identical to a standalone broker.
        self.shard = shard
        self.managed_hosts: List[str] = list(
            managed_hosts if managed_hosts is not None else cluster.machines
        )
        self.broker_host = broker_host or self.managed_hosts[0]
        #: ``"indexed"`` (default) schedules dirty-driven over the state's
        #: incremental indexes; ``"fullscan"`` keeps the original
        #: evaluate-everything scheduler as a reference (DESIGN.md §12).
        #: The ``RB_SCHED_MODE`` environment variable overrides the default
        #: so whole experiment runs can be flipped without code changes.
        if scheduler_mode is None:
            scheduler_mode = os.environ.get("RB_SCHED_MODE", "indexed")
        if scheduler_mode not in ("indexed", "fullscan"):
            raise ValueError(
                f"scheduler_mode must be 'indexed' or 'fullscan', "
                f"not {scheduler_mode!r}"
            )
        self.scheduler_mode = scheduler_mode
        #: First jobid this broker may issue.  Federated shards stride their
        #: jobid spaces a million apart so ids are globally unique without
        #: coordination (a daemon inventory or borrowed lease names its shard
        #: implicitly); shard 0 — and every standalone broker — starts at 1.
        self._first_jobid = 1
        if shard is not None and shard.count > 1:
            self._first_jobid = 1 + shard.index * 1_000_000
        self.state = BrokerState(first_jobid=self._first_jobid)
        self.state.use_indexes = scheduler_mode == "indexed"
        #: ``event_log_cap`` bounds the event log for service-mode runs (a
        #: soak would otherwise grow it without limit); ``None`` keeps the
        #: unbounded lists every existing test and experiment expects.
        self.event_log_cap = event_log_cap
        self.events: Any = (
            [] if event_log_cap is None else deque(maxlen=event_log_cap)
        )
        self._events_by_kind: Dict[str, Any] = {}
        #: False makes :func:`core._finish_job` drop finished jobs from the
        #: state tables (service mode: the job set must not grow forever).
        #: The default keeps them, as ``rbstat`` and the experiments expect.
        self.retain_done_jobs = retain_done_jobs
        #: Run-wide observability, shared with everything on this network.
        self.tracer = cluster.network.tracer
        self.metrics = cluster.network.metrics
        #: Online per-phase allocation-latency digests, folded from span-end
        #: events as they happen (no post-hoc tree walks) — what the live
        #: ``stats`` RPC reports.
        self.phase_stats = SpanPhaseFolder(self.tracer)
        self.ready = self.env.event()
        #: The live ``_BrokerControl`` once the broker program boots.
        self.control = None
        self._daemon_down: Dict[str, Any] = {}
        #: Broker incarnation number; bumped by :meth:`restart_broker` and
        #: :meth:`promote_standby`.  Apps resume their sessions by
        #: (jobid, epoch).
        self.epoch = 1
        #: Warm standby (DESIGN.md §16): with ``standby_host`` set, the
        #: primary ships flushed WAL frames to an ``rbstandby`` process
        #: there, grants and lease renewals carry epoch stamps (fencing),
        #: and the standby promotes itself on primary death.
        self.standby_host = standby_host
        #: True when a warm standby replicates this broker's WAL (gates the
        #: ship listener, heartbeats and the promotion machinery).
        self.replicated = standby_host is not None
        #: True when grants and renewals carry epoch stamps that daemons
        #: witness-check: under replication (a promoted standby must fence
        #: the ex-primary) and in any multi-shard federation (a cross-shard
        #: grant installs on the donor's daemon under the donor's epoch, so
        #: a stale shard incarnation is fenced exactly as a stale primary).
        self.fencing = self.replicated or (
            shard is not None and shard.count > 1
        )
        #: Cross-shard traffic counters (the ``stats`` federation block).
        #: Service-level, not metrics-registry, because the registry is
        #: shared network-wide and these are per-shard; surviving broker
        #: restarts is intentional (they count the shard, not the process).
        self.federation_counters: Dict[str, int] = {
            "forwards": 0,
            "cross_shard_grants": 0,
            "loans_out": 0,
            "loan_refusals": 0,
            "recalls": 0,
            "returns": 0,
        }
        #: The well-known broker addresses, in dial order — stable across a
        #: promotion so every daemon and app can alternate between them.
        self.broker_addresses: List[str] = [self.broker_host]
        if standby_host is not None:
            if standby_host == self.broker_host:
                raise ValueError("standby_host must differ from broker_host")
            if standby_host not in cluster.machines:
                raise ValueError(f"unknown standby_host {standby_host!r}")
            self.broker_addresses.append(standby_host)
        #: Ex-primary host a freshly promoted incarnation must fence (via
        #: ``fence_notice`` on the ship port); None until a promotion.
        self.fence_target: Optional[str] = None

        # The broker's program directory, shadowing the system's rsh.
        self.rb_bin = ProgramDirectory("rb")
        self.rb_bin.register("rsh", rshprime_main)
        self.rb_bin.register("app", app_main)
        self.rb_bin.register("subapp", subapp_main)
        self.rb_bin.register("rbdaemon", rbdaemon_main)
        self.rb_bin.register("rbroker", make_broker_main(self))
        self.rb_bin.register("rbstandby", make_standby_main(self))
        self.rb_bin.register("rbstat", rbstat_main)
        self.rb_bin.register("rbctl", rbctl_main)
        self.rb_bin.register("rbtrace", rbtrace_main)
        self.rb_bin.register("rbtop", rbtop_main)

        for host in self.managed_hosts:
            machine = cluster.machines[host]
            machine.path = [self.rb_bin, cluster.system_bin]
            self.state.add_machine(host)
        broker_machine = cluster.machines[self.broker_host]
        if self.rb_bin not in broker_machine.path:
            broker_machine.path = [self.rb_bin] + list(broker_machine.path)
        if self.standby_host is not None:
            standby_machine = cluster.machines[self.standby_host]
            if self.rb_bin not in standby_machine.path:
                standby_machine.path = [self.rb_bin] + list(
                    standby_machine.path
                )

        #: Durable write-ahead journal (DESIGN.md §14), off by default so
        #: the seed's in-memory-only behaviour is untouched; opt in per
        #: service or cluster-wide via ``RB_JOURNAL=1``.
        if journal is None:
            journal = os.environ.get("RB_JOURNAL", "") not in ("", "0")
        self.journal: Optional[BrokerJournal] = None
        if journal:
            calibration = cluster.network.calibration
            self.journal = BrokerJournal(
                fs=broker_machine.fs,
                clock=lambda: self.env.now,
                metrics=self.metrics,
                compact_bytes=calibration.journal_compact_bytes,
            )
            self.journal.attach(self.state, epoch=self.epoch)
            if self.replicated:
                self.journal.enable_shipping(stream=self.epoch)
        if self.replicated and self.journal is None:
            raise ValueError(
                "a warm standby replicates the WAL: standby_host requires "
                "journal=True"
            )

        self.broker_proc = OSProcess(
            broker_machine,
            ["rbroker"],
            uid=BROKER_UID,
            environ={"HOME": f"/home/{BROKER_UID}"},
        )

    # -- logging -----------------------------------------------------------

    def log(self, **entry: Any) -> None:
        """Append a timestamped entry to the broker event log."""
        entry.setdefault("time", self.env.now)
        self.events.append(entry)
        kind = entry.get("event")
        if kind is not None:
            # Index at append time so events_of() is O(matches), not a full
            # scan — experiment harnesses poll it in tight wait loops.
            bucket = self._events_by_kind.get(kind)
            if bucket is None:
                bucket = (
                    []
                    if self.event_log_cap is None
                    else deque(maxlen=self.event_log_cap)
                )
                self._events_by_kind[kind] = bucket
            bucket.append(entry)

    def events_of(self, event: str) -> List[Dict[str, Any]]:
        """All logged entries of one event kind, in order."""
        return list(self._events_by_kind.get(event, ()))

    # -- lifecycle ----------------------------------------------------------

    def wait_ready(self) -> None:
        """Run the simulation until every managed daemon has reported."""
        if not self.ready.processed:
            self.env.run(until=self.ready)

    @property
    def broker_alive(self) -> bool:
        """Whether the current broker incarnation's process is alive."""
        return self.broker_proc.is_alive

    def crash_broker(self) -> None:
        """Kill the broker process where it stands (SIGKILL, no cleanup).

        Daemons and apps notice only through connection EOF; jobs keep
        running unmanaged until :meth:`restart_broker` brings a new
        incarnation up.  A no-op if the broker is already down.
        """
        if not self.broker_proc.is_alive:
            return
        self.metrics.counter("broker.crashes").inc()
        self.log(event="broker_crash", epoch=self.epoch)
        self.broker_proc.signal(SIGKILL)
        if self.journal is not None:
            # Anything still in the journal's cache died with the process;
            # only what reached the simulated disk survives.
            self.journal.discard_unflushed()

    def restart_broker(self) -> OSProcess:
        """Boot a fresh broker incarnation, recovering state if possible.

        With a journal, the new incarnation (``epoch + 1``) recovers jobs,
        leases, the pending queue and the epoch directly from disk
        (snapshot + WAL replay) in near-zero time; daemon re-registration
        then *reconciles* the recovered picture — disagreements resolve
        toward the live inventory and count ``recovery.conflicts``.
        Without one (or when nothing on disk is readable), it starts from a
        blank :class:`BrokerState` — only the managed-host list survives —
        and reconstructs everything from daemon re-registration inventories
        and app session resumptions (core.py's recovery window).  Either
        way the jobid counter starts past every id the dead incarnation
        could have issued, so resumed jobs keep their ids without colliding
        with fresh submissions.
        """
        if self.broker_proc.is_alive:
            self.broker_proc.signal(SIGKILL)
            if self.journal is not None:
                self.journal.discard_unflushed()
        self.epoch += 1
        restarted_at = self.env.now
        next_jobid = max(
            max(self.state.jobs, default=0) + 1, self._first_jobid
        )
        recovered = None
        if self.journal is not None:
            self.journal.discard_unflushed()
            recovered = self.journal.recover(
                first_jobid=next_jobid,
                use_indexes=self.scheduler_mode == "indexed",
                now=restarted_at,
                lease_ttl=self.cluster.network.calibration.lease_ttl,
            )
        if recovered is not None:
            state, info = recovered
            self.state = state
            self.epoch = max(self.epoch, info.epoch + 1)
            for host in self.managed_hosts:
                self.state.add_machine(host)
            # Recovered borrowed records (federation loans held from a
            # sibling shard) never re-report here — their daemons report to
            # the donor — so re-mark them reported immediately; one without
            # an allocation lost its release-side forget to the crash and
            # is dropped outright (the pre-attach forget never journals,
            # and the compacting snapshot below excludes it).
            for borrowed_host in sorted(
                host
                for host, rec in state.machines.items()
                if rec.borrowed_from is not None
            ):
                rec = state.machines[borrowed_host]
                if rec.allocation is not None:
                    rec.touch(restarted_at)
                else:
                    state.forget_machine(borrowed_host)
            self.metrics.counter("recovery.from_journal").inc()
            self.metrics.counter("recovery.replayed_records").inc(info.records)
            if info.torn_tails:
                self.metrics.counter("recovery.torn_tails").inc(info.torn_tails)
            if info.corrupt_records:
                self.metrics.counter("recovery.corrupt_records").inc(
                    info.corrupt_records
                )
            if info.snapshot_fallbacks:
                self.metrics.counter("recovery.snapshot_fallbacks").inc(
                    info.snapshot_fallbacks
                )
            # State is whole the instant the new process boots: recovery
            # latency is zero on the simulated clock (re-registration only
            # cross-checks it).
            self.metrics.gauge("recovery.latency_seconds").set(0.0)
            self.log(
                event="recovery",
                source="journal",
                epoch=self.epoch,
                records=info.records,
                snapshot_generation=info.base_generation,
                snapshot_used=info.snapshot_used,
                torn_tails=info.torn_tails,
                corrupt_records=info.corrupt_records,
                snapshot_fallbacks=info.snapshot_fallbacks,
                jobs=len(state.jobs),
                leases=len(state.leased_records()),
                pending=len(state.pending),
            )
        else:
            self.state = BrokerState(first_jobid=next_jobid)
            self.state.use_indexes = self.scheduler_mode == "indexed"
            for host in self.managed_hosts:
                self.state.add_machine(host)
            self.metrics.counter("recovery.from_reregistration").inc()
            self.log(event="recovery", source="reregistration", epoch=self.epoch)
        self.ready = self.env.event()
        if recovered is None:
            # Blind until the periphery re-reports: recovery latency is the
            # restart-to-ready gap.
            self.ready.add_callback(
                lambda ev: self.metrics.gauge("recovery.latency_seconds").set(
                    self.env.now - restarted_at
                )
            )
        if self.journal is not None:
            self.journal.attach(self.state, epoch=self.epoch, compact=True)
            if self.replicated:
                # A restarted incarnation is a new ship stream; a standby
                # holding the old one re-baselines from a snapshot.
                self.journal.enable_shipping(stream=self.epoch)
        self.control = None
        self._daemon_down = {}
        self.metrics.counter("broker.restarts").inc()
        self.log(event="broker_restart", epoch=self.epoch)
        broker_machine = self.cluster.machines[self.broker_host]
        self.broker_proc = OSProcess(
            broker_machine,
            ["rbroker"],
            uid=BROKER_UID,
            environ={"HOME": f"/home/{BROKER_UID}"},
        )
        return self.broker_proc

    def promote_standby(
        self,
        state: BrokerState,
        witnessed: int,
        applied_records: int = 0,
        acked_offset: int = 0,
    ) -> OSProcess:
        """Fail over to the warm standby (called by ``rbstandby`` when the
        primary goes silent past the promotion deadline, DESIGN.md §16).

        The shipped shadow ``state`` becomes the service's live state under
        a strictly higher epoch than any the standby witnessed, with the
        same restart-time recovery policy as journal recovery (leases
        re-stamped and marked recovered, reports cleared so nothing is
        granted until daemons re-prove liveness).  A fresh broker
        incarnation then boots *on the standby machine* — the well-known
        secondary address every daemon and app alternates toward — with a
        fresh journal there, and fences the ex-primary by epoch: daemons
        reject its stale-stamped grants and renewals, and the promoted
        broker sends it a ``fence_notice`` for the case where no daemon is
        left to do the rejecting.
        """
        if self.standby_host is None:
            raise ValueError("promote_standby needs a configured standby")
        now = self.env.now
        calibration = self.cluster.network.calibration
        old_primary = self.broker_host
        self.epoch = max(self.epoch, witnessed) + 1
        state._next_jobid = max(
            state._next_jobid, max(state.jobs, default=0) + 1
        )
        restamp_recovered(state, now, calibration.lease_ttl)
        self.state = state
        for host in self.managed_hosts:
            self.state.add_machine(host)
        self.broker_host = self.standby_host
        self.fence_target = old_primary
        standby_machine = self.cluster.machines[self.broker_host]
        self.journal = BrokerJournal(
            fs=standby_machine.fs,
            clock=lambda: self.env.now,
            metrics=self.metrics,
            compact_bytes=calibration.journal_compact_bytes,
        )
        self.journal.attach(self.state, epoch=self.epoch, compact=True)
        self.ready = self.env.event()
        self.control = None
        self._daemon_down = {}
        self.metrics.counter("broker.promotions").inc()
        self.metrics.counter("recovery.from_standby").inc()
        self.metrics.gauge("recovery.latency_seconds").set(0.0)
        self.log(
            event="broker_promoted",
            epoch=self.epoch,
            host=self.broker_host,
            from_host=old_primary,
            witnessed=witnessed,
            applied_records=applied_records,
            acked_offset=acked_offset,
            jobs=len(state.jobs),
            leases=len(state.leased_records()),
            pending=len(state.pending),
        )
        self.broker_proc = OSProcess(
            standby_machine,
            ["rbroker"],
            uid=BROKER_UID,
            environ={"HOME": f"/home/{BROKER_UID}"},
        )
        return self.broker_proc

    def _app_environ(self) -> Dict[str, str]:
        """Broker-address environment for app processes."""
        environ = {"RB_BROKER_HOST": self.broker_host}
        alternates = [
            host for host in self.broker_addresses if host != self.broker_host
        ]
        if alternates:
            environ["RB_BROKER_STANDBY"] = alternates[0]
        if self.shard is not None and self.shard.count > 1:
            # rsh' hashes symbolic names to a shard index when this is set
            # (the federated routing hint); absent otherwise so standalone
            # and one-shard messages stay byte-identical.
            environ["RB_FED_SHARDS"] = str(self.shard.count)
        return environ

    def _require_broker(self, action: str) -> None:
        """Fail fast (not a silent dropped send) when the broker is down."""
        if not self.broker_proc.is_alive:
            raise BrokerUnavailable(
                f"cannot {action}: the broker process is down "
                f"(epoch {self.epoch}); call restart_broker() first"
            )

    def submit(
        self,
        host: str,
        argv: Sequence[str],
        rsl: str = "",
        uid: str = "user",
    ) -> JobHandle:
        """Submit ``argv`` from ``host`` through an app process.

        This is the user typing ``app <rsl> <command>`` at a shell prompt on
        ``host``.  The submission roots a new trace: every span the job's
        app, rsh' chain, broker session and module scripts produce hangs off
        the returned handle's ``span``.
        """
        span = self.tracer.start(
            "job.submit",
            host=host,
            actor="user",
            uid=uid,
            argv=list(argv),
            rsl=rsl,
        )
        app_argv = ["app", rsl, *argv]
        proc = self.cluster.run_command(
            host,
            app_argv,
            uid=uid,
            environ={**self._app_environ(), **span.environ()},
        )
        proc.terminated.add_callback(
            lambda ev: span.end(code=ev.value) if not span.finished else None
        )
        return JobHandle(
            service=self, proc=proc, argv=list(argv), rsl=rsl, uid=uid, span=span
        )

    def halt_job(self, jobid: int, host: Optional[str] = None) -> OSProcess:
        """Ask the broker to stop ``jobid`` (via ``rbctl halt``).

        Raises :class:`BrokerUnavailable` when the broker is down — the
        halt could never be delivered."""
        self._require_broker(f"halt job {jobid}")
        return self.cluster.run_command(
            host or self.broker_host,
            ["rbctl", "halt", str(jobid)],
            uid="operator",
            environ={"RB_BROKER_HOST": self.broker_host},
        )

    def run_rbstat(
        self,
        host: Optional[str] = None,
        uid: str = "user",
        stats: bool = False,
    ) -> OSProcess:
        """Run the ``rbstat`` status tool as ``uid`` on ``host``.

        ``stats=True`` runs ``rbstat --stats`` (the live telemetry view).
        Raises :class:`BrokerUnavailable` when the broker is down (the tool
        itself, run by hand, still fails fast and writes a clear error to
        ``~/.rbstat``)."""
        self._require_broker("query broker status")
        argv = ["rbstat", "--stats"] if stats else ["rbstat"]
        return self.cluster.run_command(
            host or self.broker_host,
            argv,
            uid=uid,
            environ={"RB_BROKER_HOST": self.broker_host},
        )

    def run_rbtop(
        self,
        host: Optional[str] = None,
        uid: str = "user",
        polls: int = 1,
        interval: float = 2.0,
    ) -> OSProcess:
        """Run the live ``rbtop`` poller against this broker.

        Raises :class:`BrokerUnavailable` when the broker is down."""
        self._require_broker("poll broker stats")
        return self.cluster.run_command(
            host or self.broker_host,
            ["rbtop", "--polls", str(polls), "--interval", str(interval)],
            uid=uid,
            environ={"RB_BROKER_HOST": self.broker_host},
        )

    # -- introspection -------------------------------------------------------

    def holdings(self) -> Dict[int, List[str]]:
        """jobid -> sorted list of allocated hosts."""
        result: Dict[int, List[str]] = {}
        for record in self.state.machines.values():
            if record.allocation is not None:
                result.setdefault(record.allocation.jobid, []).append(
                    record.host
                )
        return {jobid: sorted(hosts) for jobid, hosts in result.items()}

    def __repr__(self) -> str:
        return (
            f"<BrokerService policy={self.policy.name} "
            f"machines={len(self.managed_hosts)} "
            f"jobs={len(self.state.jobs)}>"
        )
