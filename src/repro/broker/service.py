"""Host-side harness that overlays ResourceBroker onto a simulated cluster.

:class:`BrokerService` is not part of the paper's system — it plays the role
of the *system administrator*: it installs the broker's program directory
ahead of the system directory on each managed machine (the PATH interception),
boots the broker process as an unprivileged user, and gives tests and
experiments a typed submission API plus full visibility into broker state and
an event log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.broker.app import app_main, subapp_main
from repro.broker.core import make_broker_main
from repro.broker.daemon import rbdaemon_main
from repro.broker.rshprime import rshprime_main
from repro.broker.tools import rbctl_main, rbstat_main, rbtop_main, rbtrace_main
from repro.broker.state import BrokerState, JobRecord
from repro.os.process import OSProcess
from repro.os.programs import ProgramDirectory
from repro.policy.default import DefaultPolicy

#: The unprivileged account the resource-management layer runs as.  Nothing
#: grants it special rights: the simulated OS denies it signals to other
#: users' processes exactly as real Unix would.
BROKER_UID = "rbroker"


@dataclass
class JobHandle:
    """A submitted job as seen by the submitting harness."""

    service: "BrokerService"
    proc: OSProcess  # the app process
    argv: List[str]
    rsl: str
    uid: str
    #: Root span of this submission's trace tree (``job.submit``).
    span: Any = None

    @property
    def terminated(self):
        return self.proc.terminated

    @property
    def exit_code(self) -> Optional[int]:
        return self.proc.exit_code

    def wait(self) -> Optional[int]:
        """Run the simulation until this job's app exits."""
        self.service.cluster.env.run(until=self.proc.terminated)
        return self.proc.exit_code

    def job_record(self) -> Optional[JobRecord]:
        """The broker's record for this job (matched on user/host/argv)."""
        for job in self.service.state.jobs.values():
            if (
                job.user == self.uid
                and job.home_host == self.proc.machine.name
                and job.argv == self.argv
            ):
                return job
        return None


class BrokerService:
    """Install, boot and drive ResourceBroker on a cluster."""

    def __init__(
        self,
        cluster,
        policy=None,
        managed_hosts: Optional[Sequence[str]] = None,
        broker_host: Optional[str] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.policy = policy if policy is not None else DefaultPolicy()
        self.managed_hosts: List[str] = list(
            managed_hosts if managed_hosts is not None else cluster.machines
        )
        self.broker_host = broker_host or self.managed_hosts[0]
        self.state = BrokerState()
        self.events: List[Dict[str, Any]] = []
        self._events_by_kind: Dict[str, List[Dict[str, Any]]] = {}
        #: Run-wide observability, shared with everything on this network.
        self.tracer = cluster.network.tracer
        self.metrics = cluster.network.metrics
        self.ready = self.env.event()
        #: The live ``_BrokerControl`` once the broker program boots.
        self.control = None
        self._daemon_down: Dict[str, Any] = {}

        # The broker's program directory, shadowing the system's rsh.
        self.rb_bin = ProgramDirectory("rb")
        self.rb_bin.register("rsh", rshprime_main)
        self.rb_bin.register("app", app_main)
        self.rb_bin.register("subapp", subapp_main)
        self.rb_bin.register("rbdaemon", rbdaemon_main)
        self.rb_bin.register("rbroker", make_broker_main(self))
        self.rb_bin.register("rbstat", rbstat_main)
        self.rb_bin.register("rbctl", rbctl_main)
        self.rb_bin.register("rbtrace", rbtrace_main)
        self.rb_bin.register("rbtop", rbtop_main)

        for host in self.managed_hosts:
            machine = cluster.machines[host]
            machine.path = [self.rb_bin, cluster.system_bin]
            self.state.add_machine(host)
        broker_machine = cluster.machines[self.broker_host]
        if self.rb_bin not in broker_machine.path:
            broker_machine.path = [self.rb_bin] + list(broker_machine.path)

        self.broker_proc = OSProcess(
            broker_machine,
            ["rbroker"],
            uid=BROKER_UID,
            environ={"HOME": f"/home/{BROKER_UID}"},
        )

    # -- logging -----------------------------------------------------------

    def log(self, **entry: Any) -> None:
        """Append a timestamped entry to the broker event log."""
        entry.setdefault("time", self.env.now)
        self.events.append(entry)
        kind = entry.get("event")
        if kind is not None:
            # Index at append time so events_of() is O(matches), not a full
            # scan — experiment harnesses poll it in tight wait loops.
            self._events_by_kind.setdefault(kind, []).append(entry)

    def events_of(self, event: str) -> List[Dict[str, Any]]:
        """All logged entries of one event kind, in order."""
        return list(self._events_by_kind.get(event, ()))

    # -- lifecycle ----------------------------------------------------------

    def wait_ready(self) -> None:
        """Run the simulation until every managed daemon has reported."""
        if not self.ready.processed:
            self.env.run(until=self.ready)

    def submit(
        self,
        host: str,
        argv: Sequence[str],
        rsl: str = "",
        uid: str = "user",
    ) -> JobHandle:
        """Submit ``argv`` from ``host`` through an app process.

        This is the user typing ``app <rsl> <command>`` at a shell prompt on
        ``host``.  The submission roots a new trace: every span the job's
        app, rsh' chain, broker session and module scripts produce hangs off
        the returned handle's ``span``.
        """
        span = self.tracer.start(
            "job.submit",
            host=host,
            actor="user",
            uid=uid,
            argv=list(argv),
            rsl=rsl,
        )
        app_argv = ["app", rsl, *argv]
        proc = self.cluster.run_command(
            host,
            app_argv,
            uid=uid,
            environ={"RB_BROKER_HOST": self.broker_host, **span.environ()},
        )
        proc.terminated.add_callback(
            lambda ev: span.end(code=ev.value) if not span.finished else None
        )
        return JobHandle(
            service=self, proc=proc, argv=list(argv), rsl=rsl, uid=uid, span=span
        )

    def halt_job(self, jobid: int, host: Optional[str] = None) -> OSProcess:
        """Ask the broker to stop ``jobid`` (via ``rbctl halt``)."""
        return self.cluster.run_command(
            host or self.broker_host,
            ["rbctl", "halt", str(jobid)],
            uid="operator",
            environ={"RB_BROKER_HOST": self.broker_host},
        )

    def run_rbstat(self, host: Optional[str] = None, uid: str = "user") -> OSProcess:
        """Run the ``rbstat`` status tool as ``uid`` on ``host``."""
        return self.cluster.run_command(
            host or self.broker_host,
            ["rbstat"],
            uid=uid,
            environ={"RB_BROKER_HOST": self.broker_host},
        )

    # -- introspection -------------------------------------------------------

    def holdings(self) -> Dict[int, List[str]]:
        """jobid -> sorted list of allocated hosts."""
        result: Dict[int, List[str]] = {}
        for record in self.state.machines.values():
            if record.allocation is not None:
                result.setdefault(record.allocation.jobid, []).append(
                    record.host
                )
        return {jobid: sorted(hosts) for jobid, hosts in result.items()}

    def __repr__(self) -> str:
        return (
            f"<BrokerService policy={self.policy.name} "
            f"machines={len(self.managed_hosts)} "
            f"jobs={len(self.state.jobs)}>"
        )
