"""Broker-side bookkeeping: machines, jobs, allocations, pending requests.

:class:`BrokerState` is deliberately a passive data structure — all decisions
live in :mod:`repro.policy` (the paper's mechanism/policy separation, design
goal 5), and all I/O lives in :mod:`repro.broker.core`.  This makes policies
unit-testable against hand-built states.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.rsl import RSLRequest, parse_rsl, symbolic_matches


class AllocationState(enum.Enum):
    """Lifecycle of one machine-to-job binding."""

    ACTIVE = "active"  # granted; the job may occupy it
    RECLAIMING = "reclaiming"  # revoke sent, waiting for release


@dataclass
class Allocation:
    """One machine currently bound to one job."""

    host: str
    jobid: int
    firm: bool
    state: AllocationState = AllocationState.ACTIVE
    granted_at: float = 0.0
    #: Every grant is a lease: the daemon on ``host`` renews it on each
    #: heartbeat while a subapp of ``jobid`` lives there; past this instant
    #: the lease sweeper reclaims the machine even if the holder's app
    #: connection never signalled loss.  ``inf`` = unleased (hand-built
    #: states, tests).
    lease_expires_at: float = float("inf")
    #: When RECLAIMING: the pending request that will receive this machine.
    claimed_by: Optional["PendingRequest"] = None


@dataclass
class MachineRecord:
    """What the broker knows about one machine (from daemon reports)."""

    host: str
    platform: str = ""
    kind: str = "public"
    owner: Optional[str] = None
    console_active: bool = False
    cpu_load: int = 0
    n_processes: int = 0
    last_report: float = -1.0
    #: Last instant *any* daemon report arrived — unlike ``last_report`` it
    #: is never reset on connection loss, so the liveness sweeper can measure
    #: true silence.  -1.0 until the machine has reported at least once.
    last_seen: float = -1.0
    #: Set by the liveness sweeper once the machine has been silent past the
    #: deadline; cleared by the next daemon report (a rejoin).
    dead: bool = False
    allocation: Optional[Allocation] = None

    @property
    def reported(self) -> bool:
        """True once at least one daemon report has arrived."""
        return self.last_report >= 0.0

    @property
    def allocated(self) -> bool:
        return self.allocation is not None

    def snapshot_view(self) -> Dict[str, Any]:
        """Dict view used for RSL / symbolic-name matching."""
        return {
            "host": self.host,
            "platform": self.platform,
            "kind": self.kind,
            "owner": self.owner,
            "console_active": self.console_active,
            "cpu_load": self.cpu_load,
        }

    def update(self, snapshot: Dict[str, Any]) -> None:
        """Fold one daemon report into this record."""
        self.platform = snapshot.get("platform", self.platform)
        self.kind = snapshot.get("kind", self.kind)
        self.owner = snapshot.get("owner", self.owner)
        self.console_active = bool(snapshot.get("console_active", False))
        self.cpu_load = int(snapshot.get("cpu_load", 0))
        self.n_processes = int(snapshot.get("n_processes", 0))
        self.last_report = float(snapshot.get("time", 0.0))
        self.last_seen = self.last_report
        self.dead = False


@dataclass
class JobRecord:
    """One submitted job."""

    jobid: int
    user: str
    home_host: str
    rsl: RSLRequest
    argv: List[str]
    adaptive: bool
    conn: Any = None  # broker<->app connection
    done: bool = False

    @property
    def module(self) -> Optional[str]:
        return self.rsl.module


@dataclass
class PendingRequest:
    """A machine request not yet satisfied."""

    reqid: int
    jobid: int
    symbolic: str
    firm: bool
    arrived_at: float
    #: Set once a machine has been picked and is being reclaimed for us.
    reserved_host: Optional[str] = None


class BrokerState:
    """All broker tables plus derived queries used by policies."""

    def __init__(self, first_jobid: int = 1) -> None:
        self.machines: Dict[str, MachineRecord] = {}
        self.jobs: Dict[int, JobRecord] = {}
        self.pending: List[PendingRequest] = []
        #: Next jobid to assign.  A restarted broker seeds this past every
        #: id its predecessor could have issued, so resumed sessions (which
        #: keep their original jobid, see :meth:`adopt_job`) never collide
        #: with fresh submissions.
        self._next_jobid = first_jobid

    # -- machines ---------------------------------------------------------

    def add_machine(self, host: str) -> MachineRecord:
        """Get-or-create the record for ``host``."""
        record = self.machines.get(host)
        if record is None:
            record = MachineRecord(host=host)
            self.machines[host] = record
        return record

    def machine(self, host: str) -> MachineRecord:
        """The record for ``host`` (KeyError if unknown)."""
        return self.machines[host]

    # -- jobs --------------------------------------------------------------

    def register_job(
        self, user: str, home_host: str, rsl_text: str, argv: List[str],
        adaptive_hint: bool = False,
    ) -> JobRecord:
        """Create a JobRecord for a submission, parsing its RSL."""
        rsl = parse_rsl(rsl_text or "")
        job = JobRecord(
            jobid=self._next_jobid,
            user=user,
            home_host=home_host,
            rsl=rsl,
            argv=list(argv),
            adaptive=rsl.adaptive or adaptive_hint,
        )
        self._next_jobid += 1
        self.jobs[job.jobid] = job
        return job

    def adopt_job(
        self, jobid: int, user: str, home_host: str, rsl_text: str,
        argv: List[str], adaptive_hint: bool = False,
    ) -> JobRecord:
        """Re-create the record of a job that predates this broker state.

        Used when an app resumes a session registered with a previous broker
        incarnation: the job keeps its original ``jobid`` (its subapps carry
        it in their argv, and daemon lease inventories key on it), and the
        jobid counter is bumped past it defensively."""
        rsl = parse_rsl(rsl_text or "")
        job = JobRecord(
            jobid=jobid,
            user=user,
            home_host=home_host,
            rsl=rsl,
            argv=list(argv),
            adaptive=rsl.adaptive or adaptive_hint,
        )
        self._next_jobid = max(self._next_jobid, jobid + 1)
        self.jobs[jobid] = job
        return job

    def job(self, jobid: int) -> JobRecord:
        """The record for ``jobid`` (KeyError if unknown)."""
        return self.jobs[jobid]

    # -- allocations -------------------------------------------------------

    def allocations_of(self, jobid: int) -> List[Allocation]:
        """Every allocation currently held by ``jobid``."""
        return [
            m.allocation
            for m in self.machines.values()
            if m.allocation is not None and m.allocation.jobid == jobid
        ]

    def holding_count(self, jobid: int) -> int:
        """How many machines ``jobid`` holds right now."""
        return len(self.allocations_of(jobid))

    def allocate(
        self,
        host: str,
        jobid: int,
        firm: bool,
        now: float,
        lease_expires_at: float = float("inf"),
    ) -> Allocation:
        """Bind ``host`` to ``jobid`` (the machine must be free)."""
        record = self.machines[host]
        if record.allocation is not None:
            raise RuntimeError(
                f"{host} already allocated to job {record.allocation.jobid}"
            )
        allocation = Allocation(
            host=host,
            jobid=jobid,
            firm=firm,
            granted_at=now,
            lease_expires_at=lease_expires_at,
        )
        record.allocation = allocation
        return allocation

    def adopt_allocation(
        self, host: str, jobid: int, now: float, lease_expires_at: float
    ) -> Optional[Allocation]:
        """Re-adopt a pre-crash grant reported by a daemon inventory or a
        resuming app, idempotently and order-independently.

        First claim wins and creates the allocation; a same-``jobid`` repeat
        (the other reporter arriving later, in either order) only refreshes
        the lease; a *different* jobid claiming an occupied host is rejected
        (returns None — the caller logs the conflict, and the loser's claim
        self-heals through lease expiry).  Unknown hosts are rejected too:
        only managed machines can be adopted."""
        record = self.machines.get(host)
        if record is None:
            return None
        existing = record.allocation
        if existing is not None:
            if existing.jobid != jobid:
                return None
            existing.lease_expires_at = max(
                existing.lease_expires_at, lease_expires_at
            )
            return existing
        allocation = Allocation(
            host=host,
            jobid=jobid,
            firm=False,
            granted_at=now,
            lease_expires_at=lease_expires_at,
        )
        record.allocation = allocation
        return allocation

    def release(self, host: str) -> Optional[Allocation]:
        """Unbind ``host``; returns the allocation it held, if any."""
        record = self.machines[host]
        allocation, record.allocation = record.allocation, None
        return allocation

    # -- queries used by policies --------------------------------------------

    def eligible_machines(
        self, request: PendingRequest
    ) -> List[MachineRecord]:
        """Machines satisfying the symbolic name, reported and usable."""
        job = self.jobs[request.jobid]
        result = []
        for record in self.machines.values():
            if not record.reported:
                continue
            if record.host == job.home_host:
                # The job already runs on its home machine; growing means
                # acquiring *another* one (and PVM-style systems cannot
                # re-add their own master host anyway).
                continue
            if not symbolic_matches(request.symbolic, record.snapshot_view()):
                continue
            if not job.rsl.matches_machine(record.snapshot_view()):
                continue
            if record.console_active:
                continue  # the owner is at the console: hands off
            if record.kind == "private" and not job.adaptive:
                continue  # paper policy: private machines only to adaptive jobs
            result.append(record)
        return result

    def idle_machines(self, request: PendingRequest) -> List[MachineRecord]:
        """Eligible machines with no current allocation, public first."""
        free = [
            m for m in self.eligible_machines(request) if m.allocation is None
        ]
        free.sort(key=lambda m: (m.kind != "public", m.cpu_load, m.host))
        return free

    def pending_sorted(self) -> List[PendingRequest]:
        """Service order: firm requests FIFO first, then elastic requests
        from the poorest job first (even partition among elastic jobs)."""
        firm = [r for r in self.pending if r.firm]
        elastic = [r for r in self.pending if not r.firm]
        firm.sort(key=lambda r: (r.arrived_at, r.reqid))
        elastic.sort(
            key=lambda r: (self.holding_count(r.jobid), r.arrived_at, r.reqid)
        )
        return firm + elastic

    def drop_job_requests(self, jobid: int) -> None:
        """Forget every pending request of ``jobid`` (job finished)."""
        self.pending = [r for r in self.pending if r.jobid != jobid]

    def summary(self) -> Dict[str, Any]:
        """Human-readable status (the ``rbstat`` view)."""
        return {
            "machines": {
                h: {
                    "allocated_to": (
                        m.allocation.jobid if m.allocation else None
                    ),
                    "state": (
                        m.allocation.state.value if m.allocation else "free"
                    ),
                    "console_active": m.console_active,
                    "load": m.cpu_load,
                }
                for h, m in sorted(self.machines.items())
            },
            "jobs": {
                j: {
                    "user": job.user,
                    "adaptive": job.adaptive,
                    "module": job.module,
                    "holdings": self.holding_count(j),
                    "done": job.done,
                }
                for j, job in sorted(self.jobs.items())
            },
            "pending": len(self.pending),
        }
