"""Broker-side bookkeeping: machines, jobs, allocations, pending requests.

:class:`BrokerState` is deliberately a passive data structure — all decisions
live in :mod:`repro.policy` (the paper's mechanism/policy separation, design
goal 5), and all I/O lives in :mod:`repro.broker.core`.  This makes policies
unit-testable against hand-built states.

Control-plane scaling (DESIGN.md §12)
-------------------------------------
The state maintains **incremental indexes** so that broker decision cost is
independent of cluster size:

* ``_allocations_by_jobid`` makes :meth:`holding_count` /
  :meth:`allocations_of` O(1) instead of a scan over every machine (the seed
  scanned from *inside sort keys*, i.e. O(n²) per scheduling pass);
* per-platform partitions of the reported / usable / idle machine sets make
  eligibility queries O(candidates) instead of O(machines);
* the pending queue keeps a cached service order (firm FIFO, then
  poorest-first elastic) that is only re-sorted when membership or a holding
  count actually changes;
* a per-request **dirty** discipline tells the scheduler which pending
  requests may have a changed candidate set (see
  :meth:`take_dirty_pending`).

Indexes are maintained through a ``__setattr__`` hook on
:class:`MachineRecord`, so code (and tests) that mutate record fields
directly — ``record.console_active = True`` — keep working unchanged.  The
seed's full-scan query implementations are preserved behind
``use_indexes = False`` as the reference the equivalence tests compare
against (``tests/broker/test_sched_equivalence.py``).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.rsl import RSLRequest, parse_rsl, symbolic_matches


class AllocationState(enum.Enum):
    """Lifecycle of one machine-to-job binding."""

    ACTIVE = "active"  # granted; the job may occupy it
    RECLAIMING = "reclaiming"  # revoke sent, waiting for release
    MIGRATING = "migrating"  # loaned to a sibling broker shard (donor side)


@dataclass
class Allocation:
    """One machine currently bound to one job."""

    host: str
    jobid: int
    firm: bool
    state: AllocationState = AllocationState.ACTIVE
    granted_at: float = 0.0
    #: Every grant is a lease: the daemon on ``host`` renews it on each
    #: heartbeat while a subapp of ``jobid`` lives there; past this instant
    #: the lease sweeper reclaims the machine even if the holder's app
    #: connection never signalled loss.  ``inf`` = unleased (hand-built
    #: states, tests).
    lease_expires_at: float = float("inf")
    #: When RECLAIMING: the pending request that will receive this machine.
    claimed_by: Optional["PendingRequest"] = None
    #: Instant the reclaim began (revoke sent); -1.0 while ACTIVE.  The
    #: health monitor's stuck-allocation watchdog measures against this.
    reclaiming_since: float = -1.0
    #: True while this allocation was rebuilt from the journal and no live
    #: daemon inventory has confirmed it yet.  Confirmation (the jobid in
    #: the daemon's lease list) clears it; a disagreeing inventory resolves
    #: toward the live side and counts a ``recovery.conflicts``.
    recovered: bool = field(default=False, compare=False)
    #: When MIGRATING: index of the sibling broker shard this machine has
    #: been loaned to.  ``None`` for ordinary allocations.  The donor keeps
    #: the machine leased (daemon heartbeats renew against the borrower's
    #: jobid) but excludes it from its own scheduling until the loan ends.
    loaned_to: Optional[int] = field(default=None, compare=False)


#: MachineRecord fields that feed the RSL / symbolic matching view (and so
#: invalidate the cached ``snapshot_view`` dict when they change).
_VIEW_FIELDS = frozenset(
    {"host", "platform", "kind", "owner", "console_active", "cpu_load"}
)

#: MachineRecord fields whose changes the owning BrokerState must observe to
#: keep its indexes fresh.
_TRACKED_FIELDS = _VIEW_FIELDS | {"last_report", "last_seen", "dead", "allocation"}

_UNSET = object()


@dataclass
class MachineRecord:
    """What the broker knows about one machine (from daemon reports)."""

    host: str
    platform: str = ""
    kind: str = "public"
    owner: Optional[str] = None
    console_active: bool = False
    cpu_load: int = 0
    n_processes: int = 0
    last_report: float = -1.0
    #: Last instant *any* daemon report arrived — unlike ``last_report`` it
    #: is never reset on connection loss, so the liveness sweeper can measure
    #: true silence.  -1.0 until the machine has reported at least once.
    last_seen: float = -1.0
    #: Set by the liveness sweeper once the machine has been silent past the
    #: deadline; cleared by the next daemon report (a rejoin).
    dead: bool = False
    allocation: Optional[Allocation] = None
    #: Lease inventory (jobids) from the machine's last *full* daemon report.
    #: Delta heartbeats (beacons) renew against this list — a lease change on
    #: the machine always changes its process table, which forces the daemon
    #: to send a full report, so the stored list is never stale.
    leases: Tuple[int, ...] = field(default=(), compare=False)
    #: Index of the sibling broker shard this record was borrowed from, or
    #: ``None`` for a machine this broker owns.  Deliberately *not* a tracked
    #: field: a borrowed record is created fully formed (allocated before it
    #: could ever enter an idle bucket) and is excluded from every
    #: eligibility query, so no index needs to observe the flag.
    borrowed_from: Optional[int] = field(default=None, compare=False)
    #: Cached :meth:`snapshot_view` dict; invalidated whenever a view field
    #: changes (so eligibility checks stop rebuilding it per candidate).
    _view: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False
    )
    #: Owning :class:`BrokerState`, for index maintenance.  ``None`` for
    #: free-standing records (hand-built tests).
    _state: Optional["BrokerState"] = field(
        default=None, repr=False, compare=False
    )

    def __setattr__(self, name: str, value: Any) -> None:
        if name in _TRACKED_FIELDS:
            old = getattr(self, name, _UNSET)
            object.__setattr__(self, name, value)
            if old is not _UNSET and old != value:
                if name in _VIEW_FIELDS:
                    object.__setattr__(self, "_view", None)
                state = getattr(self, "_state", None)
                if state is not None:
                    state._machine_field_changed(self, name, old, value)
        else:
            object.__setattr__(self, name, value)

    @property
    def reported(self) -> bool:
        """True once at least one daemon report has arrived."""
        return self.last_report >= 0.0

    @property
    def allocated(self) -> bool:
        return self.allocation is not None

    def snapshot_view(self) -> Dict[str, Any]:
        """Dict view used for RSL / symbolic-name matching (cached)."""
        view = self._view
        if view is None:
            view = {
                "host": self.host,
                "platform": self.platform,
                "kind": self.kind,
                "owner": self.owner,
                "console_active": self.console_active,
                "cpu_load": self.cpu_load,
            }
            object.__setattr__(self, "_view", view)
        return view

    def update(self, snapshot: Dict[str, Any]) -> None:
        """Fold one full daemon report into this record.

        Values are compared before assignment, so a report that changes
        nothing monitorable costs a handful of comparisons and never runs
        the index hook, invalidates the cached view, or bumps the
        capability version."""
        platform = snapshot.get("platform", self.platform)
        if platform != self.platform:
            self.platform = platform
        kind = snapshot.get("kind", self.kind)
        if kind != self.kind:
            self.kind = kind
        owner = snapshot.get("owner", self.owner)
        if owner != self.owner:
            self.owner = owner
        console_active = bool(snapshot.get("console_active", False))
        if console_active != self.console_active:
            self.console_active = console_active
        cpu_load = int(snapshot.get("cpu_load", 0))
        if cpu_load != self.cpu_load:
            self.cpu_load = cpu_load
        self.n_processes = int(snapshot.get("n_processes", 0))
        self.touch(float(snapshot.get("time", 0.0)))
        if self.dead:
            self.dead = False

    def touch(self, now: float) -> None:
        """Advance the liveness clocks (every report flavour does this).

        The common case — an already-reported record — bypasses the
        ``__setattr__`` hook: a clock move without a sign flip affects no
        index.  A record whose report was reset (connection loss, marked
        dead) takes the hooked path so the reported-set indexes refresh."""
        if self.last_report >= 0.0:
            object.__setattr__(self, "last_report", now)
        else:
            self.last_report = now
        if self.last_seen >= 0.0:
            object.__setattr__(self, "last_seen", now)
        else:
            self.last_seen = now


@dataclass
class JobRecord:
    """One submitted job."""

    jobid: int
    user: str
    home_host: str
    rsl: RSLRequest
    argv: List[str]
    adaptive: bool
    conn: Any = None  # broker<->app connection
    done: bool = False

    @property
    def module(self) -> Optional[str]:
        return self.rsl.module


@dataclass
class PendingRequest:
    """A machine request not yet satisfied."""

    reqid: int
    jobid: int
    symbolic: str
    firm: bool
    arrived_at: float
    #: Set once a machine has been picked and is being reclaimed for us.
    reserved_host: Optional[str] = None
    #: True while the request's candidate set may have changed since its
    #: last policy evaluation; new requests start dirty.  ``compare=False``
    #: keeps the seed's equality semantics (queue membership tests).
    dirty: bool = field(default=True, compare=False)
    #: Maintained by :class:`_PendingQueue`; True while queued.
    queued: bool = field(default=False, compare=False)
    #: Federated routing hint: the shard index ``rshprime`` hashed the
    #: symbolic name to, used to pick which sibling to try first when
    #: borrowing.  ``None`` outside federation (and on resumed sessions —
    #: the borrower recomputes the same hash from ``symbolic``).
    shard_hint: Optional[int] = field(default=None, compare=False)


class _PendingQueue(list):
    """The pending-request list, instrumented for index maintenance.

    Still a plain ``list`` to every caller (core and tests append/remove/
    iterate directly); the overrides keep the owning state's cached service
    order and dirty bookkeeping coherent."""

    def __init__(self, state: "BrokerState") -> None:
        super().__init__()
        self._state = state

    def append(self, request: PendingRequest) -> None:  # type: ignore[override]
        super().append(request)
        request.queued = True
        request.dirty = True
        self._state._order_cache = None
        self._state._dirty_list.append(request)
        journal = self._state.journal
        if journal is not None:
            journal.record(
                {
                    "op": "pend+",
                    "reqid": request.reqid,
                    "jobid": request.jobid,
                    "symbolic": request.symbolic,
                    "firm": request.firm,
                    "arrived": request.arrived_at,
                }
            )

    def remove(self, request: PendingRequest) -> None:  # type: ignore[override]
        super().remove(request)
        request.queued = False
        self._state._order_cache = None
        journal = self._state.journal
        if journal is not None:
            journal.record(
                {"op": "pend-", "reqid": request.reqid, "jobid": request.jobid}
            )


class BrokerState:
    """All broker tables plus derived queries used by policies."""

    def __init__(self, first_jobid: int = 1) -> None:
        self.machines: Dict[str, MachineRecord] = {}
        self.jobs: Dict[int, JobRecord] = {}
        self.pending: List[PendingRequest] = _PendingQueue(self)
        #: Next jobid to assign.  A restarted broker seeds this past every
        #: id its predecessor could have issued, so resumed sessions (which
        #: keep their original jobid, see :meth:`adopt_job`) never collide
        #: with fresh submissions.
        self._next_jobid = first_jobid
        #: False switches every derived query back to the seed's full-scan
        #: implementation — the reference the equivalence tests compare the
        #: indexed scheduler against.
        self.use_indexes: bool = True
        #: Machine records examined by eligibility/deny queries (coarse
        #: telemetry; the bench derives "policy scans per grant" from it).
        self.machines_scanned: int = 0
        #: Attached :class:`~repro.broker.journal.BrokerJournal`, if the
        #: broker runs durable; ``None`` keeps every mutation hook inert.
        self.journal: Optional[Any] = None

        # -- incremental indexes (maintained through the record hook) -------
        #: host -> insertion rank, for seed-identical iteration order.
        self._machine_rank: Dict[str, int] = {}
        #: platform -> {host: record} over *reported* machines (deny checks).
        self._reported_by_platform: Dict[str, Dict[str, MachineRecord]] = {}
        #: platform -> {host: record} over reported, console-free machines.
        self._usable_by_platform: Dict[str, Dict[str, MachineRecord]] = {}
        #: platform -> {host: record} over usable machines with no allocation.
        self._idle_by_platform: Dict[str, Dict[str, MachineRecord]] = {}
        #: platform -> heap of (kind != public, cpu_load, host) mirroring
        #: ``_idle_by_platform`` with lazy deletion: entries are pushed when a
        #: machine enters the idle set (or its key fields change while idle)
        #: and validated against the live record on peek, so
        #: :meth:`best_idle` finds the policy's grant choice in O(log n)
        #: instead of sorting the whole idle partition per decision.
        self._idle_heap: Dict[str, List[Tuple[bool, int, str]]] = {}
        #: jobid -> {host: allocation}.
        self._allocations_by_jobid: Dict[int, Dict[str, Allocation]] = {}
        #: Machines currently holding any allocation (lease sweeper's scan set).
        self._leased: Dict[str, MachineRecord] = {}
        #: Machines heard from at least once and not declared dead (liveness
        #: sweeper's scan set).
        self._tracked: Dict[str, MachineRecord] = {}
        #: (symbolic, platform) -> bool; a pure function, never invalidated.
        self._symbolic_hits: Dict[Tuple[str, str], bool] = {}
        #: Known machines that have never reported (or lost their report),
        #: so "has every managed machine reported?" is O(1).
        self._unreported_count: int = 0
        #: Bumped whenever the matching-relevant capability universe changes
        #: (membership of the reported set, or any reported machine's view
        #: field).  Version-stamps the unsatisfiability memo in core.
        self.capability_version: int = 0

        # -- pending-order / dirty bookkeeping ------------------------------
        self._order_cache: Optional[List[PendingRequest]] = None
        self._all_pending_dirty: bool = True
        self._dirty_list: List[PendingRequest] = []

    # -- index maintenance -------------------------------------------------

    def _machine_field_changed(
        self, record: MachineRecord, name: str, old: Any, new: Any
    ) -> None:
        """Observe one record-field change and refresh affected indexes.

        Dirty discipline: the scheduler's correctness invariant is that a
        *clean* pending request's decision is always "wait", so any change
        that could turn a wait into a grant or preemption must mark the
        requests it could affect.  RSL clauses match arbitrary view fields
        (``(cpu_load<2)`` is legal), so every view-field change on a machine
        that is usable *after* the change marks its platform's requests;
        changes that only shrink the candidate universe (console occupied,
        report lost) mark nothing — removing options never makes a waiting
        request actionable."""
        if self.journal is not None and name != "allocation":
            # Allocation transitions are journalled as explicit ops by the
            # mutators; everything else coalesces into the machine's dirty
            # durable view, written at the next flush.
            self.journal.note_machine(record)
        if name == "last_seen":
            if (old >= 0.0) != (new >= 0.0):
                self._refresh_tracked(record)
            return
        if name == "dead":
            self._refresh_tracked(record)
            return
        if name == "allocation":
            self._allocation_changed(record, old, new)
            return
        if name == "last_report":
            if (old >= 0.0) != (new >= 0.0):
                self._refresh_eligibility(record, record.platform)
                self.capability_version += 1
                if new >= 0.0:
                    self._unreported_count -= 1
                    self.mark_pending_dirty_for_platform(record.platform)
                else:
                    self._unreported_count += 1
            return
        if name == "platform":
            self._refresh_eligibility(record, old_platform=old)
            self.capability_version += 1
            if record.reported and not record.console_active:
                self.mark_pending_dirty_for_platform(record.platform)
            return
        if name == "console_active":
            self._refresh_eligibility(record, record.platform)
            self.capability_version += 1
            if not new and record.reported:
                # Machine became grantable again: requests it could satisfy
                # must be re-evaluated.
                self.mark_pending_dirty_for_platform(record.platform)
            return
        # kind / owner / cpu_load: the matching view changed in place.
        self.capability_version += 1
        if name != "owner":
            # kind and cpu_load are idle-heap key fields: refresh the entry
            # of a machine currently in the idle partition.
            bucket = self._idle_by_platform.get(record.platform)
            if bucket is not None and record.host in bucket:
                self._push_idle(record)
        if record.reported and not record.console_active:
            self.mark_pending_dirty_for_platform(record.platform)

    def _refresh_eligibility(
        self, record: MachineRecord, old_platform: str
    ) -> None:
        """Recompute the record's reported/usable/idle bucket membership."""
        host = record.host
        for buckets in (
            self._reported_by_platform,
            self._usable_by_platform,
            self._idle_by_platform,
        ):
            bucket = buckets.get(old_platform)
            if bucket is not None:
                bucket.pop(host, None)
            if old_platform != record.platform:
                bucket = buckets.get(record.platform)
                if bucket is not None:
                    bucket.pop(host, None)
        if not record.reported:
            return
        platform = record.platform
        self._reported_by_platform.setdefault(platform, {})[host] = record
        if record.console_active:
            return
        self._usable_by_platform.setdefault(platform, {})[host] = record
        if record.allocation is None:
            self._idle_by_platform.setdefault(platform, {})[host] = record
            self._push_idle(record)

    def _allocation_changed(
        self,
        record: MachineRecord,
        old: Optional[Allocation],
        new: Optional[Allocation],
    ) -> None:
        host = record.host
        if old is not None:
            held = self._allocations_by_jobid.get(old.jobid)
            if held is not None:
                held.pop(host, None)
                if not held:
                    del self._allocations_by_jobid[old.jobid]
        if new is not None:
            self._allocations_by_jobid.setdefault(new.jobid, {})[host] = new
            self._leased[host] = record
            bucket = self._idle_by_platform.get(record.platform)
            if bucket is not None:
                bucket.pop(host, None)
        else:
            self._leased.pop(host, None)
            if (
                record.reported
                and not record.console_active
            ):
                self._idle_by_platform.setdefault(record.platform, {})[
                    host
                ] = record
                self._push_idle(record)
        # Holding counts changed, so both the elastic service order and every
        # pending decision (idle sets, victim richness, requester thresholds)
        # may have: re-sort lazily and re-evaluate everything.  Allocation
        # flips happen at churn rate, not heartbeat rate, so the conservative
        # mark-all costs one flag write.
        self._order_cache = None
        self._all_pending_dirty = True

    def _refresh_tracked(self, record: MachineRecord) -> None:
        if record.last_seen >= 0.0 and not record.dead:
            self._tracked[record.host] = record
        else:
            self._tracked.pop(record.host, None)

    def _push_idle(self, record: MachineRecord) -> None:
        """Mirror an idle-set entry (or key change) into the idle heap."""
        heapq.heappush(
            self._idle_heap.setdefault(record.platform, []),
            (record.kind != "public", record.cpu_load, record.host),
        )

    def _peek_idle(
        self, platform: str, bucket: Dict[str, MachineRecord]
    ) -> Optional[Tuple[bool, int, str]]:
        """The heap's smallest *live* entry for ``platform``, dropping stale
        ones (machine left the idle set, or its key fields moved on — the
        refreshed entry is elsewhere in the heap).  Duplicate live entries
        are harmless: validation is against the current record."""
        heap = self._idle_heap.get(platform)
        while heap:
            entry = heap[0]
            record = bucket.get(entry[2])
            if (
                record is None
                or (record.kind != "public") != entry[0]
                or record.cpu_load != entry[1]
            ):
                heapq.heappop(heap)
                self.machines_scanned += 1
                continue
            return entry
        return None

    def _symbolic_platform_match(self, symbolic: str, platform: str) -> bool:
        """Memoized ``symbolic_matches`` on the platform alone (it reads
        nothing else from the snapshot, so the memo is exact and permanent)."""
        key = (symbolic, platform)
        hit = self._symbolic_hits.get(key)
        if hit is None:
            hit = symbolic_matches(symbolic, {"platform": platform})
            self._symbolic_hits[key] = hit
        return hit

    # -- sweeper scan sets ---------------------------------------------------

    def tracked_records(self) -> List[MachineRecord]:
        """Machines the liveness sweeper must examine: heard from at least
        once and not already declared dead."""
        if not self.use_indexes:
            return [
                m
                for m in self.machines.values()
                if m.last_seen >= 0.0 and not m.dead
            ]
        return list(self._tracked.values())

    def leased_records(self) -> List[MachineRecord]:
        """Machines the lease sweeper must examine: holding any allocation."""
        if not self.use_indexes:
            return [m for m in self.machines.values() if m.allocation is not None]
        return list(self._leased.values())

    # -- dirty-driven scheduling --------------------------------------------

    def mark_all_pending_dirty(self) -> None:
        """Every pending request must be re-evaluated on the next pass."""
        self._all_pending_dirty = True

    def mark_job_requests_dirty(self, jobid: int) -> None:
        """Re-evaluate every pending request of ``jobid`` (e.g. its session
        just resumed, so grants are deliverable again)."""
        for request in self.pending:
            if request.jobid == jobid and not request.dirty:
                request.dirty = True
                self._dirty_list.append(request)

    def mark_pending_dirty_for_platform(self, platform: str) -> None:
        """Re-evaluate pending requests whose symbolic name could match a
        machine of ``platform`` (one just became grantable or changed)."""
        for request in self.pending:
            if request.dirty:
                continue
            if self._symbolic_platform_match(request.symbolic, platform):
                request.dirty = True
                self._dirty_list.append(request)

    def take_dirty_pending(self) -> List[PendingRequest]:
        """The requests to evaluate this pass, in service order, clearing
        their dirty flags.  With the all-dirty flag set this is exactly the
        seed's full pass; otherwise only flagged requests are returned."""
        if self._all_pending_dirty:
            self._all_pending_dirty = False
            self._dirty_list = []
            order = list(self.pending_sorted())
            for request in order:
                request.dirty = False
            return order
        if not self._dirty_list:
            return []
        flagged = {
            id(r) for r in self._dirty_list if r.dirty and r.queued
        }
        self._dirty_list = []
        if not flagged:
            return []
        order = [r for r in self.pending_sorted() if id(r) in flagged]
        for request in order:
            request.dirty = False
        return order

    # -- machines ---------------------------------------------------------

    def add_machine(self, host: str) -> MachineRecord:
        """Get-or-create the record for ``host``."""
        record = self.machines.get(host)
        if record is None:
            record = MachineRecord(host=host)
            record._state = self
            self.machines[host] = record
            self._machine_rank[host] = len(self._machine_rank)
            self._unreported_count += 1
        return record

    def all_reported(self, hosts) -> bool:
        """Whether every machine in ``hosts`` has a current daemon report
        (the knowledge-completeness guard behind denial decisions)."""
        if not self.use_indexes:
            return all(
                self.machines[h].reported
                for h in hosts
                if h in self.machines
            )
        # Every known machine is a managed one (records are only created for
        # the managed set), so the counter answers for any hosts subset.
        return self._unreported_count == 0

    def machine(self, host: str) -> MachineRecord:
        """The record for ``host`` (KeyError if unknown)."""
        return self.machines[host]

    # -- jobs --------------------------------------------------------------

    def register_job(
        self, user: str, home_host: str, rsl_text: str, argv: List[str],
        adaptive_hint: bool = False,
    ) -> JobRecord:
        """Create a JobRecord for a submission, parsing its RSL."""
        rsl = parse_rsl(rsl_text or "")
        job = JobRecord(
            jobid=self._next_jobid,
            user=user,
            home_host=home_host,
            rsl=rsl,
            argv=list(argv),
            adaptive=rsl.adaptive or adaptive_hint,
        )
        self._next_jobid += 1
        self.jobs[job.jobid] = job
        self._journal_job(job)
        return job

    def adopt_job(
        self, jobid: int, user: str, home_host: str, rsl_text: str,
        argv: List[str], adaptive_hint: bool = False,
    ) -> JobRecord:
        """Re-create the record of a job that predates this broker state.

        Used when an app resumes a session registered with a previous broker
        incarnation: the job keeps its original ``jobid`` (its subapps carry
        it in their argv, and daemon lease inventories key on it), and the
        jobid counter is bumped past it defensively."""
        rsl = parse_rsl(rsl_text or "")
        job = JobRecord(
            jobid=jobid,
            user=user,
            home_host=home_host,
            rsl=rsl,
            argv=list(argv),
            adaptive=rsl.adaptive or adaptive_hint,
        )
        self._next_jobid = max(self._next_jobid, jobid + 1)
        self.jobs[jobid] = job
        self._journal_job(job)
        return job

    def _journal_job(self, job: JobRecord) -> None:
        if self.journal is not None:
            self.journal.record(
                {
                    "op": "job",
                    "jobid": job.jobid,
                    "user": job.user,
                    "home": job.home_host,
                    "rsl": job.rsl.source,
                    "argv": list(job.argv),
                    "adaptive": job.adaptive,
                }
            )

    def job(self, jobid: int) -> JobRecord:
        """The record for ``jobid`` (KeyError if unknown)."""
        return self.jobs[jobid]

    # -- allocations -------------------------------------------------------

    def allocations_of(self, jobid: int) -> List[Allocation]:
        """Every allocation currently held by ``jobid``.

        Indexed O(holdings); returned in the seed's machine-table order so
        downstream message sequences stay byte-identical."""
        if not self.use_indexes:
            return [
                m.allocation
                for m in self.machines.values()
                if m.allocation is not None and m.allocation.jobid == jobid
            ]
        held = self._allocations_by_jobid.get(jobid)
        if not held:
            return []
        rank = self._machine_rank
        return [
            held[host] for host in sorted(held, key=lambda h: rank.get(h, -1))
        ]

    def holding_count(self, jobid: int) -> int:
        """How many machines ``jobid`` holds right now (O(1))."""
        if not self.use_indexes:
            return len(
                [
                    m
                    for m in self.machines.values()
                    if m.allocation is not None and m.allocation.jobid == jobid
                ]
            )
        return len(self._allocations_by_jobid.get(jobid, ()))

    def allocate(
        self,
        host: str,
        jobid: int,
        firm: bool,
        now: float,
        lease_expires_at: float = float("inf"),
    ) -> Allocation:
        """Bind ``host`` to ``jobid`` (the machine must be free)."""
        record = self.machines[host]
        if record.allocation is not None:
            raise RuntimeError(
                f"{host} already allocated to job {record.allocation.jobid}"
            )
        allocation = Allocation(
            host=host,
            jobid=jobid,
            firm=firm,
            granted_at=now,
            lease_expires_at=lease_expires_at,
        )
        record.allocation = allocation
        if self.journal is not None:
            self.journal.record(
                {
                    "op": "alloc",
                    "host": host,
                    "jobid": jobid,
                    "firm": firm,
                    "granted": now,
                    "expires": lease_expires_at,
                }
            )
        return allocation

    def adopt_allocation(
        self, host: str, jobid: int, now: float, lease_expires_at: float
    ) -> Optional[Allocation]:
        """Re-adopt a pre-crash grant reported by a daemon inventory or a
        resuming app, idempotently and order-independently.

        First claim wins and creates the allocation; a same-``jobid`` repeat
        (the other reporter arriving later, in either order) only refreshes
        the lease; a *different* jobid claiming an occupied host is rejected
        (returns None — the caller logs the conflict, and the loser's claim
        self-heals through lease expiry).  Unknown hosts are rejected too:
        only managed machines can be adopted."""
        record = self.machines.get(host)
        if record is None:
            return None
        existing = record.allocation
        if existing is not None:
            if existing.jobid != jobid:
                return None
            existing.lease_expires_at = max(
                existing.lease_expires_at, lease_expires_at
            )
            existing.recovered = False
            if self.journal is not None:
                self.journal.note_lease(host, existing.lease_expires_at)
            return existing
        allocation = Allocation(
            host=host,
            jobid=jobid,
            firm=False,
            granted_at=now,
            lease_expires_at=lease_expires_at,
        )
        record.allocation = allocation
        if self.journal is not None:
            self.journal.record(
                {
                    "op": "alloc",
                    "host": host,
                    "jobid": jobid,
                    "firm": False,
                    "granted": now,
                    "expires": lease_expires_at,
                }
            )
        return allocation

    def release(self, host: str) -> Optional[Allocation]:
        """Unbind ``host``; returns the allocation it held, if any."""
        record = self.machines[host]
        allocation = record.allocation
        record.allocation = None
        if allocation is not None and self.journal is not None:
            self.journal.record({"op": "release", "host": host})
        return allocation

    # -- queries used by policies --------------------------------------------

    def _request_filter_ok(
        self, record: MachineRecord, job: JobRecord, request: PendingRequest
    ) -> bool:
        """Per-request eligibility filters not captured by the index
        partition (home host, full RSL constraints, private/adaptive)."""
        if record.borrowed_from is not None:
            # A borrowed machine serves exactly the request it was borrowed
            # for; it never joins this broker's general candidate pool (the
            # donor still schedules over it once the loan ends).
            return False
        if record.host == job.home_host:
            # The job already runs on its home machine; growing means
            # acquiring *another* one (and PVM-style systems cannot
            # re-add their own master host anyway).
            return False
        if not job.rsl.matches_machine(record.snapshot_view()):
            return False
        if record.kind == "private" and not job.adaptive:
            return False  # paper policy: private machines only to adaptive jobs
        return True

    def _matching_buckets(
        self,
        buckets: Dict[str, Dict[str, MachineRecord]],
        symbolic: str,
    ) -> List[Dict[str, MachineRecord]]:
        """The platform buckets whose machines satisfy ``symbolic``."""
        result = []
        for platform, bucket in buckets.items():
            if bucket and self._symbolic_platform_match(symbolic, platform):
                result.append(bucket)
        return result

    def eligible_machines(
        self, request: PendingRequest
    ) -> List[MachineRecord]:
        """Machines satisfying the symbolic name, reported and usable."""
        job = self.jobs[request.jobid]
        if not self.use_indexes:
            return self._eligible_machines_fullscan(job, request)
        result = []
        for bucket in self._matching_buckets(
            self._usable_by_platform, request.symbolic
        ):
            self.machines_scanned += len(bucket)
            for record in bucket.values():
                if self._request_filter_ok(record, job, request):
                    result.append(record)
        return result

    def _eligible_machines_fullscan(
        self, job: JobRecord, request: PendingRequest
    ) -> List[MachineRecord]:
        """The seed's O(machines) eligibility scan (reference semantics)."""
        result = []
        self.machines_scanned += len(self.machines)
        for record in self.machines.values():
            if not record.reported:
                continue
            if record.borrowed_from is not None:
                continue
            if record.host == job.home_host:
                continue
            if not symbolic_matches(request.symbolic, record.snapshot_view()):
                continue
            if not job.rsl.matches_machine(record.snapshot_view()):
                continue
            if record.console_active:
                continue  # the owner is at the console: hands off
            if record.kind == "private" and not job.adaptive:
                continue
            result.append(record)
        return result

    def idle_machines(self, request: PendingRequest) -> List[MachineRecord]:
        """Eligible machines with no current allocation, public first.

        Indexed: only the idle partition is examined, so a fully-allocated
        cluster answers in O(1) however large it is."""
        if not self.use_indexes:
            free = [
                m
                for m in self.eligible_machines(request)
                if m.allocation is None
            ]
            free.sort(key=lambda m: (m.kind != "public", m.cpu_load, m.host))
            return free
        job = self.jobs[request.jobid]
        free = []
        for bucket in self._matching_buckets(
            self._idle_by_platform, request.symbolic
        ):
            self.machines_scanned += len(bucket)
            for record in bucket.values():
                if self._request_filter_ok(record, job, request):
                    free.append(record)
        free.sort(key=lambda m: (m.kind != "public", m.cpu_load, m.host))
        return free

    def best_idle(
        self, request: PendingRequest
    ) -> Optional[MachineRecord]:
        """The machine :meth:`idle_machines` would rank first, found without
        scanning: walk the matching platforms' idle heaps in key order —
        (public first, least loaded, host) — and return the first machine
        passing the per-request filters.  O(log n) per grant where the list
        query is O(idle); a full-cluster expansion is O(n log n) total
        instead of O(n²).  Entries popped past (request-filtered, e.g. the
        job's home host) are pushed back, so the heaps stay complete."""
        job = self.jobs[request.jobid]
        return self._best_idle_for(job, request)

    def _best_idle_for(
        self, job: JobRecord, request: PendingRequest
    ) -> Optional[MachineRecord]:
        """Heap-walk behind :meth:`best_idle`, shared with the federation
        donor path (which evaluates a *foreign* job that has no entry in
        :attr:`jobs`)."""
        pairs = [
            (platform, bucket)
            for platform, bucket in self._idle_by_platform.items()
            if bucket and self._symbolic_platform_match(request.symbolic, platform)
        ]
        if not pairs:
            return None
        tops: Dict[str, Tuple[bool, int, str]] = {}
        buckets = dict(pairs)
        for platform, bucket in pairs:
            entry = self._peek_idle(platform, bucket)
            if entry is not None:
                tops[platform] = entry
        popped: List[Tuple[str, Tuple[bool, int, str]]] = []
        result = None
        while tops:
            platform = min(tops, key=tops.get)
            entry = tops[platform]
            record = buckets[platform][entry[2]]
            self.machines_scanned += 1
            if self._request_filter_ok(record, job, request):
                result = record
                break
            # Filtered for this request only (home host, RSL, private):
            # set it aside and look at the platform's next-best machine.
            heapq.heappop(self._idle_heap[platform])
            popped.append((platform, entry))
            entry = self._peek_idle(platform, buckets[platform])
            if entry is None:
                del tops[platform]
            else:
                tops[platform] = entry
        for platform, entry in popped:
            heapq.heappush(self._idle_heap[platform], entry)
        return result

    def _loan_probe(
        self, symbolic: str, rsl_text: str, adaptive: bool
    ) -> Tuple[JobRecord, PendingRequest]:
        """Transient (job, request) pair modelling a *foreign* job for the
        federation donor path: no home host to exclude, the borrower's RSL
        and adaptivity carried over verbatim.  Never registered in
        :attr:`jobs` or :attr:`pending`."""
        job = JobRecord(
            jobid=-1,
            user="federation",
            home_host="",
            rsl=parse_rsl(rsl_text or ""),
            argv=[],
            adaptive=bool(adaptive),
        )
        request = PendingRequest(
            reqid=-1,
            jobid=-1,
            symbolic=symbolic,
            firm=False,
            arrived_at=0.0,
        )
        return job, request

    def best_idle_for_loan(
        self, symbolic: str, rsl_text: str, adaptive: bool
    ) -> Optional[MachineRecord]:
        """The machine this broker would lend a sibling shard for
        ``(symbolic, rsl)``: its own :meth:`best_idle` choice for an
        equivalent foreign request.  Only idle machines are ever lent —
        a donor never preempts its own jobs for a sibling."""
        job, request = self._loan_probe(symbolic, rsl_text, adaptive)
        return self._best_idle_for(job, request)

    def loan_satisfiable(
        self, symbolic: str, rsl_text: str, adaptive: bool
    ) -> bool:
        """Could any reported machine here *ever* satisfy a sibling's
        ``(symbolic, rsl)``?  Drives the borrower's deny decision: a request
        is hopeless only once every shard answers False."""
        job, _ = self._loan_probe(symbolic, rsl_text, adaptive)
        return self.satisfiable_somewhere(symbolic, job)

    def forget_machine(self, host: str) -> None:
        """Remove a *borrowed* record entirely (the loan ended).

        Detaches the record from index maintenance first, then evicts it
        from every index by hand: borrowed records never enter idle buckets
        (allocated at creation), so the idle heap needs no repair beyond its
        usual lazy deletion."""
        record = self.machines.pop(host, None)
        if record is None:
            return
        record._state = None
        self._machine_rank.pop(host, None)
        for buckets in (
            self._reported_by_platform,
            self._usable_by_platform,
            self._idle_by_platform,
        ):
            bucket = buckets.get(record.platform)
            if bucket is not None:
                bucket.pop(host, None)
        allocation = record.allocation
        if allocation is not None:
            held = self._allocations_by_jobid.get(allocation.jobid)
            if held is not None:
                held.pop(host, None)
                if not held:
                    del self._allocations_by_jobid[allocation.jobid]
        self._leased.pop(host, None)
        self._tracked.pop(host, None)
        if not record.reported:
            self._unreported_count -= 1
        self.capability_version += 1
        if self.journal is not None:
            self.journal.note_forget(host)

    def held_eligible(self, request: PendingRequest) -> List[MachineRecord]:
        """Eligible machines that currently hold an allocation — the victim
        universe for preemption decisions."""
        if not self.use_indexes:
            return [
                m
                for m in self.eligible_machines(request)
                if m.allocation is not None
            ]
        job = self.jobs[request.jobid]
        result = []
        for bucket in self._matching_buckets(
            self._usable_by_platform, request.symbolic
        ):
            self.machines_scanned += len(bucket)
            for record in bucket.values():
                if record.allocation is None:
                    continue
                if self._request_filter_ok(record, job, request):
                    result.append(record)
        return result

    def satisfiable_somewhere(
        self, symbolic: str, job: JobRecord
    ) -> bool:
        """Could any *reported* machine ever satisfy (symbolic, job RSL)?

        The best-case feasibility check behind denial decisions: ignores
        console activity and allocation state, exactly like the seed's scan
        in ``_deny_if_unsatisfiable`` (core memoizes the result against
        :attr:`capability_version`)."""
        if not self.use_indexes:
            self.machines_scanned += len(self.machines)
            for record in self.machines.values():
                if not record.reported or record.host == job.home_host:
                    continue
                if record.borrowed_from is not None:
                    continue
                view = record.snapshot_view()
                if symbolic_matches(symbolic, view) and job.rsl.matches_machine(
                    view
                ):
                    return True
            return False
        for bucket in self._matching_buckets(
            self._reported_by_platform, symbolic
        ):
            self.machines_scanned += len(bucket)
            for record in bucket.values():
                if record.host == job.home_host:
                    continue
                if record.borrowed_from is not None:
                    continue
                if job.rsl.matches_machine(record.snapshot_view()):
                    return True
        return False

    def pending_sorted(self) -> List[PendingRequest]:
        """Service order: firm requests FIFO first, then elastic requests
        from the poorest job first (even partition among elastic jobs).

        The order is cached and only rebuilt when queue membership or a
        holding count changes (Python's stable sort keeps arrival-order
        ties exactly as the seed did)."""
        if not self.use_indexes:
            firm = [r for r in self.pending if r.firm]
            elastic = [r for r in self.pending if not r.firm]
            firm.sort(key=lambda r: (r.arrived_at, r.reqid))
            elastic.sort(
                key=lambda r: (
                    self.holding_count(r.jobid),
                    r.arrived_at,
                    r.reqid,
                )
            )
            return firm + elastic
        order = self._order_cache
        if order is None:
            firm = []
            elastic = []
            for request in self.pending:
                (firm if request.firm else elastic).append(request)
            firm.sort(key=lambda r: (r.arrived_at, r.reqid))
            elastic.sort(
                key=lambda r: (
                    self.holding_count(r.jobid),
                    r.arrived_at,
                    r.reqid,
                )
            )
            order = firm + elastic
            self._order_cache = order
        return order

    def dirty_pending_count(self) -> int:
        """How many pending requests are flagged for re-evaluation (the
        live ``stats`` view of scheduler backlog)."""
        if self._all_pending_dirty:
            return len(self.pending)
        return sum(1 for r in self.pending if r.dirty)

    def reported_count(self) -> int:
        """How many managed machines currently have a daemon report."""
        if not self.use_indexes:
            return sum(1 for m in self.machines.values() if m.reported)
        return len(self.machines) - self._unreported_count

    def drop_job_requests(self, jobid: int) -> None:
        """Forget every pending request of ``jobid`` (job finished)."""
        for request in [r for r in self.pending if r.jobid == jobid]:
            self.pending.remove(request)

    def summary(self) -> Dict[str, Any]:
        """Human-readable status (the ``rbstat`` view)."""
        return {
            "machines": {
                h: {
                    "allocated_to": (
                        m.allocation.jobid if m.allocation else None
                    ),
                    "state": (
                        m.allocation.state.value if m.allocation else "free"
                    ),
                    "console_active": m.console_active,
                    "load": m.cpu_load,
                }
                for h, m in sorted(self.machines.items())
            },
            "jobs": {
                j: {
                    "user": job.user,
                    "adaptive": job.adaptive,
                    "module": job.module,
                    "holdings": self.holding_count(j),
                    "done": job.done,
                }
                for j, job in sorted(self.jobs.items())
            },
            "pending": len(self.pending),
        }
