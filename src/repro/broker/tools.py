"""User-facing ResourceBroker command-line tools.

The paper (§4.1): "Users communicate with ResourceBroker to query machine
availability, to learn the status of queued jobs, to submit a job for
execution and specify its resource requirements."  Submission is the ``app``
program; these two cover the rest:

* ``rbstat`` — query the broker and write a human-readable status report to
  ``~/.rbstat`` (machine availability, job table, queue depth).  Exit 0 on
  success, 1 if the broker is unreachable.
* ``rbctl halt <jobid>`` — ask the broker to stop a job (delivered to the
  job's app, which uses the job's ``<module>_halt`` script when there is
  one).
* ``rbtrace`` — dump the run's span trees (``repro.obs``) to ``~/.rbtrace``.
* ``rbtop`` — dump the run's metrics registry to ``~/.rbtop``.
"""

from __future__ import annotations

from repro.broker import protocol
from repro.cluster import ports
from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost

#: Where rbstat drops its report (home-relative).
RBSTAT_FILE = "~/.rbstat"

#: Where rbtrace drops its span-tree outline (home-relative).
RBTRACE_FILE = "~/.rbtrace"

#: Where rbtop drops its metrics snapshot (home-relative).
RBTOP_FILE = "~/.rbtop"


def _broker_host(proc):
    return proc.environ.get("RB_BROKER_HOST")


def rbstat_main(proc):
    """``rbstat``: fetch and persist the broker's status summary.

    A down broker fails fast: the report file still gets written, with a
    clear one-line error in place of the summary, so a user staring at a
    stale ``~/.rbstat`` can tell "broker dead" from "nothing changed"."""
    host = _broker_host(proc)
    if host is None:
        return 1
    try:
        conn = yield proc.connect(host, ports.BROKER)
    except (ConnectionRefused, NoSuchHost):
        proc.write_file(RBSTAT_FILE, "error: broker unreachable\n")
        return 1
    conn.send(protocol.status_request())
    try:
        reply = yield conn.recv()
    except ConnectionClosed:
        proc.write_file(RBSTAT_FILE, "error: broker unreachable\n")
        return 1
    conn.close()
    if reply.get("type") != "status_reply":
        return 1
    proc.write_file(RBSTAT_FILE, format_status(reply["summary"]))
    return 0


def format_status(summary: dict) -> str:
    """Render the broker summary as the report rbstat writes."""
    lines = ["== machines =="]
    for host, info in summary.get("machines", {}).items():
        owner = "console-active" if info.get("console_active") else "idle-console"
        lines.append(
            f"{host}: allocated_to={info.get('allocated_to')} "
            f"state={info.get('state')} load={info.get('load')} {owner}"
        )
    lines.append("== jobs ==")
    for jobid, info in summary.get("jobs", {}).items():
        lines.append(
            f"job {jobid}: user={info.get('user')} "
            f"adaptive={info.get('adaptive')} module={info.get('module')} "
            f"holdings={info.get('holdings')} done={info.get('done')}"
        )
    lines.append(f"pending requests: {summary.get('pending', 0)}")
    return "\n".join(lines) + "\n"


def rbctl_main(proc):
    """``rbctl halt <jobid>``."""
    if len(proc.argv) < 3 or proc.argv[1] != "halt":
        return 1
    host = _broker_host(proc)
    if host is None:
        return 1
    try:
        jobid = int(proc.argv[2])
    except ValueError:
        return 1
    try:
        conn = yield proc.connect(host, ports.BROKER)
    except (ConnectionRefused, NoSuchHost):
        return 1
    conn.send(protocol.halt_job(jobid))
    try:
        reply = yield conn.recv()
    except ConnectionClosed:
        return 1
    conn.close()
    return 0 if reply.get("ok") else 1


def rbtrace_main(proc):
    """``rbtrace``: write the run's span trees to ``~/.rbtrace``.

    Reads the run-wide tracer directly (the simulation's observability
    plane is ambient, not a broker RPC) and renders every trace as an
    indented outline — the terminal analogue of opening the Chrome-trace
    export in Perfetto.
    """
    from repro.obs import format_trace, tracer_of

    yield proc.sleep(0)
    proc.write_file(RBTRACE_FILE, format_trace(tracer_of(proc)))
    return 0


def rbtop_main(proc):
    """``rbtop``: write a snapshot of the run's metrics to ``~/.rbtop``."""
    from repro.obs import metrics_of

    yield proc.sleep(0)
    proc.write_file(RBTOP_FILE, metrics_of(proc).render())
    return 0
