"""User-facing ResourceBroker command-line tools.

The paper (§4.1): "Users communicate with ResourceBroker to query machine
availability, to learn the status of queued jobs, to submit a job for
execution and specify its resource requirements."  Submission is the ``app``
program; these two cover the rest:

* ``rbstat`` — query the broker and write a human-readable status report to
  ``~/.rbstat`` (machine availability, job table, queue depth).  With
  ``--stats`` it asks for the live telemetry snapshot instead (queue
  depths, per-phase latency digests, warm-standby replication and fencing
  counters, the shard's federation block — owned/borrowed/loaned machine
  counts and cross-shard borrow traffic — and obs self-metering).  Exit 0
  on success, 1 if the broker is unreachable.
* ``rbctl halt <jobid>`` — ask the broker to stop a job (delivered to the
  job's app, which uses the job's ``<module>_halt`` script when there is
  one).
* ``rbtrace`` — dump the run's span trees (``repro.obs``) to ``~/.rbtrace``.
* ``rbtop`` — a live poller: with ``RB_BROKER_HOST`` set it fetches the
  broker's ``stats`` snapshot over the wire (``--polls``/``--interval``
  control the refresh loop) and writes each refresh to ``~/.rbtop``;
  without a broker in the environment it falls back to dumping the ambient
  metrics registry.

Report paths are overridable through the environment (``RB_STAT_FILE``,
``RB_TRACE_FILE``, ``RB_TOP_FILE``) so concurrent tools and tests need not
collide on one home-relative path.
"""

from __future__ import annotations

import os

from repro.broker import protocol
from repro.cluster import ports
from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost

#: Where rbstat drops its report (home-relative; ``RB_STAT_FILE`` overrides).
RBSTAT_FILE = "~/.rbstat"

#: Where rbtrace drops its outline (home-relative; ``RB_TRACE_FILE`` overrides).
RBTRACE_FILE = "~/.rbtrace"

#: Where rbtop drops its snapshot (home-relative; ``RB_TOP_FILE`` overrides).
RBTOP_FILE = "~/.rbtop"


def _broker_host(proc):
    return proc.environ.get("RB_BROKER_HOST")


def _report_path(proc, key: str, default: str) -> str:
    """The tool's output path: process environ, then host environ, then
    the home-relative default."""
    return proc.environ.get(key) or os.environ.get(key) or default


def rbstat_main(proc):
    """``rbstat [--stats]``: fetch and persist a broker report.

    The default report is the status summary (machine/job tables);
    ``--stats`` asks for the live telemetry snapshot instead.  A down
    broker fails fast: the report file still gets written, with a clear
    one-line error in place of the summary, so a user staring at a stale
    ``~/.rbstat`` can tell "broker dead" from "nothing changed"."""
    out = _report_path(proc, "RB_STAT_FILE", RBSTAT_FILE)
    want_stats = "--stats" in proc.argv[1:]
    host = _broker_host(proc)
    if host is None:
        return 1
    try:
        conn = yield proc.connect(host, ports.BROKER)
    except (ConnectionRefused, NoSuchHost):
        proc.write_file(out, "error: broker unreachable\n")
        return 1
    conn.send(
        protocol.stats_request() if want_stats else protocol.status_request()
    )
    try:
        reply = yield conn.recv()
    except ConnectionClosed:
        proc.write_file(out, "error: broker unreachable\n")
        return 1
    conn.close()
    if want_stats:
        if reply.get("type") != "stats_reply":
            return 1
        proc.write_file(out, format_stats(reply["stats"]))
        return 0
    if reply.get("type") != "status_reply":
        return 1
    proc.write_file(out, format_status(reply["summary"]))
    return 0


def format_status(summary: dict) -> str:
    """Render the broker summary as the report rbstat writes."""
    lines = ["== machines =="]
    for host, info in summary.get("machines", {}).items():
        owner = "console-active" if info.get("console_active") else "idle-console"
        lines.append(
            f"{host}: allocated_to={info.get('allocated_to')} "
            f"state={info.get('state')} load={info.get('load')} {owner}"
        )
    lines.append("== jobs ==")
    for jobid, info in summary.get("jobs", {}).items():
        lines.append(
            f"job {jobid}: user={info.get('user')} "
            f"adaptive={info.get('adaptive')} module={info.get('module')} "
            f"holdings={info.get('holdings')} done={info.get('done')}"
        )
    lines.append(f"pending requests: {summary.get('pending', 0)}")
    return "\n".join(lines) + "\n"


def _render_snapshot(snapshot: dict) -> str:
    """Render a metrics snapshot dict the way the registry renders itself."""
    lines = []
    for name, info in snapshot.items():
        if info["kind"] == "histogram":
            lines.append(
                f"{name}: n={info['count']} total={info['total']:.3f} "
                f"mean={info['mean']:.3f} p50={info['p50']:.3f} "
                f"p95={info['p95']:.3f}"
            )
        else:
            lines.append(f"{name}: {info['value']:g}")
    return "\n".join(lines)


def format_stats(stats: dict) -> str:
    """Render the broker's live telemetry snapshot as a report."""
    lines = [
        f"== broker stats @ t={stats.get('time', 0.0):.3f}s "
        f"(epoch {stats.get('epoch', 1)}) ==",
        (
            f"pending={stats.get('pending', 0)} "
            f"dirty={stats.get('dirty_pending', 0)} "
            f"machines={stats.get('machines_reported', 0)}/"
            f"{stats.get('machines', 0)} reported "
            f"leased={stats.get('leased', 0)} "
            f"reclaiming={stats.get('reclaiming', 0)}"
        ),
        (
            f"jobs={stats.get('jobs', 0)} done={stats.get('jobs_done', 0)} "
            f"grants={stats.get('grants', 0):g} "
            f"denials={stats.get('denials', 0):g} "
            f"revokes={stats.get('revokes', 0):g}"
        ),
        (
            f"leases: adopted={stats.get('leases_adopted', 0):g} "
            f"expired={stats.get('leases_expired', 0):g} "
            f"sessions resumed={stats.get('sessions_resumed', 0):g}"
        ),
        (
            f"scans/grant={stats.get('scans_per_grant', 0.0):.2f} "
            f"grant rate={stats.get('grant_rate', 0.0):.3f}/s"
        ),
    ]
    kernel = stats.get("kernel", {})
    if kernel:
        line = (
            f"kernel: lanes={kernel.get('lanes', 1)} "
            f"events={kernel.get('events_processed', 0)} "
            f"heap hwm={kernel.get('heap_high_water', 0)}"
        )
        if kernel.get("lanes", 1) > 1:
            line += (
                f" clock skew={kernel.get('lane_clock_skew', 0.0):.6f}s "
                f"window stalls={kernel.get('window_stalls', 0)}"
            )
        lines.append(line)
        for lane in kernel.get("lane_detail", []) if kernel.get("lanes", 1) > 1 else []:
            lines.append(
                f"  lane {lane['lane']}: processed={lane['processed']} "
                f"pending={lane['pending']} hwm={lane['heap_high_water']} "
                f"clock={lane['clock']:.3f} stalls={lane['window_stalls']}"
            )
    journal = stats.get("journal", {})
    if journal.get("enabled"):
        lines.append(
            f"journal: gen={journal.get('generation', 0)} "
            f"records={journal.get('records', 0)} "
            f"flushes={journal.get('flushes', 0)} "
            f"compactions={journal.get('compactions', 0)} "
            f"bytes={journal.get('total_bytes', 0)} "
            f"lag={journal.get('flush_lag', 0.0):.3f}s"
            + (" STALLED" if journal.get("stalled") else "")
        )
    replication = stats.get("replication", {})
    if replication.get("enabled"):
        lines.append(
            f"replication: stream={replication.get('stream', 0)} "
            f"flushed={replication.get('flushed_offset', 0)} "
            f"acked={replication.get('acked_offset', 0)} "
            f"lag={replication.get('lag_chars', 0)} "
            f"frames={replication.get('frames', 0):g} "
            f"snapshots={replication.get('snapshots', 0):g} "
            f"resends={replication.get('resends', 0):g}"
        )
    if "promotions" in replication:
        lines.append(
            f"fencing: promotions={replication.get('promotions', 0):g} "
            f"demotions={replication.get('demotions', 0):g} "
            f"rejections={replication.get('fencing_rejections', 0):g} "
            f"double_grants={replication.get('double_grants', 0):g}"
        )
    federation = stats.get("federation", {})
    if federation.get("enabled"):
        lines.append(
            f"federation: shard={federation.get('shard', 0)}/"
            f"{federation.get('shards', 1)} "
            f"owned={federation.get('owned_machines', 0)} "
            f"borrowed={federation.get('borrowed_machines', 0)} "
            f"loaned={federation.get('loaned_machines', 0)}"
        )
        lines.append(
            f"  borrows: forwards={federation.get('forwards', 0):g} "
            f"cross_grants={federation.get('cross_shard_grants', 0):g} "
            f"loans_out={federation.get('loans_out', 0):g} "
            f"refusals={federation.get('loan_refusals', 0):g} "
            f"recalls={federation.get('recalls', 0):g} "
            f"returns={federation.get('returns', 0):g}"
        )
        lines.append(
            f"  fencing: rejections={federation.get('fencing_rejections', 0):g} "
            f"double_grants={federation.get('double_grants', 0):g}"
        )
    recovery = stats.get("recovery", {})
    if recovery and any(recovery.values()):
        lines.append(
            f"recovery: journal={recovery.get('from_journal', 0):g} "
            f"rereg={recovery.get('from_reregistration', 0):g} "
            f"replayed={recovery.get('replayed_records', 0):g} "
            f"conflicts={recovery.get('conflicts', 0):g} "
            f"latency={recovery.get('latency_seconds', 0.0):.3f}s"
        )
    phases = stats.get("phases", {})
    if phases:
        lines.append("== phases ==")
        for phase, digest in phases.items():
            lines.append(
                f"{phase}: n={digest['count']} mean={digest['mean']:.3f} "
                f"p50={digest['p50']:.3f} p95={digest['p95']:.3f} "
                f"max={digest['max']:.3f}"
            )
    obs = stats.get("obs", {})
    if obs:
        tracer = obs.get("tracer", {})
        metrics = obs.get("metrics", {})
        lines.append("== obs ==")
        lines.append(
            f"tracer: sample={tracer.get('sample', 1.0):g} "
            f"started={tracer.get('spans_started', 0)} "
            f"kept={tracer.get('spans_kept', 0)} "
            f"sampled_out={tracer.get('spans_sampled_out', 0)}"
        )
        lines.append(
            f"metrics: mode={metrics.get('mode', 'exact')} "
            f"instruments={metrics.get('instruments', 0)} "
            f"updates={metrics.get('updates', 0)} "
            f"series_points={metrics.get('series_points', 0)}"
        )
    snapshot = stats.get("metrics", {})
    if snapshot:
        lines.append("== metrics ==")
        lines.append(_render_snapshot(snapshot))
    return "\n".join(lines) + "\n"


def rbctl_main(proc):
    """``rbctl halt <jobid>``."""
    if len(proc.argv) < 3 or proc.argv[1] != "halt":
        return 1
    host = _broker_host(proc)
    if host is None:
        return 1
    try:
        jobid = int(proc.argv[2])
    except ValueError:
        return 1
    try:
        conn = yield proc.connect(host, ports.BROKER)
    except (ConnectionRefused, NoSuchHost):
        return 1
    conn.send(protocol.halt_job(jobid))
    try:
        reply = yield conn.recv()
    except ConnectionClosed:
        return 1
    conn.close()
    return 0 if reply.get("ok") else 1


def rbtrace_main(proc):
    """``rbtrace``: write the run's span trees to ``~/.rbtrace``.

    Reads the run-wide tracer directly (the simulation's observability
    plane is ambient, not a broker RPC) and renders every trace as an
    indented outline — the terminal analogue of opening the Chrome-trace
    export in Perfetto.
    """
    from repro.obs import format_trace, tracer_of

    yield proc.sleep(0)
    out = _report_path(proc, "RB_TRACE_FILE", RBTRACE_FILE)
    proc.write_file(out, format_trace(tracer_of(proc)))
    return 0


def _rbtop_args(argv) -> tuple:
    """Parse ``rbtop``'s ``--polls N`` / ``--interval SEC`` flags."""
    polls, interval = 1, 2.0
    args = list(argv[1:])
    while args:
        flag = args.pop(0)
        if flag == "--polls" and args:
            try:
                polls = max(1, int(args.pop(0)))
            except ValueError:
                pass
        elif flag == "--interval" and args:
            try:
                interval = max(0.0, float(args.pop(0)))
            except ValueError:
                pass
    return polls, interval


def rbtop_main(proc):
    """``rbtop [--polls N] [--interval SEC]``: live broker telemetry.

    With ``RB_BROKER_HOST`` set this is a wire poller: each refresh asks
    the broker for its ``stats`` snapshot and overwrites the report file
    with the latest view — a terminal ``top`` over the allocation control
    plane.  Without a broker in the environment it degrades to a one-shot
    dump of the run's ambient metrics registry (the original behaviour,
    still what experiment post-mortems want)."""
    from repro.obs import metrics_of

    out = _report_path(proc, "RB_TOP_FILE", RBTOP_FILE)
    host = _broker_host(proc)
    if host is None:
        yield proc.sleep(0)
        proc.write_file(out, metrics_of(proc).render())
        return 0
    polls, interval = _rbtop_args(proc.argv)
    for poll in range(polls):
        if poll:
            yield proc.sleep(interval)
        try:
            conn = yield proc.connect(host, ports.BROKER)
        except (ConnectionRefused, NoSuchHost):
            proc.write_file(out, "error: broker unreachable\n")
            return 1
        conn.send(protocol.stats_request())
        try:
            reply = yield conn.recv()
        except ConnectionClosed:
            proc.write_file(out, "error: broker unreachable\n")
            return 1
        conn.close()
        if reply.get("type") != "stats_reply":
            return 1
        proc.write_file(out, format_stats(reply["stats"]))
    return 0
