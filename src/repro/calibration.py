"""Calibration constants for the simulated cluster.

Every latency in the simulator is defined here, together with the paper
measurement it is calibrated against.  The paper's testbed was sixteen 200 MHz
PentiumPro machines running RedHat 5.0 Linux on Fast Ethernet (paper §6); the
printed digits of its tables are partially corrupted in the available text, so
where a value is ambiguous we adopt the value stated in prose (e.g. "the
overhead associated with rsh' is approximately 0.3 seconds", "a reallocation
completes in approximately 1 second per machine") and note the assumption.

Changing a constant here moves the absolute numbers of every reproduced table
but must not change their *shape* (who wins, crossover positions, linearity);
the test suite pins the shapes, not the absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """Latency model of the simulated testbed (all values in seconds)."""

    #: One-way LAN message latency (Fast Ethernet, small control messages).
    network_latency: float = 0.0002

    #: TCP connect + rshd authentication handshake.
    rsh_connect: float = 0.13

    #: rshd fork/exec of the remote command.
    rshd_fork: float = 0.14

    #: Generic process exec overhead (load binary, runtime init).
    proc_startup: float = 0.02

    #: One-time cost of submitting a job through an ``app`` process: starting
    #: the app, registering the job with the broker, setting up the monitoring
    #: session.  Calibrated so Table 1's "rsh' n01 null" lands near 0.6 s
    #: against plain rsh's 0.3 s (paper: overhead "approximately 0.3 seconds").
    app_submit: float = 0.27

    #: Marginal cost of one rsh' invocation that passes a *real* host name
    #: through to the standard rsh.  Paper Table 3 prose: "less than 0.3
    #: milliseconds of overhead per machine" when machines are explicitly
    #: named.
    rshp_passthrough: float = 0.00022

    #: rsh' detecting a symbolic name and asking the app layer for a machine
    #: (two LAN round trips: rsh' <-> app <-> broker), excluding any
    #: reallocation the broker may have to perform first.
    rshp_symbolic_negotiation: float = 0.018

    #: Starting a subapp on the target machine (piggybacked on the redirected
    #: rsh; the subapp then fetches the real command from the app).
    subapp_startup: float = 0.03

    #: CPU seconds of the paper's ``loop`` micro-benchmark program ("a C
    #: program with a tight loop running in 6.5 seconds" — digit corrupted,
    #: Table 1 row "rsh n01 loop" reads 6.x; we adopt 6.5).
    loop_work: float = 6.5

    #: Per-machine monitoring daemon report interval.  Not printed in the
    #: paper; chosen so revocation latencies match the ~1 s reallocation.
    daemon_report_interval: float = 2.0

    #: Daemon boot time at broker startup.
    daemon_startup: float = 0.08

    #: Grace period between SIGTERM and SIGKILL when a subapp revokes a
    #: machine ("if the child does not terminate within a specified amount of
    #: time, the subapp terminates the child process").
    sigterm_grace: float = 5.0

    #: Time for an adaptive Calypso/PLinda worker to checkpoint its step and
    #: exit after SIGTERM.  Calibrated (with the control messages around it)
    #: so one reallocation — revoke, graceful worker shutdown, release,
    #: re-grant — lands near the paper's "approximately 1 second" (Table 2
    #: prose and Figure 7's per-machine slope alike).
    adaptive_shutdown: float = 0.95

    #: PVM slave daemon startup once the rsh reaches the target (pvmd init,
    #: master handshake, host table update).
    pvmd_slave_startup: float = 0.72

    #: PVM console startup/shutdown (used by the pvm_grow module, which opens
    #: a console, types "add <host>", and quits).  Together with the failed
    #: phase-I attempt this is what makes the per-host `anylinux` overhead
    #: land near the paper's ~1.2 s.
    pvm_console: float = 1.05

    #: Extra per-host cost of the pvm module path beyond an explicit-name
    #: add.  Paper: "approximately 1.2 seconds overhead for PVM".
    #: (This is an *emergent* number in the simulator: failed attempt +
    #: console open/add/quit; the constant here only documents the target.)
    pvm_anylinux_overhead_target: float = 1.2

    #: LAM daemon startup; LAM's lamgrow is a heavier protocol than PVM's
    #: console add (paper: "1.4 seconds for LAM programs").
    lamd_slave_startup: float = 0.80
    lam_console: float = 1.30
    lam_anylinux_overhead_target: float = 1.4

    #: Calypso worker process startup (worker registers with master).
    calypso_worker_startup: float = 0.06

    #: PLinda server/worker startup.
    plinda_worker_startup: float = 0.06

    #: Broker policy evaluation time per decision (in-memory table scan).
    broker_decision: float = 0.004

    #: How long the broker tolerates silence from a machine before declaring
    #: it dead and reclaiming its allocation.  Not in the paper (which never
    #: crashes a machine); must exceed the worst-case healthy gap between
    #: daemon reports — a killed daemon is respawned within ~one report
    #: interval plus rsh startup (~3 s of silence) — with margin, while
    #: staying well under a crash-with-reboot outage (~8 s) so real failures
    #: are detected before the machine returns.
    liveness_deadline: float = 6.5

    #: Bounded retry-with-backoff for boot-time connects (rbdaemon → broker,
    #: app → broker): attempt count and exponential delay base/cap.
    connect_retry_attempts: int = 5
    connect_retry_base: float = 0.2
    connect_retry_cap: float = 2.0

    #: How long a module job's intercepted rsh' waits for a synchronous
    #: grant before reporting failure and leaving the request queued for an
    #: asynchronous phase-II grow ("as machines become available,
    #: ResourceBroker is able to asynchronously initiate the second phase").
    module_request_timeout: float = 2.5

    #: Every Nth daemon report is a full snapshot even when the machine's
    #: change probe saw nothing move (reports in between are compact delta
    #: beacons that only renew liveness and leases).  Bounds how long a
    #: broker whose record went stale through *lost* reports (it resets
    #: records on connection EOF, faults can drop reports in transit) waits
    #: for re-syncable state: at most ``daemon_full_report_every *
    #: daemon_report_interval`` seconds.
    daemon_full_report_every: int = 5

    #: Lease TTL on every grant.  Daemons piggyback renewal on their report
    #: (one report lists the jobids with live subapps on the machine), so a
    #: healthy holder renews ~``lease_ttl / daemon_report_interval`` times
    #: per TTL; a grant whose holder silently vanished stops renewing and the
    #: machine becomes reclaimable within one TTL even if the holder's app
    #: connection never EOFs.  Must comfortably exceed the grant-to-subapp
    #: window (rsh chain + module grow, a few seconds worst case).
    lease_ttl: float = 12.0

    #: Grace the broker gives an orphaned app session (connection EOF while
    #: the job is unfinished) to reconnect and resume before the job is
    #: declared gone and its holdings freed.  Long enough for an app to
    #: notice the EOF and re-dial a live broker; short enough that a truly
    #: dead app's machines come back quickly.
    session_resume_grace: float = 6.0

    #: Connect attempts an app makes when resuming its broker session after
    #: an EOF (capped backoff, ``connect_retry_base``/``cap``); sized to ride
    #: out a broker crash-plus-restart window (~10 s of refused connects).
    broker_resume_attempts: int = 10

    #: After a broker restart, how long the fresh incarnation trusts daemon
    #: inventories enough to adopt allocations from them.  Outside this
    #: window a report listing an unknown lease is stale noise, not state to
    #: reconstruct (transient mistakes self-heal via lease expiry anyway).
    broker_recovery_window: float = 10.0

    #: Deadline on one external-module script invocation (``pvm_grow`` etc).
    #: A wedged user script must never stall the app's module runner — and
    #: through it the broker's two-phase grow — forever.
    module_script_deadline: float = 8.0

    #: Retries after a wedged module script before falling back to deny
    #: (grow: give the machine back; shrink: blunt subapp revoke).
    module_script_retries: int = 1

    #: How often the durable broker's flusher thread drains coalesced
    #: journal notes (machine views, lease renewals) to disk.  Structural
    #: ops (grants, releases, queue changes) are flushed write-through, so
    #: this bounds only the staleness of the coalesced noise — and the most
    #: a crash can lose of it.
    journal_flush_interval: float = 0.5

    #: WAL size (characters) that triggers a compacting snapshot.  Small
    #: enough that recovery replay stays near-instant and disk stays flat
    #: under sustained load; large enough that steady-state churn does not
    #: snapshot every few seconds.
    journal_compact_bytes: int = 65536

    #: Interval between heartbeats the primary broker sends on the WAL-ship
    #: connection.  Several heartbeats fit inside the promotion deadline so a
    #: single dropped message never triggers a failover.
    standby_heartbeat_interval: float = 0.5

    #: Silence (no heartbeat, no ship frame, redials refused) after which the
    #: warm standby declares the primary dead and promotes itself.  Strictly
    #: below the restart+recover path (crash detection plus the fault plan's
    #: ~4 s restart delay plus replay) — that gap is the point of the warm
    #: standby, and ``bench_failover`` pins it.
    standby_promotion_deadline: float = 2.5

    #: Bound (characters) on shipped-but-unacknowledged WAL data in flight to
    #: the standby.  The primary stops shipping (retaining the tail for
    #: resend) once this much is outstanding, so a slow or partitioned
    #: standby backpressures the ship channel instead of growing it.
    ship_window_chars: int = 8192

    #: Replication lag (characters of flushed-but-unacked WAL) beyond which
    #: the health monitor flags ``health.replication_lag``.  One full ship
    #: window of lag means the channel is stalled, not merely busy.
    replication_lag_chars: int = 8192

    #: Deadline on one cross-shard borrow RPC (connect + request + reply).
    #: Partitioned sends drop silently on this LAN, so the borrower arms a
    #: timer around every sibling dial; past it the sibling counts as
    #: unreachable for this round and the borrower moves on.
    federation_rpc_timeout: float = 3.0

    #: Pause between borrow rounds while a request stays locally
    #: unsatisfiable and no sibling could lend.  Roughly one daemon report
    #: interval: the soonest new capacity (a release, a rejoin) could show
    #: up on either side of the federation.
    federation_borrow_retry: float = 2.0


#: The default calibration used across experiments, matching the paper's
#: testbed as described above.
DEFAULT = Calibration()
