"""The simulated networked cluster.

Provides the LAN (:mod:`repro.cluster.network`), a convenience builder that
wires machines, system programs and daemons together
(:mod:`repro.cluster.builder`) and the owner-activity generator that drives
private-machine revocation (:mod:`repro.cluster.users`).
"""

from repro.cluster.builder import Cluster, ClusterSpec, MachineSpec
from repro.cluster.network import Connection, Listener, Network
from repro.cluster.users import OwnerActivity, OwnerSession

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Connection",
    "Listener",
    "MachineSpec",
    "Network",
    "OwnerActivity",
    "OwnerSession",
]
