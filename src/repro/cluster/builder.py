"""Cluster construction: machines, system programs, daemons, users.

:class:`Cluster` is the top-level convenience object used by tests,
examples and experiments: it creates the environment and network, builds the
machines from a :class:`ClusterSpec`, installs the commodity system programs
(rsh/rshd, the workload binaries, the parallel programming systems) on every
machine and boots an ``rshd`` per machine.

The ResourceBroker itself is *optional* — the paper stresses that the service
is unobtrusive ("the use of the resource manager is optional", §2).  A cluster
without a broker behaves exactly like a plain 1990s Unix network; calling
:meth:`Cluster.start_broker` overlays the broker's program directory on each
machine's PATH (the interception mechanism) and boots the broker process and
its per-machine daemons.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.calibration import DEFAULT, Calibration
from repro.cluster.network import Network
from repro.cluster.users import OwnerActivity
from repro.os.machine import Machine, MachineKind
from repro.os.process import OSProcess
from repro.os.programs import ProgramDirectory
from repro.rsh.client import install_rsh
from repro.sim.environment import Environment
from repro.workloads.programs import install_workloads


@dataclass
class MachineSpec:
    """Declarative description of one machine."""

    name: str
    arch: str = "i686"
    os_name: str = "linux"
    cpus: int = 1
    speed: float = 1.0
    private_owner: Optional[str] = None  # None => public machine

    @property
    def kind(self) -> MachineKind:
        return (
            MachineKind.PRIVATE
            if self.private_owner is not None
            else MachineKind.PUBLIC
        )


@dataclass
class ClusterSpec:
    """Declarative description of a whole cluster."""

    machines: List[MachineSpec] = field(default_factory=list)
    seed: int = 0
    calibration: Calibration = DEFAULT
    #: Event-lane count for the partitioned kernel (DESIGN.md §15).
    #: 0 (the default) reads ``RB_KERNEL_LANES`` from the environment so
    #: any experiment can be re-run partitioned without a signature change;
    #: the result is byte-identical either way.
    lanes: int = 0

    def lane_count(self) -> int:
        """Resolved lane count (spec value, else ``RB_KERNEL_LANES``, else 1)."""
        if self.lanes:
            return self.lanes
        return int(os.environ.get("RB_KERNEL_LANES", "1") or 1)

    @classmethod
    def uniform(
        cls,
        count: int,
        prefix: str = "n",
        seed: int = 0,
        calibration: Calibration = DEFAULT,
        lanes: int = 0,
        **machine_kwargs,
    ) -> "ClusterSpec":
        """``count`` identical public machines named n00, n01, ..."""
        machines = [
            MachineSpec(name=f"{prefix}{i:02d}", **machine_kwargs)
            for i in range(count)
        ]
        return cls(
            machines=machines, seed=seed, calibration=calibration, lanes=lanes
        )


class Cluster:
    """A booted simulated network (see module docstring)."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        lanes = spec.lane_count()
        self.env = Environment(seed=spec.seed, lanes=lanes)
        self.network = Network(self.env, calibration=spec.calibration)
        self.calibration = spec.calibration
        self.system_bin = ProgramDirectory("system")
        install_rsh(self.system_bin)
        install_workloads(self.system_bin)
        self._install_parallel_systems()

        self.machines: Dict[str, Machine] = {}
        self.rshds: Dict[str, OSProcess] = {}
        self.owner_activities: Dict[str, OwnerActivity] = {}
        count = len(spec.machines)
        for index, mspec in enumerate(spec.machines):
            machine = Machine(
                self.env,
                mspec.name,
                arch=mspec.arch,
                os_name=mspec.os_name,
                cpus=mspec.cpus,
                speed=mspec.speed,
                kind=mspec.kind,
                owner=mspec.private_owner,
            )
            # Contiguous partition of the machine list across lanes; the
            # first machine (n00, the default broker host) anchors lane 0.
            machine.lane = index * lanes // count
            machine.path = [self.system_bin]
            self.network.add_machine(machine)
            self.machines[machine.name] = machine
            self.rshds[machine.name] = OSProcess(
                machine, ["rshd"], uid="root", startup_delay=0.0
            )
        self.broker = None  # set by start_broker()
        self.federation = None  # set by start_federation()

    def _install_parallel_systems(self) -> None:
        # Imported lazily: the systems packages use the OS layer defined
        # alongside this module.
        from repro.systems import install_all_systems

        install_all_systems(self.system_bin)

    # -- convenience ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.env.now

    def machine(self, name: str) -> Machine:
        """The machine named ``name``."""
        return self.machines[name]

    def machine_names(self) -> List[str]:
        """Machine names in specification order."""
        return [m.name for m in self.spec.machines]

    def run_command(
        self,
        host: str,
        argv: Sequence[str],
        uid: str = "user",
        environ: Optional[Dict[str, str]] = None,
    ) -> OSProcess:
        """Start ``argv`` as a fresh login process of ``uid`` on ``host``.

        This models a user typing the command at a shell prompt; the returned
        process's ``terminated`` event yields the exit code.
        """
        machine = self.machines[host]
        env_vars = {"HOME": f"/home/{uid}"}
        if environ:
            env_vars.update(environ)
        return OSProcess(machine, list(argv), uid=uid, environ=env_vars)

    def crash_machine(
        self, host: str, reboot_after: Optional[float] = 5.0
    ) -> None:
        """Power-cycle ``host``: every process dies instantly; after
        ``reboot_after`` seconds the machine comes back up with a fresh
        rshd (and nothing else — guests must be restarted by their owners,
        the broker's daemon by the broker's keeper loop).  With
        ``reboot_after=None`` the machine stays down until
        :meth:`boot_machine`.  A no-op on a machine that is already down.
        """
        machine = self.machines[host]
        if not machine.up:
            return
        env = self.env
        # Crash fallout (process aborts, EOF timers) and the reboot timer
        # belong in the victim's lane, not whichever lane the caller (the
        # fault injector, a test) happened to be dispatched from.
        token = env.lane_scope(machine.lane) if env._nlanes > 1 else None
        try:
            machine.crash()
            if reboot_after is None:
                return

            def reboot():
                yield env.timeout(reboot_after)
                self.boot_machine(host)

            env.process(reboot(), name=f"reboot-{host}")
        finally:
            if token is not None:
                env.lane_restore(token)

    def boot_machine(self, host: str) -> None:
        """Bring a crashed ``host`` back up with a fresh rshd."""
        machine = self.machines[host]
        if machine.up:
            return
        machine.boot()
        self.rshds[host] = OSProcess(
            machine, ["rshd"], uid="root", startup_delay=0.0
        )

    def add_owner_activity(self, host: str, **kwargs) -> OwnerActivity:
        """Attach an owner-activity generator to a private machine."""
        activity = OwnerActivity(self.machines[host], **kwargs)
        self.owner_activities[host] = activity
        return activity

    def start_broker(
        self,
        policy=None,
        managed_hosts=None,
        broker_host=None,
        scheduler_mode=None,
        journal=None,
        standby_host=None,
        event_log_cap=None,
        retain_done_jobs=True,
    ):
        """Boot ResourceBroker over this cluster; see
        :class:`repro.broker.service.BrokerService`.

        ``journal`` turns on the durable write-ahead journal (None reads
        ``RB_JOURNAL``); ``standby_host`` places a warm standby there (WAL
        shipping + fenced failover, requires the journal); ``event_log_cap``
        and ``retain_done_jobs=False`` bound the service's memory for
        service-mode soaks."""
        from repro.broker.service import BrokerService

        self.broker = BrokerService(
            self,
            policy=policy,
            managed_hosts=managed_hosts,
            broker_host=broker_host,
            scheduler_mode=scheduler_mode,
            journal=journal,
            standby_host=standby_host,
            event_log_cap=event_log_cap,
            retain_done_jobs=retain_done_jobs,
        )
        return self.broker

    def start_federation(
        self,
        shards: int,
        policy_factory=None,
        managed_hosts=None,
        scheduler_mode=None,
        journal=None,
        event_log_cap=None,
        retain_done_jobs=True,
    ):
        """Boot a federated broker control plane over this cluster; see
        :class:`repro.broker.federation.FederationService`.

        The machines partition into ``shards`` contiguous slices (aligned
        with the kernel's event lanes when ``shards == lanes``), each run
        by its own broker; shards borrow machines from each other through
        lease migration.  ``shards=1`` degenerates to a single broker with
        every federated behaviour switched off."""
        from repro.broker.federation import FederationService

        federation = FederationService(
            self,
            shards=shards,
            policy_factory=policy_factory,
            managed_hosts=managed_hosts,
            scheduler_mode=scheduler_mode,
            journal=journal,
            event_log_cap=event_log_cap,
            retain_done_jobs=retain_done_jobs,
        )
        if shards == 1:
            # The degenerate federation *is* a broker; keep the standalone
            # handle pointing at it so tools and tests need no special case.
            self.broker = federation.services[0]
        return federation

    def assert_no_crashes(self) -> None:
        """Raise if any simulated process died with an unhandled exception."""
        if self.network.crashed:
            details = "\n".join(
                f"  {p!r}: {p.exception!r}" for p in self.network.crashed
            )
            raise AssertionError(f"crashed processes:\n{details}")

    def __repr__(self) -> str:
        return (
            f"<Cluster {len(self.machines)} machines "
            f"broker={'yes' if self.broker else 'no'} t={self.env.now:.3f}>"
        )
