"""The simulated LAN: name resolution, listeners, reliable connections.

Connections are message-oriented (each ``send`` delivers one Python object
after the calibrated network latency), reliable and ordered — the properties
the real system gets from TCP on a quiet Fast Ethernet.  Closing an endpoint
delivers EOF to the peer; receives after EOF fail with
:class:`~repro.os.errors.ConnectionClosed`.

That reliability is an invariant of the *healthy* network only.  A run may
attach a :class:`~repro.faults.netfaults.NetworkFaults` model (``faults``
attribute), after which sends can be dropped (partitions, lossy windows) and
latency can spike; fault-induced losses are always visible in the metrics
registry (``net.partition_drops``, ``net.fault_drops``), never silent.  EOF
delivery is exempt from fault drops — a closed endpoint always surfaces to
its peer, the way a broken TCP connection eventually surfaces as a reset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.calibration import DEFAULT, Calibration
from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.sim.events import Event, Timeout
from repro.sim.stores import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.os.machine import Machine
    from repro.os.process import OSProcess
    from repro.sim.environment import Environment


class _EOF:
    """Sentinel delivered on close."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<EOF>"


EOF = _EOF()


class _Inbox(Store):
    """A connection's receive queue.

    Getter matching translates a buffered :data:`EOF` sentinel into a
    :class:`ConnectionClosed` failure in place (the sentinel stays buffered
    so every later receive fails too).  That lets :meth:`Connection.recv`
    hand out the store getter itself instead of wrapping it in a shim event
    — one heap event per received message instead of two, on the hottest
    message path in the system (daemon status reports).
    """

    __slots__ = ("_conn",)

    def __init__(self, env: "Environment", conn: "Connection") -> None:
        super().__init__(env)
        self._conn = conn

    def _match_getters(self) -> bool:
        matched = False
        conn = self._conn
        items = self.items
        getters = self._getters
        while getters and items:
            if isinstance(items[0], _EOF):
                conn.closed_remote = True
                getters.popleft().fail(
                    ConnectionClosed(f"EOF on {conn.label}")
                )
            else:
                getters.popleft().succeed(items.popleft())
            matched = True
        return matched


class Connection:
    """One endpoint of a bidirectional message connection."""

    __slots__ = (
        "network",
        "env",
        "label",
        "host",
        "lane",
        "_inbox",
        "peer",
        "closed_local",
        "closed_remote",
    )

    def __init__(
        self, network: "Network", label: str, host: Optional[str] = None
    ) -> None:
        self.network = network
        self.env = network.env
        self.label = label
        #: Name of the machine this endpoint lives on (used by the fault
        #: model to decide whether a partition cuts this connection).
        self.host = host
        #: Event lane of the hosting machine: messages *to* this endpoint
        #: are scheduled into its lane (the cross-lane envelope of the
        #: partitioned kernel; a no-op alias of lane 0 when serial).
        self.lane = network.lane_of(host)
        self._inbox: Store = _Inbox(self.env, self)
        self.peer: Optional["Connection"] = None
        self.closed_local = False
        self.closed_remote = False

    # -- data transfer -----------------------------------------------------

    def send(self, message: object) -> None:
        """Deliver ``message`` to the peer after one network latency.

        Raises :class:`ConnectionClosed` if this endpoint already closed;
        sends into a remotely-closed connection are dropped (the real-world
        analogue — a TCP RST — would surface asynchronously, and no protocol
        in this codebase depends on it) but counted in ``net.dropped_sends``
        so lost traffic is observable.  An attached fault model may drop the
        message (partition, lossy window) or stretch its latency.
        """
        if self.closed_local:
            raise ConnectionClosed(f"send on closed connection {self.label}")
        peer = self.peer
        assert peer is not None, "send before connection establishment"
        latency = self.network.latency
        faults = self.network.faults
        if faults is not None:
            if faults.partitioned(self.host, peer.host):
                self.network.metrics.counter("net.partition_drops").inc()
                return
            if faults.should_drop(self.host, peer.host, message):
                self.network.metrics.counter("net.fault_drops").inc()
                return
            latency = faults.latency(latency)
        # The message rides the timeout as its value: no per-send closure.
        # Under a partitioned kernel the delivery timer is scheduled into
        # the *receiver's* lane — the in-flight message is the cross-lane
        # envelope, and its dispatch (plus everything the receiver does in
        # response) then batches with the receiver's other events.
        env = self.env
        if env._nlanes > 1:
            token = env.lane_scope(peer.lane)
            timer = Timeout(env, latency, message)
            env.lane_restore(token)
        else:
            timer = Timeout(env, latency, message)
        timer.callbacks.append(peer._deliver_cb)

    def _deliver_cb(self, ev: Event) -> None:
        self._deliver(ev._value)

    def _deliver(self, message: object) -> None:
        if self.closed_local:
            # The in-flight message raced the local close: it vanishes, as
            # with a TCP RST — but never invisibly.
            self.network.metrics.counter("net.dropped_sends").inc()
        else:
            self._inbox.put_nowait(message)

    def recv(self) -> Event:
        """Event yielding the next message; fails with ConnectionClosed on EOF.

        The returned event is the inbox getter itself (see :class:`_Inbox`):
        EOF translation happens at match time, so no shim event or closure
        is allocated per message.
        """
        get = self._inbox.get()
        get.defuse()  # an orphaned reader is not a simulation error
        return get

    def close(self) -> None:
        """Half-close from this side; the peer sees EOF after latency."""
        if self.closed_local:
            return
        self.closed_local = True
        peer = self.peer
        if peer is not None:
            env = self.env
            if env._nlanes > 1:
                token = env.lane_scope(peer.lane)
                timer = env.timeout(self.network.latency)
                env.lane_restore(token)
            else:
                timer = env.timeout(self.network.latency)
            timer.add_callback(lambda _ev: peer._deliver_eof())

    def _deliver_eof(self) -> None:
        self._inbox.put_nowait(EOF)

    def __repr__(self) -> str:
        state = "closed" if self.closed_local else "open"
        return f"<Connection {self.label} {state}>"


class Listener:
    """A listening socket bound to (machine, port)."""

    def __init__(
        self,
        network: "Network",
        machine: "Machine",
        port: int,
        owner: Optional["OSProcess"] = None,
    ) -> None:
        self.network = network
        self.machine = machine
        self.port = port
        self.owner = owner
        self._backlog: Store = Store(network.env)
        self.closed = False

    def accept(self) -> Event:
        """Event yielding the server-side :class:`Connection` of the next
        incoming connection; fails with ConnectionClosed once the listener
        is closed and drained."""
        result = Event(self.network.env)
        result.defuse()  # an orphaned acceptor is not a simulation error
        if self.closed and not len(self._backlog):
            result.fail(
                ConnectionClosed(f"accept on closed {self.machine.name}:{self.port}")
            )
            return result
        get = self._backlog.get()

        def _complete(ev: Event) -> None:
            item = ev.value
            if isinstance(item, _EOF):
                self._backlog.put_nowait(item)
                result.fail(
                    ConnectionClosed(
                        f"listener {self.machine.name}:{self.port} closed"
                    )
                )
            else:
                if self.owner is not None:
                    self.owner.adopt_connection(item)
                result.succeed(item)

        get.add_callback(_complete)
        return result

    def close(self) -> None:
        """Unbind the port; queued-but-unaccepted connections see EOF."""
        if self.closed:
            return
        self.closed = True
        self.network.unbind(self.machine, self.port, self)
        for conn in list(self._backlog.items):
            if isinstance(conn, Connection):
                conn.close()
        self._backlog.put_nowait(EOF)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "listening"
        return f"<Listener {self.machine.name}:{self.port} {state}>"


class Network:
    """All machines on one LAN plus the latency model.

    Also the run-wide blackboard for diagnostics: crashed processes are
    recorded here so experiments can assert clean execution, and an optional
    trace callback observes every connection establishment.
    """

    def __init__(
        self,
        env: "Environment",
        calibration: Calibration = DEFAULT,
    ) -> None:
        from repro.obs import MetricsRegistry, Tracer

        self.env = env
        self.calibration = calibration
        self.latency = calibration.network_latency
        self.machines: Dict[str, "Machine"] = {}
        self._ports: Dict[Tuple[str, int], Listener] = {}
        self.crashed: List["OSProcess"] = []
        self.trace: Optional[Callable[[str], None]] = None
        self._ephemeral: Dict[str, int] = {}
        #: Optional pluggable fault model (see :mod:`repro.faults`): consulted
        #: by every send and connect once attached.  None = healthy network.
        self.faults = None
        #: Client-side endpoint of every connection ever established (each
        #: knows its peer); pruned of fully-closed pairs on each sever sweep
        #: and — amortized — as new connections are established, so a
        #: long-running service does not retain every socket it ever opened.
        self._connections: List[Connection] = []
        self._prune_connections_at = 1024
        #: Run-wide observability: the span tracer and metrics registry every
        #: program body reaches via ``repro.obs.tracer_of`` / ``metrics_of``.
        self.tracer = Tracer(env)
        self.metrics = MetricsRegistry(env)

    def ephemeral_port(self, machine: "Machine") -> int:
        """A fresh high port on ``machine`` (never reused within a run)."""
        port = self._ephemeral.get(machine.name, 40000)
        self._ephemeral[machine.name] = port + 1
        return port

    # -- machines --------------------------------------------------------

    def add_machine(self, machine: "Machine") -> "Machine":
        """Attach ``machine`` to this LAN (names must be unique)."""
        if machine.name in self.machines:
            raise ValueError(f"duplicate machine name {machine.name!r}")
        machine.network = self
        self.machines[machine.name] = machine
        return machine

    def lookup(self, host: str) -> "Machine":
        """Resolve ``host`` to a machine or raise :class:`NoSuchHost`."""
        try:
            return self.machines[host]
        except KeyError:
            raise NoSuchHost(host) from None

    def lane_of(self, host: Optional[str]) -> int:
        """Event lane of ``host``'s machine (lane 0 for unknown hosts)."""
        machine = self.machines.get(host) if host is not None else None
        return 0 if machine is None else machine.lane

    def record_crash(self, proc: "OSProcess") -> None:
        """Remember a process that died with an unhandled exception."""
        self.crashed.append(proc)

    # -- sockets ---------------------------------------------------------

    def listen(self, proc: "OSProcess", port: int) -> Listener:
        """Bind a listener to (proc's machine, port) for ``proc``."""
        key = (proc.machine.name, port)
        if key in self._ports:
            raise ConnectionRefused(f"port {port} on {proc.machine.name} in use")
        listener = Listener(self, proc.machine, port, owner=proc)
        self._ports[key] = listener
        return listener

    def unbind(self, machine: "Machine", port: int, listener: Listener) -> None:
        """Free a port if ``listener`` still owns it."""
        key = (machine.name, port)
        if self._ports.get(key) is listener:
            del self._ports[key]

    def connect(self, proc: "OSProcess", host: str, port: int) -> Event:
        """Event yielding the client-side endpoint after one latency."""
        env = self.env
        result = Event(env)
        client_lane = proc.machine.lane

        def _trigger(trigger, *args) -> None:
            # The connect outcome resumes the *client*; schedule it in the
            # client's lane even though establishment runs in the target's.
            if env._nlanes > 1:
                token = env.lane_scope(client_lane)
                trigger(*args)
                env.lane_restore(token)
            else:
                trigger(*args)

        def _establish(_ev: Event) -> None:
            if host not in self.machines:
                _trigger(result.fail, NoSuchHost(host))
                return
            target = self.machines[host]
            if not target.up:
                _trigger(result.fail, ConnectionRefused(f"{host} is down"))
                return
            if self.faults is not None and self.faults.partitioned(
                proc.machine.name, host
            ):
                self.metrics.counter("net.partition_refused").inc()
                _trigger(
                    result.fail,
                    ConnectionRefused(f"{host} unreachable (partition)"),
                )
                return
            listener = self._ports.get((host, port))
            if listener is None or listener.closed:
                _trigger(result.fail, ConnectionRefused(f"{host}:{port}"))
                return
            label = f"{proc.machine.name}:{proc.pid}->{host}:{port}"
            client = Connection(self, label, host=proc.machine.name)
            server = Connection(self, label + " (server)", host=host)
            client.peer = server
            server.peer = client
            self._connections.append(client)
            if len(self._connections) >= self._prune_connections_at:
                self._prune_connections()
            proc.adopt_connection(client)
            listener._backlog.put_nowait(server)
            if self.trace is not None:
                self.trace(f"connect {label} at {env.now:.6f}")
            _trigger(result.succeed, client)

        # The connection request "travels" to the target host: establishment
        # reads the target's listener/up state, so its timer lives in the
        # target machine's lane.
        if env._nlanes > 1:
            token = env.lane_scope(self.lane_of(host))
            timer = env.timeout(self.latency)
            env.lane_restore(token)
        else:
            timer = env.timeout(self.latency)
        timer.add_callback(_establish)
        return result

    def _prune_connections(self) -> None:
        """Forget fully-closed connection pairs (amortized O(1) per connect).

        The doubling threshold keeps the scan linear in *live* connections:
        a steady-state service with N live sockets rescans only after ~N new
        establishments, while the list itself stays O(N) instead of growing
        with every connection the run ever made."""
        self._connections = [
            conn
            for conn in self._connections
            if not (
                conn.closed_local
                and (conn.peer is None or conn.peer.closed_local)
            )
        ]
        self._prune_connections_at = max(1024, 2 * len(self._connections))

    def sever(self, predicate: Callable[[Optional[str], Optional[str]], bool]) -> int:
        """Close both ends of every live connection matching ``predicate``.

        ``predicate(host_a, host_b)`` receives the endpoint machine names.
        Used by the fault injector at partition onset: a cut LAN eventually
        surfaces to both peers as a broken connection (compressed here into
        an immediate EOF), which is what lets every recovery protocol in the
        stack run instead of waiting on messages that can never arrive.
        Returns the number of connections severed.
        """
        severed = 0
        live: List[Connection] = []
        for conn in self._connections:
            peer = conn.peer
            if conn.closed_local and (peer is None or peer.closed_local):
                continue  # both ends gone: forget the pair
            live.append(conn)
            if peer is not None and predicate(conn.host, peer.host):
                conn.close()
                peer.close()
                severed += 1
        self._connections = live
        if severed:
            self.metrics.counter("net.severed_connections").inc(severed)
        return severed

    def __repr__(self) -> str:
        return (
            f"<Network {len(self.machines)} machines, "
            f"{len(self._ports)} open ports>"
        )
