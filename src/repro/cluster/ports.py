"""Well-known port numbers on the simulated LAN."""

#: The remote-shell daemon (historically TCP 514).
RSHD = 514

#: The network-wide ResourceBroker process.
BROKER = 3000

#: The WAL-shipping listener inside the primary broker; the warm standby
#: dials it to pull journal frames and heartbeats.
SHIP = 3001

#: The federation listener inside a broker shard; sibling shards dial it to
#: borrow machines (one request/reply per transient connection).
FEDERATION = 3002

#: First ephemeral port; app/subapp/system daemons allocate upwards per host.
EPHEMERAL_BASE = 40000
