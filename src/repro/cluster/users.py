"""Simulated machine owners.

Private machines belong to individuals; the paper's default policy gives the
owner absolute priority ("adaptive jobs running on a privately owned machine
can be deallocated once the owner of the machine returns", §2).  The broker
learns of the owner's return from the per-machine daemon's keyboard/mouse
status report.

:class:`OwnerActivity` drives that signal: each owner alternates *away* and
*at-console* periods drawn from exponential distributions on a named RNG
stream, toggling :attr:`Machine.console_active` and the login set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.os.machine import Machine
    from repro.sim.environment import Environment


@dataclass
class OwnerSession:
    """One recorded at-console interval (for test assertions and metrics)."""

    host: str
    start: float
    end: Optional[float] = None


class OwnerActivity:
    """Alternating away/present behaviour of one machine's owner.

    Parameters
    ----------
    machine:
        The (private) machine whose console the owner uses.
    mean_away, mean_present:
        Means of the exponential away/present period lengths (seconds).
    initially_present:
        Whether the owner starts at the console.
    """

    def __init__(
        self,
        machine: "Machine",
        mean_away: float = 1800.0,
        mean_present: float = 600.0,
        initially_present: bool = False,
    ) -> None:
        if machine.owner is None:
            raise ValueError(f"machine {machine.name!r} has no owner")
        self.machine = machine
        self.env: "Environment" = machine.env
        self.mean_away = mean_away
        self.mean_present = mean_present
        self.initially_present = initially_present
        self.sessions: List[OwnerSession] = []
        if initially_present:
            # Applied eagerly: the machine must look occupied from the very
            # first instant, not from the generator's first resumption.
            self._arrive()
        self._proc = self.env.process(
            self._run(), name=f"owner@{machine.name}"
        )

    def _rng(self):
        return self.env.rng.stream(f"owner:{self.machine.name}")

    def _run(self):
        rng = self._rng()
        present = self.initially_present
        while True:
            if present:
                yield self.env.timeout(float(rng.exponential(self.mean_present)))
                self._leave()
                present = False
            else:
                yield self.env.timeout(float(rng.exponential(self.mean_away)))
                self._arrive()
                present = True

    def _arrive(self) -> None:
        machine = self.machine
        machine.console_active = True
        machine.logged_in.add(machine.owner)
        self.sessions.append(OwnerSession(machine.name, self.env.now))

    def _leave(self) -> None:
        machine = self.machine
        machine.console_active = False
        machine.logged_in.discard(machine.owner)
        if self.sessions and self.sessions[-1].end is None:
            self.sessions[-1].end = self.env.now

    def stop(self) -> None:
        """Halt the activity generator (owner state is left as-is)."""
        if self._proc.is_alive:
            self._proc.abort()

    def __repr__(self) -> str:
        return (
            f"<OwnerActivity {self.machine.owner}@{self.machine.name} "
            f"{'present' if self.machine.console_active else 'away'}>"
        )
