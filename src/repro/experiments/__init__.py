"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes a ``run_*`` function returning a structured result with
the same rows/series the paper reports, plus ``main()``-style formatting
helpers used by the benchmark suite and the examples.

================  =========================================================
module            paper artefact
================  =========================================================
table1            Table 1 — rsh vs rsh' micro-benchmarks
table2            Table 2 — reallocation performance (taking a machine from
                  a running Calypso job)
table3            Table 3 — dynamically adding resources to PVM and LAM
fig7              Figure 7 — reallocation time vs number of machines
utilization       §6.2 closing experiment — five-hour utilization run
================  =========================================================

``chaos`` is not a paper artefact: it is the robustness capstone — a mixed
workload surviving a seeded schedule of crashes, partitions and lost
heartbeats (see :mod:`repro.experiments.chaos`).  ``soak`` is its
service-mode sibling: the durable (journaled) broker under a large diurnal
arrival trace with mid-run crash/restarts, gated on drain, flat memory and
a bounded journal (see :mod:`repro.experiments.soak`).
"""

from repro.experiments.results import ExperimentTable, Row, format_table
from repro.experiments.sweep import (
    bench_report,
    canonical_json,
    format_sweep,
    merge_results,
    run_cell,
    run_sweep,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.fig7 import run_fig7
from repro.experiments.utilization import run_utilization
from repro.experiments.chaos import run_chaos
from repro.experiments.soak import SoakReport, run_soak

__all__ = [
    "SoakReport",
    "ExperimentTable",
    "Row",
    "bench_report",
    "canonical_json",
    "format_sweep",
    "format_table",
    "merge_results",
    "run_cell",
    "run_chaos",
    "run_fig7",
    "run_soak",
    "run_sweep",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_utilization",
]
