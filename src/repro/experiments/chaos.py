"""Chaos experiment — a mixed workload survives a seeded fault schedule.

Not a paper artefact: the paper only ever exercises *voluntary* departure
(owner reclaim).  This experiment is the robustness capstone for the same
claim under involuntary failure — machines crash and reboot, daemons are
killed, the LAN partitions and drops heartbeats, and (with
``broker_crashes``) the broker itself dies and restarts mid-run — and every
job still runs to completion:

* an adaptive Calypso job (eager rescheduling re-executes steps lost with a
  crashed worker);
* several ``retrywork`` sequential jobs (the retry-until-success wrapper
  resubmits bursts whose machine died under them).

The fault schedule is drawn from the simulation RNG stream ``faults.plan``,
so the whole run — faults, detections, recoveries, the exported trace — is a
pure function of the seed; two runs with the same seed are byte-identical.
"""

from __future__ import annotations

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.results import ExperimentTable
from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import BrokerCrash, ShipLinkPartition, StandbyCrash
from repro.obs import HealthMonitor


def run_chaos(
    seed: int = 1,
    machines: int = 6,
    sequential_jobs: int = 3,
    horizon: float = 600.0,
    crashes: int = 3,
    partitions: int = 1,
    broker_crashes: int = 0,
    journal: bool = False,
    standby: bool = False,
    shards: int = 0,
    trace=None,
) -> ExperimentTable:
    """Run the chaos experiment; see the module docstring.

    ``horizon`` bounds the run: a job still unfinished then counts as not
    completed (``meta["completed"]`` vs ``meta["jobs"]``).  With
    ``broker_crashes`` > 0 the schedule SIGKILLs the broker that many times
    (each followed by a restart), exercising lease re-adoption, daemon
    re-registration and app session resumption.

    ``journal=True`` runs the broker durable (write-ahead journal +
    snapshot recovery) and turns the disk against it too: at least one
    broker crash, a torn tail on the journal at the crash instant, and a
    disk-stall window.  Restarts then recover from snapshot+replay first
    and reconcile against the daemons, instead of rebuilding from
    re-registration alone.

    ``standby=True`` runs the warm-standby failover scenario instead of the
    crash/restart one: an extra (unmanaged) machine hosts an ``rbstandby``
    replica fed by WAL shipping, and the schedule stacks the worst sequence
    the design must survive — a standby kill (keeper respawn + stream
    resume), then a ship-link partition, then a primary SIGKILL *mid-ship*,
    one second into the partition and before the promotion deadline, so
    recovery can only come from promotion (there is no restart).  The table
    grows promotion/fencing rows, and ``double grants`` must be zero.

    ``shards >= 2`` runs the federated scenario (DESIGN.md §17): the
    machines partition across that many durable broker shards (the journal
    is forced on so "loan" ops survive restarts), jobs are submitted from
    hosts on different shards so saturation forces cross-shard borrowing,
    and the schedule adds a SIGKILL/restart of shard 1's broker plus a
    :class:`~repro.faults.plan.ShardLinkPartition` between shards 0 and 1.
    Every job must still complete and ``double grants`` must stay zero —
    a loan the partition cuts off self-heals through lease expiry, never
    by the machine being grantable on two shards at once.
    """
    fed = shards >= 2
    if fed and standby:
        raise ValueError("the standby and federated scenarios are exclusive")
    if fed:
        # Federated chaos runs durable: loans are journalled ("loan" ops),
        # so a crashed shard recovers its side of every in-flight migration
        # instead of rebuilding from re-registration and dropping it.
        journal = True
    standby_host = f"n{machines + 1:02d}" if standby else None
    cluster = Cluster(
        ClusterSpec.uniform(machines + (2 if standby else 1), seed=seed)
    )
    if fed:
        federation = cluster.start_federation(shards=shards, journal=True)
        services = federation.services
        svc = services[0]
        federation.wait_ready()
        events_of = federation.events_of
    else:
        federation = None
        svc = cluster.start_broker(
            # Shipping replicates the WAL, so the standby scenario is durable
            # by construction; the journal *fault* extras stay opt-in.
            journal=journal or standby,
            standby_host=standby_host,
            managed_hosts=(
                [f"n{i:02d}" for i in range(machines + 1)] if standby else None
            ),
        )
        services = [svc]
        svc.wait_ready()
        events_of = svc.events_of
    monitors = [HealthMonitor(service).start() for service in services]
    broker_hosts = {service.broker_host for service in services}
    worker_hosts = [
        f"n{i:02d}"
        for i in range(1, machines + 1)
        if f"n{i:02d}" not in broker_hosts
    ]

    if journal:
        # A durable broker that never crashes proves nothing: guarantee at
        # least one crash/restart pair, tear the journal tail at the crash
        # instant, and stall the disk for a window.
        broker_crashes = max(broker_crashes, 1)

    # Machine-level faults hit only worker machines: n00 is the submission
    # host and runs the broker.  The broker *process* is fair game, though —
    # broker_crashes kills and restarts it without taking n00 down, which is
    # exactly the failure the lease/resume machinery exists for.
    stream = cluster.env.rng.stream("faults.plan")
    plan = FaultPlan.generate(
        stream,
        worker_hosts,
        start=5.0,
        window=45.0,
        crashes=crashes,
        partitions=partitions,
        # The standby scenario adds its own broker kill below, placed
        # relative to the ship-link partition; a drawn crash (and its
        # paired restart) would race the promotion.
        broker_crashes=0 if standby else broker_crashes,
        torn_writes=1 if journal else 0,
        disk_stalls=1 if journal else 0,
        # Federated runs crash shard 1's broker (keeping the adaptive
        # master's home shard up so recovery is observable) and cut the
        # shard 0 <-> shard 1 control link.  Both parameters draw nothing
        # when zero, so every pre-existing schedule reproduces byte-for-byte.
        broker_crash_shard=1 if fed else 0,
        shard_link_partitions=1 if fed else 0,
    )
    if standby:
        # Drawn *after* every generate() draw, so the machine-level
        # schedule is byte-identical to the non-standby run of this seed.
        # The sequence is deliberate: kill the standby first (keeper
        # respawn + stream resume from the persisted offset), then cut the
        # ship link, then SIGKILL the primary one second in — mid-ship,
        # inside the partition, before the promotion deadline — so the
        # promoted replica is provably working from shipped state alone.
        ship_at = float(stream.uniform(20.0, 35.0))
        plan.add(StandbyCrash(at=max(2.0, ship_at - 8.0)))
        plan.add(ShipLinkPartition(at=ship_at, duration=12.0))
        plan.add(BrokerCrash(at=ship_at + 1.0))
    injector = FaultInjector(cluster, plan).start()

    # Submissions route by locality in a federation; spreading the
    # sequential jobs across shard broker hosts loads every shard, so the
    # adaptive job's width pushes shard 0 into borrowing.  Standalone runs
    # have a single broker host and submit everything from n00, as before.
    submit = federation.submit if fed else svc.submit
    submit_hosts = sorted(broker_hosts)
    handles = [
        submit(
            "n00",
            ["calypso", "60", "2.0", "4"],
            rsl="+(adaptive)",
            uid="cal",
        )
    ]
    for i in range(sequential_jobs):
        handles.append(
            submit(
                submit_hosts[(i + 1) % len(submit_hosts)],
                ["retrywork", f"{6 + 3 * i:g}"],
                uid=f"seq{i}",
            )
        )

    deadline = cluster.now + horizon
    while cluster.now < deadline:
        if all(h.terminated.triggered for h in handles):
            break
        cluster.env.run(until=min(cluster.now + 1.0, deadline))
    finished_at = cluster.now
    # Settle drain: give the lease sweeper time to expire anything a dead
    # app or lost message stranded, so "machines allocated at end" really
    # measures leaked allocations, not in-flight cleanup.
    settle = 2.0 * cluster.network.calibration.lease_ttl
    if cluster.now < deadline:
        cluster.env.run(until=min(cluster.now + settle, deadline))
    cluster.assert_no_crashes()

    if trace is not None:
        trace.add_cluster(cluster, label="chaos")

    completed = sum(1 for h in handles if h.exit_code == 0)
    counters = svc.metrics
    table = ExperimentTable(
        title="Chaos: mixed workload under a seeded fault schedule",
        columns=["Metric", "Value"],
    )
    table.add("seed", seed)
    table.add("worker machines", machines)
    table.add("jobs submitted", len(handles))
    table.add("jobs completed", completed)
    table.add("machine crashes injected", plan.count("machine_crash"))
    table.add("partitions injected", plan.count("partition"))
    table.add("daemon kills injected", plan.count("daemon_kill"))
    table.add("lossy windows injected", plan.count("message_drop"))
    table.add("latency spikes injected", plan.count("latency_spike"))
    table.add("broker crashes injected", plan.count("broker_crash"))
    table.add("broker restarts", counters.counter("broker.restarts").value)
    if fed:
        table.add("broker shards", shards)
        table.add(
            "shard-link partitions injected",
            plan.count("shard_link_partition"),
        )
        table.add(
            "borrow forwards", counters.counter("federation.forwards").value
        )
        table.add(
            "cross-shard grants",
            counters.counter("federation.cross_shard_grants").value,
        )
        table.add(
            "loans out / refusals",
            f"{counters.counter('federation.loans_out').value:g} / "
            f"{counters.counter('federation.loan_refusals').value:g}",
        )
        table.add(
            "loan recalls / returns / reclaims",
            f"{counters.counter('federation.recalls').value:g} / "
            f"{counters.counter('federation.returns').value:g} / "
            f"{counters.counter('federation.loans_reclaimed').value:g}",
        )
        table.add(
            "fencing rejections",
            counters.counter("fencing.rejections").value,
        )
        table.add(
            "double grants (must be 0)",
            counters.counter("fencing.double_grants").value,
        )
    if standby:
        table.add("standby kills injected", plan.count("standby_crash"))
        table.add(
            "ship-link partitions injected", plan.count("ship_link_partition")
        )
        table.add(
            "standby respawns", counters.counter("broker.standby_restarts").value
        )
        table.add(
            "ship frames / snapshots / resends",
            f"{counters.counter('ship.frames').value:g} / "
            f"{counters.counter('ship.snapshots').value:g} / "
            f"{counters.counter('ship.resends').value:g}",
        )
        table.add("promotions", counters.counter("broker.promotions").value)
        table.add("demotions", counters.counter("broker.demotions").value)
        table.add(
            "fencing rejections",
            counters.counter("fencing.rejections").value,
        )
        table.add(
            "double grants (must be 0)",
            counters.counter("fencing.double_grants").value,
        )
    if journal:
        table.add("journal torn writes injected", plan.count("journal_torn_write"))
        table.add("disk stalls injected", plan.count("disk_stall"))
        table.add(
            "recoveries from journal",
            counters.counter("recovery.from_journal").value,
        )
        table.add(
            "recoveries from re-registration",
            counters.counter("recovery.from_reregistration").value,
        )
        table.add(
            "journal records replayed",
            counters.counter("recovery.replayed_records").value,
        )
        table.add(
            "torn journal tails tolerated",
            counters.counter("recovery.torn_tails").value,
        )
        table.add(
            "recovery conflicts (live inventory won)",
            counters.counter("recovery.conflicts").value,
        )
        table.add(
            "recovery latency (s)",
            round(counters.gauge("recovery.latency_seconds").value, 3),
        )
        table.add(
            "journal compactions",
            sum(
                service.journal.compactions
                for service in services
                if service.journal is not None
            ),
        )
    table.add(
        "daemon re-registrations",
        counters.counter("broker.daemon_reregistrations").value,
    )
    table.add(
        "sessions resumed", counters.counter("sessions.resumed").value
    )
    table.add("leases adopted", counters.counter("leases.adopted").value)
    table.add("leases expired", counters.counter("leases.expired").value)
    table.add(
        "machines declared dead",
        counters.counter("broker.machines_marked_dead").value,
    )
    table.add(
        "machine rejoins", counters.counter("broker.machine_rejoins").value
    )
    table.add(
        "daemon restarts", counters.counter("broker.daemon_restarts").value
    )
    table.add(
        "connections severed",
        counters.counter("net.severed_connections").value,
    )
    table.add("revocations", len(events_of("revoke")))
    table.add("grants", len(events_of("grant")))
    reports = [monitor.report() for monitor in monitors]
    stuck_allocations = sum(r.stuck_allocations for r in reports)
    table.add("machines allocated at end", stuck_allocations)
    table.add("health checks run", sum(r.checks for r in reports))
    table.add(
        "stuck-allocation events", sum(r.stuck_events for r in reports)
    )
    table.add(
        "heartbeat-gap events",
        sum(r.heartbeat_gap_events for r in reports),
    )
    table.add(
        "max heartbeat gap (s)",
        round(max(r.max_heartbeat_gap for r in reports), 3),
    )
    table.add(
        "queue high watermark",
        max(r.queue_high_watermark for r in reports),
    )
    table.add("finished at (s)", round(finished_at, 3))
    table.meta["jobs"] = len(handles)
    table.meta["completed"] = completed
    table.meta["stuck_allocations"] = stuck_allocations
    table.meta["health"] = reports[0].to_dict()
    if fed:
        table.meta["shard_health"] = [r.to_dict() for r in reports]
    table.meta["plan"] = plan.summary()
    table.meta["faults_injected"] = len(injector.injected)
    table.meta["journal"] = journal
    table.meta["standby"] = standby
    table.meta["shards"] = shards if fed else 0
    if fed:
        table.meta["federation"] = {
            "shards": shards,
            "forwards": counters.counter("federation.forwards").value,
            "cross_shard_grants": counters.counter(
                "federation.cross_shard_grants"
            ).value,
            "loans_out": counters.counter("federation.loans_out").value,
            "loan_refusals": counters.counter(
                "federation.loan_refusals"
            ).value,
            "recalls": counters.counter("federation.recalls").value,
            "returns": counters.counter("federation.returns").value,
            "reclaims": counters.counter("federation.loans_reclaimed").value,
        }
        table.meta["shard_stats"] = federation.federation_stats()
        table.meta["double_grants"] = counters.counter(
            "fencing.double_grants"
        ).value
    if standby:
        table.meta["fencing"] = {
            "promotions": counters.counter("broker.promotions").value,
            "demotions": counters.counter("broker.demotions").value,
            "rejections": counters.counter("fencing.rejections").value,
            "double_grants": counters.counter("fencing.double_grants").value,
        }
        table.meta["double_grants"] = counters.counter(
            "fencing.double_grants"
        ).value
    if journal:
        table.meta["recovery"] = {
            "from_journal": counters.counter("recovery.from_journal").value,
            "from_reregistration": counters.counter(
                "recovery.from_reregistration"
            ).value,
            "replayed_records": counters.counter(
                "recovery.replayed_records"
            ).value,
            "conflicts": counters.counter("recovery.conflicts").value,
        }
    table.notes.append(
        "every job must complete despite crashes, partitions and lost "
        "heartbeats; same seed => byte-identical trace"
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run_chaos())
