"""Chaos experiment — a mixed workload survives a seeded fault schedule.

Not a paper artefact: the paper only ever exercises *voluntary* departure
(owner reclaim).  This experiment is the robustness capstone for the same
claim under involuntary failure — machines crash and reboot, daemons are
killed, the LAN partitions and drops heartbeats — and every job still runs
to completion:

* an adaptive Calypso job (eager rescheduling re-executes steps lost with a
  crashed worker);
* several ``retrywork`` sequential jobs (the retry-until-success wrapper
  resubmits bursts whose machine died under them).

The fault schedule is drawn from the simulation RNG stream ``faults.plan``,
so the whole run — faults, detections, recoveries, the exported trace — is a
pure function of the seed; two runs with the same seed are byte-identical.
"""

from __future__ import annotations

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.results import ExperimentTable
from repro.faults import FaultInjector, FaultPlan


def run_chaos(
    seed: int = 1,
    machines: int = 6,
    sequential_jobs: int = 3,
    horizon: float = 600.0,
    crashes: int = 3,
    partitions: int = 1,
    trace=None,
) -> ExperimentTable:
    """Run the chaos experiment; see the module docstring.

    ``horizon`` bounds the run: a job still unfinished then counts as not
    completed (``meta["completed"]`` vs ``meta["jobs"]``).
    """
    cluster = Cluster(ClusterSpec.uniform(machines + 1, seed=seed))
    svc = cluster.start_broker()
    svc.wait_ready()
    worker_hosts = [f"n{i:02d}" for i in range(1, machines + 1)]

    # Faults hit only worker machines: n00 is the submission host and runs
    # the broker — the paper's designated manager machine, assumed stable
    # (manager fail-over is a different mechanism than machine recovery).
    plan = FaultPlan.generate(
        cluster.env.rng.stream("faults.plan"),
        worker_hosts,
        start=5.0,
        window=45.0,
        crashes=crashes,
        partitions=partitions,
    )
    injector = FaultInjector(cluster, plan).start()

    handles = [
        svc.submit(
            "n00",
            ["calypso", "60", "2.0", "4"],
            rsl="+(adaptive)",
            uid="cal",
        )
    ]
    for i in range(sequential_jobs):
        handles.append(
            svc.submit("n00", ["retrywork", f"{6 + 3 * i:g}"], uid=f"seq{i}")
        )

    deadline = cluster.now + horizon
    while cluster.now < deadline:
        if all(h.terminated.triggered for h in handles):
            break
        cluster.env.run(until=min(cluster.now + 1.0, deadline))
    cluster.assert_no_crashes()

    if trace is not None:
        trace.add_cluster(cluster, label="chaos")

    completed = sum(1 for h in handles if h.exit_code == 0)
    counters = svc.metrics
    table = ExperimentTable(
        title="Chaos: mixed workload under a seeded fault schedule",
        columns=["Metric", "Value"],
    )
    table.add("seed", seed)
    table.add("worker machines", machines)
    table.add("jobs submitted", len(handles))
    table.add("jobs completed", completed)
    table.add("machine crashes injected", plan.count("machine_crash"))
    table.add("partitions injected", plan.count("partition"))
    table.add("daemon kills injected", plan.count("daemon_kill"))
    table.add("lossy windows injected", plan.count("message_drop"))
    table.add("latency spikes injected", plan.count("latency_spike"))
    table.add(
        "machines declared dead",
        counters.counter("broker.machines_marked_dead").value,
    )
    table.add(
        "machine rejoins", counters.counter("broker.machine_rejoins").value
    )
    table.add(
        "daemon restarts", counters.counter("broker.daemon_restarts").value
    )
    table.add(
        "connections severed",
        counters.counter("net.severed_connections").value,
    )
    table.add("revocations", len(svc.events_of("revoke")))
    table.add("grants", len(svc.events_of("grant")))
    table.add("finished at (s)", round(cluster.now, 3))
    table.meta["jobs"] = len(handles)
    table.meta["completed"] = completed
    table.meta["plan"] = plan.summary()
    table.meta["faults_injected"] = len(injector.injected)
    table.notes.append(
        "every job must complete despite crashes, partitions and lost "
        "heartbeats; same seed => byte-identical trace"
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run_chaos())
