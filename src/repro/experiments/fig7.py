"""Figure 7 — resource reallocation time vs number of machines (paper §6.2).

Setting: "An adaptive Calypso job ran on every machine.  A PVM virtual
machine was created several times, and each time a different size virtual
machine was built.  To satisfy the PVM requests, machines had to be taken
away from the Calypso job first.  [The figure] reports the elapsed times
from the invocation until the resources were made available.  The results
show that the reallocation completes in approximately 1 second per machine,
and that this number scales linearly."

We measure, for each requested size k, the time from issuing the
``pvm add anylinux × k`` command until the broker has granted all k machines
to the PVM job (each grant requires revoking a Calypso worker first — the
"resources made available" instant).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.results import ExperimentTable
from repro.obs import grant_times

#: Request sizes plotted (the paper sweeps to its full 16-machine testbed).
DEFAULT_SIZES = [1, 2, 4, 8, 12, 16]


def _cluster_for(k: int, seed: int):
    """16 worker machines + the submitting host, Calypso everywhere."""
    cluster = Cluster(ClusterSpec.uniform(17, seed=seed))
    svc = cluster.start_broker()
    svc.wait_ready()
    calypso = svc.submit(
        "n00",
        ["calypso", "100000", "600.0", "16"],
        rsl="+(adaptive)",
        uid="cal",
    )
    deadline = cluster.now + 60.0
    while cluster.now < deadline:
        cluster.env.run(until=cluster.now + 0.5)
        record = calypso.job_record()
        if record and svc.state.holding_count(record.jobid) == 16:
            break
    record = calypso.job_record()
    assert svc.state.holding_count(record.jobid) == 16
    return cluster, svc


def measure_reallocation(k: int, seed: int = 0, trace=None) -> dict:
    """Time to pull ``k`` machines from Calypso for a fresh PVM job."""
    cluster, svc = _cluster_for(k, seed)
    pvm_handle = svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    cluster.env.run(until=cluster.now + 3.0)
    pvm_job = pvm_handle.job_record()
    assert pvm_job is not None

    t0 = cluster.now
    add = cluster.run_command(
        "n00", ["pvm", "add", *(["anylinux"] * k)], uid="pat"
    )
    cluster.env.run(until=add.terminated)
    grants: List[float] = []
    deadline = cluster.now + 10.0 + 5.0 * k
    while len(grants) < k and cluster.now < deadline:
        cluster.env.run(until=cluster.now + 0.25)
        grants = grant_times(svc, pvm_job.jobid, since=t0)
    assert len(grants) >= k, f"only {len(grants)} of {k} machines granted"
    cluster.assert_no_crashes()
    if trace is not None:
        trace.add_cluster(cluster, label=f"fig7 k={k}")
    return {
        "k": k,
        "available_at": grants[k - 1],
        "per_machine": grants[k - 1] / k,
        "grant_times": grants[:k],
    }


def run_fig7(
    sizes: Optional[List[int]] = None, seed: int = 0, trace=None
) -> ExperimentTable:
    """Regenerate Figure 7's series.

    ``trace`` may be a :class:`repro.obs.TraceCollector`; each size's
    cluster is then captured as its own labelled trace group.
    """
    sizes = sizes or DEFAULT_SIZES
    table = ExperimentTable(
        title="Figure 7: Resource reallocation using PVM and ResourceBroker",
        columns=["machines", "time (s)", "s/machine"],
    )
    per_machine = []
    for k in sizes:
        result = measure_reallocation(k, seed=seed, trace=trace)
        table.add(str(k), result["available_at"], result["per_machine"])
        per_machine.append(result["per_machine"])
    table.meta["per_machine"] = per_machine
    table.meta["sizes"] = list(sizes)
    table.notes.append(
        "paper: reallocation completes in ~1 s per machine, scaling "
        "linearly to the full testbed"
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run_fig7())
