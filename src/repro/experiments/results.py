"""Result containers and plain-text rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class Row:
    """One table row: a label plus one value per column."""

    label: str
    values: List[Any]


@dataclass
class ExperimentTable:
    """A reproduced table/figure: header, rows and free-form metadata."""

    title: str
    columns: List[str]
    rows: List[Row] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def add(self, label: str, *values: Any) -> None:
        """Append a row."""
        self.rows.append(Row(label, list(values)))

    def value(self, label: str, column: Optional[str] = None) -> Any:
        """Look a cell up by row label (and column name, default first)."""
        for row in self.rows:
            if row.label == label:
                if column is None:
                    return row.values[0]
                return row.values[self.columns.index(column) - 1]
        raise KeyError(label)

    def __str__(self) -> str:
        return format_table(self)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(table: ExperimentTable) -> str:
    """Render like the paper's tables: fixed-width text."""
    header = [table.columns[0]] + list(table.columns[1:])
    body = [[row.label] + [_fmt(v) for v in row.values] for row in table.rows]
    widths = [
        max(len(str(cells[i])) for cells in [header] + body)
        for i in range(len(header))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    out = [table.title, "=" * len(table.title), line(header)]
    out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    out.extend(line(cells) for cells in body)
    for note in table.notes:
        out.append(f"note: {note}")
    return "\n".join(out)
