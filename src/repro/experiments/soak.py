"""Service-mode soak — the durable broker under a long arrival trace.

The chaos experiment proves one crash is survivable; this one proves the
broker can be *left running*.  A soak drives a large Poisson arrival trace
(diurnal rate curve, short sequential jobs through the full ``app`` →
``rsh'`` → grant → subapp path) over a mixed public/private cluster whose
owners come and go on office-hour windows, crashes and restarts the broker
mid-run, and insists that at the end:

* every submission completed (the trace is fully drained),
* no machine is left allocated (zero stuck allocations after settle),
* the journal stayed bounded (compaction kept the WAL near its ceiling
  instead of growing with the trace),
* the service's memory stayed flat (bounded metrics, capped event log,
  pruned finished jobs — asserted by ``benchmarks/bench_soak.py``, which
  meters the second half of the run against a per-submission budget).

Everything that lands in the :class:`SoakReport`'s deterministic part is a
pure function of the seed; wall-clock and memory numbers live in separate
fields that pinned artifacts must ignore.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster import Cluster, ClusterSpec, MachineSpec
from repro.obs import HealthMonitor

#: Environment the soak forces around cluster construction: bounded metrics
#: (fixed-size reservoirs) and a fully sampled-out tracer, so observability
#: itself cannot grow with the trace.
_SOAK_ENV = {"RB_METRICS_MODE": "bounded", "RB_TRACE_SAMPLE": "0"}


@dataclass
class SoakReport:
    """Everything a soak run measured.

    Fields up to ``journal`` are deterministic (same seed, same values);
    ``memory_samples`` holds wall-side ``tracemalloc`` checkpoints
    ``(submissions_done, traced_bytes)`` and is empty unless the caller
    asked for metering.
    """

    seed: int
    machines: int
    private_machines: int
    submissions: int
    completed: int
    failed: int
    restarts: int
    recoveries_from_journal: float
    recovery_conflicts: float
    replayed_records: float
    journal_compactions: int
    journal_bytes: int
    stuck_allocations: int
    stuck_events: int
    journal_lag_events: int
    revocations: int
    grants: int
    finished_at: float
    health: Dict[str, Any] = field(default_factory=dict)
    memory_samples: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def drained(self) -> bool:
        """Every submission ran to completion."""
        return self.completed == self.submissions and self.failed == 0

    def render(self) -> str:
        """Human-readable soak summary."""
        lines = [
            f"== soak: {self.submissions} submissions over "
            f"{self.machines} machines ({self.private_machines} private), "
            f"seed {self.seed} ==",
            (
                f"completed={self.completed} failed={self.failed} "
                f"restarts={self.restarts} "
                f"finished_at={self.finished_at:.1f}s"
            ),
            (
                f"recovery: journal={self.recoveries_from_journal:g} "
                f"replayed={self.replayed_records:g} "
                f"conflicts={self.recovery_conflicts:g}"
            ),
            (
                f"journal: compactions={self.journal_compactions} "
                f"bytes={self.journal_bytes}"
            ),
            (
                f"health: stuck={self.stuck_allocations} "
                f"stuck_events={self.stuck_events} "
                f"journal_lag_events={self.journal_lag_events}"
            ),
            f"grants={self.grants} revocations={self.revocations}",
        ]
        return "\n".join(lines) + "\n"


def run_soak(
    seed: int = 1,
    machines: int = 12,
    submissions: int = 2000,
    journal: bool = True,
    restarts: int = 1,
    day: float = 600.0,
    base_rate: float = 0.3,
    peak_rate: float = 1.5,
    min_seconds: float = 0.5,
    max_seconds: float = 6.0,
    private_fraction: float = 0.25,
    memory_checkpoints: int = 0,
    progress=None,
) -> SoakReport:
    """Run the service-mode soak; see the module docstring.

    ``machines`` counts worker machines (the broker/submit host n00 is
    extra); the last ``private_fraction`` of them are private, with owners
    replaying diurnal office-hour windows.  ``restarts`` broker
    crash+restart pairs are spread evenly across the trace.

    ``memory_checkpoints`` > 0 samples ``tracemalloc`` that many times
    across the run (wall-side metering only — the deterministic report is
    identical with metering on or off).  ``progress`` is an optional
    ``callable(done, total)`` invoked at every checkpoint boundary.
    """
    from repro.workloads import (
        diurnal_owner_windows,
        replay_owner_windows,
        trace_arrivals,
    )

    n_private = int(machines * private_fraction)
    n_public = machines - n_private
    specs = [MachineSpec(name="n00")]
    specs += [MachineSpec(name=f"n{i:02d}") for i in range(1, n_public + 1)]
    specs += [
        MachineSpec(name=f"p{i:02d}", private_owner=f"owner{i}")
        for i in range(n_private)
    ]

    # Bounded observability must be decided when the Network builds its
    # registry/tracer, hence the env dance around construction.
    saved = {key: os.environ.get(key) for key in _SOAK_ENV}
    os.environ.update(_SOAK_ENV)
    try:
        cluster = Cluster(ClusterSpec(machines=specs, seed=seed))
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    env = cluster.env
    svc = cluster.start_broker(
        journal=journal,
        event_log_cap=256,
        retain_done_jobs=False,
    )
    svc.wait_ready()
    monitor = HealthMonitor(svc).start()

    # The arrival trace: Poisson with a diurnal rate, capped at exactly
    # ``submissions`` jobs.  The horizon is sized for the worst case — a
    # short trace spent entirely in the diurnal trough — because max_jobs
    # is what actually ends the trace: a larger horizon never changes the
    # first ``submissions`` arrivals, it only guarantees they exist.
    horizon = day + 4.0 * submissions / base_rate
    trace = trace_arrivals(
        env,
        horizon=horizon,
        base_rate=base_rate,
        peak_rate=peak_rate,
        day=day,
        min_seconds=min_seconds,
        max_seconds=max_seconds,
        max_jobs=submissions,
    )
    if len(trace) < submissions:
        raise RuntimeError(
            f"trace produced {len(trace)}/{submissions} arrivals; "
            f"raise the horizon"
        )
    last_arrival = trace.arrivals[-1]

    for host, windows in diurnal_owner_windows(
        env,
        [spec.name for spec in specs if spec.private_owner],
        horizon=last_arrival,
        day=day,
    ):
        env.process(
            replay_owner_windows(env, cluster.machine(host), windows),
            name=f"soak-owner@{host}",
        )

    done = {"completed": 0, "failed": 0}

    def _on_exit(event) -> None:
        done["completed"] += 1
        if event.value != 0:
            done["failed"] += 1

    submit_hosts = ["n00"] + (["n01"] if n_public >= 1 else [])

    def _submissions():
        for i, (at, duration) in enumerate(trace.jobs()):
            if at > env.now:
                yield env.timeout(at - env.now)
            handle = svc.submit(
                submit_hosts[i % len(submit_hosts)],
                ["rsh", "anylinux", "compute", f"{duration:g}"],
                uid="soak",
            )
            # Only the terminated hook survives; retaining 100k JobHandles
            # (each pinning a span and a process) is exactly the leak the
            # soak exists to rule out.
            handle.proc.terminated.add_callback(_on_exit)
            del handle

    env.process(_submissions(), name="soak-arrivals")

    def _restarts():
        for i in range(restarts):
            target = last_arrival * (i + 1) / (restarts + 1)
            if target > env.now:
                yield env.timeout(target - env.now)
            svc.crash_broker()
            yield env.timeout(2.0)
            svc.restart_broker()

    if restarts:
        env.process(_restarts(), name="soak-restarts")

    # Drive to drain with periodic housekeeping.  The simulation's object
    # graph is cyclic (events <-> callbacks <-> processes), so finished
    # work becomes *collectable* garbage, not freed memory; a long-running
    # service must collect it or watch RSS grow with the trace.  The
    # collect is wall-side only — it cannot move a single simulated event —
    # and memory is sampled right after it, so the flatness gate measures
    # live retention, not GC scheduling luck.
    import gc

    tracemalloc = None
    if memory_checkpoints:
        import tracemalloc as _tm

        tracemalloc = _tm
        if not tracemalloc.is_tracing():
            tracemalloc.start()
    report_samples: List[Tuple[int, int]] = []
    deadline = last_arrival + 600.0
    stride = max(1, submissions // max(20, memory_checkpoints))
    next_mark = stride
    while env.now < deadline and done["completed"] < submissions:
        env.run(until=min(env.now + 5.0, deadline))
        if done["completed"] >= next_mark:
            gc.collect()
            if tracemalloc is not None:
                report_samples.append(
                    (done["completed"], tracemalloc.get_traced_memory()[0])
                )
            if progress is not None:
                progress(done["completed"], submissions)
            next_mark += stride
    # Settle: let the lease sweeper expire anything a dead app stranded, so
    # stuck_allocations measures leaks, not in-flight cleanup.
    env.run(until=env.now + 2.0 * cluster.network.calibration.lease_ttl)
    finished_at = env.now
    cluster.assert_no_crashes()

    health = monitor.report()
    counters = svc.metrics
    jstats = (
        svc.journal.stats() if svc.journal is not None else {"enabled": False}
    )
    return SoakReport(
        seed=seed,
        machines=machines,
        private_machines=n_private,
        submissions=submissions,
        completed=done["completed"],
        failed=done["failed"],
        restarts=restarts,
        recoveries_from_journal=counters.counter(
            "recovery.from_journal"
        ).value,
        recovery_conflicts=counters.counter("recovery.conflicts").value,
        replayed_records=counters.counter("recovery.replayed_records").value,
        journal_compactions=int(jstats.get("compactions", 0)),
        journal_bytes=int(jstats.get("total_bytes", 0)),
        stuck_allocations=health.stuck_allocations,
        stuck_events=health.stuck_events,
        journal_lag_events=health.journal_lag_events,
        # Counters, not events_of(): the soak caps the event log, so the
        # per-kind buckets stop counting at the cap.
        revocations=int(counters.counter("broker.revokes").value),
        grants=int(counters.counter("broker.grants").value),
        finished_at=round(finished_at, 3),
        health=health.to_dict(),
        memory_samples=report_samples,
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run_soak().render())
