"""Deterministic (seed x cluster-size x workload) simulation sweeps.

The scale-out harness behind ``python -m repro sweep``: it fans a grid of
independent simulations across ``multiprocessing`` workers, merges the
per-run metrics and trace summaries into one canonical JSON document, and
can pin the kernel's performance envelope to ``BENCH_kernel.json``.

Determinism contract
--------------------
Every cell is a pure function of its parameters ``(workload, machines,
seed, sim_minutes)``: the simulation draws all randomness from the seeded
environment stream, so a cell computes the same result on any worker, in
any order.  The *merged* document contains only simulation-derived facts
(event counts, span counts, metric snapshots) — never wall-clock — and is
serialized canonically (sorted keys, fixed run order), so a serial run and
a ``--workers N`` run of the same grid produce byte-identical output.
Measured performance (wall seconds, events/sec) travels separately, in the
per-cell ``perf`` block and in the ``BENCH_kernel.json`` report.
"""

from __future__ import annotations

import hashlib
import json
import time
from multiprocessing import Pool
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Cell key order used everywhere: grid expansion, merge order, reports.
Cell = Tuple[str, int, int]  # (workload, machines, seed)

#: Cluster sizes the pinned kernel benchmark covers.  512 and 1024 are the
#: control-plane scaling points: with the broker's indexed scheduler the
#: per-event cost at 1024 should stay within a few percent of 256.  2048
#: and 4096 are the partitioned-kernel points (DESIGN.md §15) — the sizes
#: where per-lane heaps and window batching start to matter.
BENCH_SIZES = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def _drive_churn(cluster, service, sim_seconds: float) -> None:
    """The churning workload of the scale benchmarks: one greedy master
    expanding into every idle machine, plus a sequential arrival every 30
    simulated seconds forcing preemption and re-expansion."""
    from repro.workloads import install_churn

    install_churn(cluster.system_bin)
    service.submit(
        "n00",
        ["greedy", str(len(cluster.network.machines) - 1)],
        rsl="+(adaptive)",
    )
    cluster.env.run(until=cluster.now + 5.0)

    def arrivals():
        while True:
            yield cluster.env.timeout(30.0)
            service.submit("n00", ["rsh", "anylinux", "compute", "12"], uid="s")

    cluster.env.process(arrivals())
    cluster.env.run(until=cluster.now + sim_seconds)


def _drive_sequential(cluster, service, sim_seconds: float) -> None:
    """Sequential arrivals only: a brokered ``compute`` every 20 seconds."""

    def arrivals():
        while True:
            yield cluster.env.timeout(20.0)
            service.submit("n00", ["rsh", "anylinux", "compute", "8"], uid="s")

    cluster.env.process(arrivals())
    cluster.env.run(until=cluster.now + sim_seconds)


#: Named workloads a sweep can run.  Each driver gets a started cluster and
#: runs it for ``sim_seconds`` of simulated time.
WORKLOADS = {
    "churn": _drive_churn,
    "sequential": _drive_sequential,
}


def run_cell(
    workload: str,
    machines: int,
    seed: int,
    sim_minutes: float,
    health: bool = False,
    lanes: int = 0,
) -> Dict[str, Any]:
    """Run one simulation cell; returns deterministic results + measured perf.

    The ``result`` block is a pure function of the parameters; ``perf`` is
    wall-clock measurement and must never enter a merged document.

    ``health`` attaches a :class:`repro.obs.HealthMonitor` to the broker and
    adds its end-of-run report to the result.  Opt-in because the monitor's
    periodic checks are simulation events: a ``health=True`` cell is still
    deterministic, but its event counts differ from a plain cell, so the
    pinned kernel benchmark always runs without it.

    ``lanes`` partitions the kernel into that many event lanes (0 reads
    ``RB_KERNEL_LANES``); the result block — and hence the merged digest —
    is byte-identical for every lane count.
    """
    from repro.cluster import Cluster, ClusterSpec

    driver = WORKLOADS[workload]
    cluster = Cluster(ClusterSpec.uniform(machines, seed=seed, lanes=lanes))
    service = cluster.start_broker()
    service.wait_ready()
    monitor = None
    if health:
        from repro.obs import HealthMonitor

        monitor = HealthMonitor(service).start()
    sim_start = cluster.now
    wall_start = time.perf_counter()
    driver(cluster, service, sim_minutes * 60.0)
    wall = time.perf_counter() - wall_start
    cluster.assert_no_crashes()

    heap = cluster.env.heap_stats()
    # Per-lane detail varies with the lane configuration by design (the
    # environment-wide counters do not); keep it out of the merged document
    # so N-lane and single-lane cells stay digest-identical.
    lane_detail = heap.pop("lanes")
    tracer = cluster.network.tracer
    span_names: Dict[str, int] = {}
    for span in tracer.spans:
        span_names[span.name] = span_names.get(span.name, 0) + 1
    result = {
        "sim_seconds": round(cluster.now - sim_start, 6),
        "heap": heap,
        "spans": len(tracer.spans),
        "span_names": span_names,
        "grants": len(service.events_of("grant")),
        "revokes": len(service.events_of("revoke")),
        "metrics": cluster.network.metrics.snapshot(),
        # Broker control-plane cost: machine records examined by eligibility
        # scans.  Deterministic for a given scheduler mode, but *different*
        # between the indexed and full-scan schedulers (which agree on every
        # decision, not on how much work finding it took).
        "broker": {"machines_scanned": service.state.machines_scanned},
    }
    if monitor is not None:
        result["health"] = monitor.report().to_dict()
    heap_ops = heap["pushes"] + heap["processed"] + heap["skipped_cancelled"]
    return {
        "workload": workload,
        "machines": machines,
        "seed": seed,
        "result": result,
        "perf": {
            "wall_seconds": wall,
            "wall_per_sim_minute": wall / max(sim_minutes, 1e-9),
            "events_per_second": heap["processed"] / max(wall, 1e-9),
            "heap_ops_per_second": heap_ops / max(wall, 1e-9),
            "spans_per_second": len(tracer.spans) / max(wall, 1e-9),
        },
        # Lane-configuration-dependent detail, outside the determinism doc.
        "kernel": {
            "lanes": cluster.env.lane_count,
            "lane_detail": lane_detail,
        },
    }


def _run_cell_packed(packed: Tuple) -> Dict[str, Any]:
    """Top-level shim so cells pickle across multiprocessing workers."""
    return run_cell(*packed)


def expand_grid(
    workloads: Sequence[str], sizes: Sequence[int], seeds: Sequence[int]
) -> List[Cell]:
    """The sweep grid in canonical (workload, machines, seed) order."""
    return [
        (w, n, s)
        for w in sorted(workloads)
        for n in sorted(sizes)
        for s in sorted(seeds)
    ]


def run_sweep(
    workloads: Sequence[str] = ("churn",),
    sizes: Sequence[int] = (8, 16, 32),
    seeds: Sequence[int] = (1,),
    sim_minutes: float = 2.0,
    workers: int = 1,
    health: bool = False,
    lanes: int = 0,
) -> List[Dict[str, Any]]:
    """Run the full grid, optionally fanning cells across worker processes.

    Cell results come back in canonical grid order regardless of worker
    count or completion order (``Pool.map`` preserves input order), which
    is half of the determinism contract; the other half is that cells are
    pure functions of their parameters.
    """
    for workload in workloads:
        if workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {workload!r}; "
                f"choose from {sorted(WORKLOADS)}"
            )
    grid = expand_grid(workloads, sizes, seeds)
    packed = [(w, n, s, sim_minutes, health, lanes) for (w, n, s) in grid]
    if workers <= 1 or len(packed) <= 1:
        return [_run_cell_packed(cell) for cell in packed]
    with Pool(processes=min(workers, len(packed))) as pool:
        return pool.map(_run_cell_packed, packed)


def merge_results(
    cells: Iterable[Dict[str, Any]], sim_minutes: float
) -> Dict[str, Any]:
    """Fold cell outputs into the canonical merged document.

    Strips every measured-perf field; the digest fingerprints the
    simulation-derived content so two runs can be compared at a glance.
    """
    runs = [
        {
            "workload": cell["workload"],
            "machines": cell["machines"],
            "seed": cell["seed"],
            "result": cell["result"],
        }
        for cell in sorted(
            cells,
            key=lambda c: (c["workload"], c["machines"], c["seed"]),
        )
    ]
    body = {
        "grid": {
            "workloads": sorted({r["workload"] for r in runs}),
            "machines": sorted({r["machines"] for r in runs}),
            "seeds": sorted({r["seed"] for r in runs}),
            "sim_minutes": sim_minutes,
        },
        "runs": runs,
    }
    digest = hashlib.sha256(canonical_json(body).encode()).hexdigest()
    return {**body, "digest": digest}


def canonical_json(document: Dict[str, Any]) -> str:
    """The byte-stable serialization the determinism contract is stated in."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def bench_report(
    cells: Iterable[Dict[str, Any]],
    sim_minutes: float,
    workload: str = "churn",
) -> Dict[str, Any]:
    """The ``BENCH_kernel.json`` performance envelope from sweep cells.

    Keeps one entry per cluster size (the first seed seen) for ``workload``;
    wall-clock here is measurement, not simulation, so the file is pinned
    on one machine and compared with a generous tolerance (see
    ``benchmarks/bench_smoke.py``).
    """
    sizes: Dict[str, Any] = {}
    for cell in sorted(
        cells, key=lambda c: (c["machines"], c["seed"])
    ):
        if cell["workload"] != workload:
            continue
        key = str(cell["machines"])
        if key in sizes:
            continue
        heap = cell["result"]["heap"]
        perf = cell["perf"]
        sizes[key] = {
            "wall_seconds": round(perf["wall_seconds"], 4),
            "wall_per_sim_minute": round(perf["wall_per_sim_minute"], 4),
            "events_processed": heap["processed"],
            "heap_high_water": heap["heap_high_water"],
            "heap_ops_per_second": round(perf["heap_ops_per_second"]),
            "events_per_second": round(perf["events_per_second"]),
            "spans_per_second": round(perf["spans_per_second"], 1),
        }
    return {
        "workload": workload,
        "sim_minutes": sim_minutes,
        "sizes": sizes,
    }


def format_sweep(cells: Sequence[Dict[str, Any]]) -> str:
    """Human-readable sweep summary (one line per cell)."""
    lines = [
        f"{'workload':<12} {'machines':>8} {'seed':>5} {'events':>9} "
        f"{'spans':>7} {'grants':>7} {'wall s':>8} {'ev/s':>9}"
    ]
    for cell in cells:
        result, perf = cell["result"], cell["perf"]
        lines.append(
            f"{cell['workload']:<12} {cell['machines']:>8} "
            f"{cell['seed']:>5} {result['heap']['processed']:>9} "
            f"{result['spans']:>7} {result['grants']:>7} "
            f"{perf['wall_seconds']:>8.2f} "
            f"{perf['events_per_second']:>9.0f}"
        )
    return "\n".join(lines)
