"""Table 1 — micro-benchmarks of rsh' (paper §6.1).

Setting: two idle machines (the paper's n00, n01); commands issued on n00,
executed on n01.  ``null`` is an empty program; ``loop`` a ~6.5 s CPU burst.
``rsh`` rows use the plain remote shell on an unmanaged cluster; ``rsh'``
rows submit through ResourceBroker (an app process + the interposed rsh).
With ``anylinux`` "the available set of machines was limited to n01, so in
fact n01 was always chosen" — reproduced here by the home-host exclusion.

Paper's reported numbers: null ≈ 0.3 s (rsh) vs ≈ 0.6 s (rsh', both forms);
loop ≈ rsh-cost + 6.5 s in every row; rsh' overhead ≈ 0.3 s total.
"""

from __future__ import annotations

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.results import ExperimentTable


def _fresh_cluster(seed: int, broker: bool) -> Cluster:
    cluster = Cluster(ClusterSpec.uniform(2, seed=seed))
    if broker:
        cluster.start_broker()
        cluster.broker.wait_ready()
    return cluster


def _measure_plain(seed: int, program: str, trace=None) -> float:
    cluster = _fresh_cluster(seed, broker=False)
    t0 = cluster.now
    proc = cluster.run_command("n00", ["rsh", "n01", program])
    cluster.env.run(until=proc.terminated)
    assert proc.exit_code == 0, f"rsh n01 {program} failed"
    cluster.assert_no_crashes()
    if trace is not None:
        trace.add_cluster(cluster, label=f"rsh n01 {program}")
    return cluster.now - t0


def _measure_brokered(seed: int, target: str, program: str, trace=None) -> float:
    cluster = _fresh_cluster(seed, broker=True)
    svc = cluster.broker
    t0 = cluster.now
    handle = svc.submit("n00", ["rsh", target, program])
    code = handle.wait()
    assert code == 0, f"rsh' {target} {program} failed"
    cluster.assert_no_crashes()
    if trace is not None:
        trace.add_cluster(cluster, label=f"rsh' {target} {program}")
    return cluster.now - t0


def run_table1(seed: int = 0, trace=None) -> ExperimentTable:
    """Regenerate Table 1.

    ``trace`` may be a :class:`repro.obs.TraceCollector`; each measurement's
    cluster is then captured as its own labelled trace group.
    """
    table = ExperimentTable(
        title="Table 1: Performance of rsh' (seconds)",
        columns=["Operation", "Time (s)"],
    )
    table.add("rsh n01 null", _measure_plain(seed, "null", trace))
    table.add("rsh' n01 null", _measure_brokered(seed, "n01", "null", trace))
    table.add(
        "rsh' anylinux null", _measure_brokered(seed, "anylinux", "null", trace)
    )
    table.add("rsh n01 loop", _measure_plain(seed, "loop", trace))
    table.add("rsh' n01 loop", _measure_brokered(seed, "n01", "loop", trace))
    table.add(
        "rsh' anylinux loop", _measure_brokered(seed, "anylinux", "loop", trace)
    )
    table.notes.append(
        "paper: null 0.3 / 0.6 / 0.6; loop = null + ~6.5 in each row"
    )
    table.meta["rshp_overhead_null"] = (
        table.value("rsh' n01 null") - table.value("rsh n01 null")
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run_table1())
