"""Table 2 — reallocation performance (paper §6.1, second experiment).

Setting: three machines; an adaptive Calypso program runs on n01 and n02
(submitted from n00); commands are issued on n00 and in every case result in
the allocation of a machine held by Calypso.  For the ``rsh'`` rows the
broker terminates (gracefully) the Calypso worker on the chosen machine
before satisfying the request — "a reallocation completes in approximately
1 second".  The ``loop`` rows show the payoff: plain rsh lands the job on a
machine still running a Calypso worker (processor sharing doubles its
runtime), while the broker's reallocation clears the machine first —
"users experience a faster turnaround time since n01 is cleared of external
processes before executing the job".

Paper numbers: rsh null 0.3 s; rsh' anylinux null ≈ 1.3 s; rsh loop ≈
0.3 + 2×6.5 ≈ 13 s; rsh' anylinux loop ≈ 1.3 + 6.5 ≈ 7.8 s.
"""

from __future__ import annotations

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.results import ExperimentTable

#: Enough steps that the Calypso job outlives every measured operation.
_CALYPSO_ARGS = ["calypso", "100000", "30.0", "2"]


def _cluster_with_calypso(seed: int):
    cluster = Cluster(ClusterSpec.uniform(3, seed=seed))
    svc = cluster.start_broker()
    svc.wait_ready()
    svc.submit("n00", list(_CALYPSO_ARGS), rsl="+(adaptive)", uid="cal")
    # Let the Calypso job occupy n01 and n02.
    deadline = cluster.now + 30.0
    while cluster.now < deadline:
        cluster.env.run(until=cluster.now + 0.5)
        holdings = svc.holdings()
        if holdings and len(next(iter(holdings.values()))) == 2:
            break
    holdings = svc.holdings()
    assert holdings and len(next(iter(holdings.values()))) == 2, holdings
    return cluster, svc


def _measure_plain(seed: int, program: str, trace=None) -> float:
    cluster, _svc = _cluster_with_calypso(seed)
    t0 = cluster.now
    proc = cluster.run_command("n00", ["rsh", "n01", program])
    cluster.env.run(until=proc.terminated)
    assert proc.exit_code == 0
    if trace is not None:
        trace.add_cluster(cluster, label=f"rsh n01 {program}")
    return cluster.now - t0


def _measure_brokered(seed: int, program: str, trace=None) -> float:
    cluster, svc = _cluster_with_calypso(seed)
    t0 = cluster.now
    handle = svc.submit("n00", ["rsh", "anylinux", program])
    code = handle.wait()
    assert code == 0
    cluster.assert_no_crashes()
    if trace is not None:
        trace.add_cluster(cluster, label=f"rsh' anylinux {program}")
    return cluster.now - t0


def run_table2(seed: int = 0, trace=None) -> ExperimentTable:
    """Regenerate Table 2.

    ``trace`` may be a :class:`repro.obs.TraceCollector`; each measurement's
    cluster is then captured as its own labelled trace group.
    """
    table = ExperimentTable(
        title="Table 2: Performance of reallocation (seconds)",
        columns=["Operation", "Time (s)"],
    )
    table.add("rsh n01 null", _measure_plain(seed, "null", trace))
    table.add("rsh' anylinux null", _measure_brokered(seed, "null", trace))
    table.add("rsh n01 loop", _measure_plain(seed, "loop", trace))
    table.add("rsh' anylinux loop", _measure_brokered(seed, "loop", trace))
    table.notes.append(
        "paper: null 0.3 vs ~1.3; loop shares the CPU under plain rsh but "
        "runs on a cleared machine after reallocation"
    )
    table.meta["realloc_cost"] = (
        table.value("rsh' anylinux null") - 0.6  # minus the Table-1 baseline
    )
    table.meta["loop_crossover"] = (
        table.value("rsh n01 loop") > table.value("rsh' anylinux loop")
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run_table2())
