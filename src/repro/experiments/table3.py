"""Table 3 — dynamically adding resources to PVM and LAM (paper §6.2).

For each system and each virtual-machine size k ∈ {1,2,3,4}, measure the
elapsed time from issuing the grow command until the virtual machine
actually contains k additional hosts, under three regimes:

* ``w/ rsh``      — no ResourceBroker at all, explicit host names;
* ``w/ host``     — under ResourceBroker, explicit host names (rsh' sees
  real names and passes them through: "less than 0.3 milliseconds of
  overhead per machine");
* ``w/ anylinux`` — under ResourceBroker, symbolic names via the external
  modules ("approximately 1.2 seconds overhead for PVM and 1.4 seconds for
  LAM programs ... once per machine, and only at startup").

Membership is observed through the daemons' status files, which is what
makes the asynchronous (module) growth measurable.
"""

from __future__ import annotations

from typing import List

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.results import ExperimentTable

_SIZES = [1, 2, 3, 4]


def _fresh(seed: int, broker: bool) -> Cluster:
    cluster = Cluster(ClusterSpec.uniform(6, seed=seed))
    if broker:
        cluster.start_broker()
        cluster.broker.wait_ready()
    return cluster


def _membership(cluster, status_file: str, uid: str) -> int:
    fs = cluster.machine("n00").fs
    path = f"/home/{uid}/{status_file}"
    if not fs.exists(path):
        return 0
    return len(fs.read_lines(path))


def _wait_membership(cluster, status_file: str, uid: str, want: int) -> None:
    deadline = cluster.now + 120.0
    while cluster.now < deadline:
        if _membership(cluster, status_file, uid) >= want:
            return
        cluster.env.run(until=cluster.now + 0.05)
    raise AssertionError(
        f"virtual machine never reached {want} members "
        f"({_membership(cluster, status_file, uid)} present)"
    )


# -- PVM --------------------------------------------------------------


def _pvm_boot_plain(cluster, uid="user"):
    boot = cluster.run_command("n00", ["pvm", "conf"], uid=uid)
    cluster.env.run(until=boot.terminated)


def _pvm_boot_brokered(cluster, uid="user"):
    cluster.broker.submit("n00", ["pvm"], rsl='+(module="pvm")', uid=uid)
    cluster.env.run(until=cluster.now + 3.0)


def _pvm_measure(cluster, hosts: List[str], uid="user") -> float:
    want = 1 + len(hosts) + _membership(cluster, ".pvm_hosts", uid) - 1
    t0 = cluster.now
    add = cluster.run_command("n00", ["pvm", "add", *hosts], uid=uid)
    cluster.env.run(until=add.terminated)
    _wait_membership(cluster, ".pvm_hosts", uid, want)
    cluster.assert_no_crashes()
    return cluster.now - t0


def _row_pvm(seed: int, mode: str, trace=None) -> List[float]:
    times = []
    for k in _SIZES:
        if mode == "rsh":
            cluster = _fresh(seed, broker=False)
            _pvm_boot_plain(cluster)
            hosts = [f"n{i:02d}" for i in range(1, k + 1)]
        elif mode == "host":
            cluster = _fresh(seed, broker=True)
            _pvm_boot_brokered(cluster)
            hosts = [f"n{i:02d}" for i in range(1, k + 1)]
        else:  # anylinux
            cluster = _fresh(seed, broker=True)
            _pvm_boot_brokered(cluster)
            hosts = ["anylinux"] * k
        times.append(_pvm_measure(cluster, hosts))
        if trace is not None:
            trace.add_cluster(cluster, label=f"pvm w/ {mode} k={k}")
    return times


# -- LAM --------------------------------------------------------------


def _lam_boot_plain(cluster, uid="user"):
    boot = cluster.run_command("n00", ["lamboot"], uid=uid)
    cluster.env.run(until=boot.terminated)


def _lam_boot_brokered(cluster, uid="user"):
    cluster.broker.submit("n00", ["lam"], rsl='+(module="lam")', uid=uid)
    cluster.env.run(until=cluster.now + 3.0)


def _lam_measure(cluster, hosts: List[str], uid="user") -> float:
    """Explicit names grow via one ``lamboot h1..hk`` (a single tool run,
    as a user would); symbolic names go through ``lamgrow anylinux`` per
    host, which is also what the lam_grow module script invokes."""
    want = 1 + len(hosts)
    t0 = cluster.now
    if any(h.startswith("any") for h in hosts):
        for host in hosts:
            grow = cluster.run_command("n00", ["lamgrow", host], uid=uid)
            cluster.env.run(until=grow.terminated)
    else:
        boot = cluster.run_command("n00", ["lamboot", *hosts], uid=uid)
        cluster.env.run(until=boot.terminated)
    _wait_membership(cluster, ".lam_nodes", uid, want)
    cluster.assert_no_crashes()
    return cluster.now - t0


def _row_lam(seed: int, mode: str, trace=None) -> List[float]:
    times = []
    for k in _SIZES:
        if mode == "rsh":
            cluster = _fresh(seed, broker=False)
            _lam_boot_plain(cluster)
            hosts = [f"n{i:02d}" for i in range(1, k + 1)]
        elif mode == "host":
            cluster = _fresh(seed, broker=True)
            _lam_boot_brokered(cluster)
            hosts = [f"n{i:02d}" for i in range(1, k + 1)]
        else:
            cluster = _fresh(seed, broker=True)
            _lam_boot_brokered(cluster)
            hosts = ["anylinux"] * k
        times.append(_lam_measure(cluster, hosts))
        if trace is not None:
            trace.add_cluster(cluster, label=f"lam w/ {mode} k={k}")
    return times


def run_table3(seed: int = 0, trace=None) -> ExperimentTable:
    """Regenerate Table 3.

    ``trace`` may be a :class:`repro.obs.TraceCollector`; every per-size
    cluster is then captured as its own labelled trace group.
    """
    table = ExperimentTable(
        title=(
            "Table 3: Time to dynamically add resources to PVM and LAM "
            "programs (seconds)"
        ),
        columns=["Operation"] + [f"{k} machine(s)" for k in _SIZES],
    )
    pvm_rsh = _row_pvm(seed, "rsh", trace)
    pvm_host = _row_pvm(seed, "host", trace)
    pvm_any = _row_pvm(seed, "anylinux", trace)
    lam_rsh = _row_lam(seed, "rsh", trace)
    lam_host = _row_lam(seed, "host", trace)
    lam_any = _row_lam(seed, "anylinux", trace)
    table.add("pvm w/ rsh", *pvm_rsh)
    table.add("pvm w/ host", *pvm_host)
    table.add("pvm w/ anylinux", *pvm_any)
    table.add("lam w/ rsh", *lam_rsh)
    table.add("lam w/ host", *lam_host)
    table.add("lam w/ anylinux", *lam_any)
    table.meta["pvm_host_overhead_per_machine"] = [
        (h - r) / k for h, r, k in zip(pvm_host, pvm_rsh, _SIZES)
    ]
    table.meta["pvm_anylinux_overhead_per_machine"] = [
        (a - h) / k for a, h, k in zip(pvm_any, pvm_host, _SIZES)
    ]
    table.meta["lam_host_overhead_per_machine"] = [
        (h - r) / k for h, r, k in zip(lam_host, lam_rsh, _SIZES)
    ]
    table.meta["lam_anylinux_overhead_per_machine"] = [
        (a - h) / k for a, h, k in zip(lam_any, lam_host, _SIZES)
    ]
    table.notes.append(
        "paper: explicit names add <0.3 ms/machine; anylinux adds ~1.2 s "
        "(PVM) / ~1.4 s (LAM) per machine, once, at startup"
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run_table3())
