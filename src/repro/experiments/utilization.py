"""§6.2 closing experiment — five-hour utilization of a dynamic environment.

"The setting was as follows.  An adaptive Calypso job ran initially on eight
machines.  Every 100 seconds, a script started a sequential program that ran
for t minutes, where t was chosen uniformly from the interval [1,10].  After
five hours, the total detected idleness (the total amount of time that the
machines were idle) was less than 1%."

Our setup: eight worker machines (n01..n08) plus the submitting host n00.
The Calypso job soaks all eight; each sequential arrival preempts one
machine for its duration; when it finishes the broker immediately re-grants
the machine to Calypso's queued request.  Idleness is integrated from the
processor-sharing CPUs of the eight worker machines.
"""

from __future__ import annotations

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.results import ExperimentTable
from repro.metrics.utilization import UtilizationMeter
from repro.workloads.arrivals import periodic_sequential_jobs


def run_utilization(
    horizon: float = 5 * 3600.0,
    period: float = 100.0,
    machines: int = 8,
    seed: int = 0,
    trace=None,
) -> ExperimentTable:
    """Regenerate the utilization experiment (horizon shrinkable for tests).

    ``trace`` may be a :class:`repro.obs.TraceCollector`; the run's cluster
    is then captured as one labelled trace group.
    """
    cluster = Cluster(ClusterSpec.uniform(machines + 1, seed=seed))
    svc = cluster.start_broker()
    svc.wait_ready()
    worker_hosts = [f"n{i:02d}" for i in range(1, machines + 1)]

    calypso = svc.submit(
        "n00",
        ["calypso", "1000000", "30.0", str(machines)],
        rsl="+(adaptive)",
        uid="cal",
    )
    # Let the adaptive job occupy all the worker machines.
    deadline = cluster.now + 60.0
    while cluster.now < deadline:
        cluster.env.run(until=cluster.now + 0.5)
        record = calypso.job_record()
        if record and svc.state.holding_count(record.jobid) == machines:
            break
    record = calypso.job_record()
    assert svc.state.holding_count(record.jobid) == machines

    meter = UtilizationMeter(cluster, worker_hosts)
    meter.start()
    start = cluster.now

    workload = periodic_sequential_jobs(
        cluster.env, period=period, horizon=horizon
    )
    submitted = 0

    def submitter():
        nonlocal submitted
        for arrival, duration in workload.jobs():
            now = cluster.env.now - start
            if arrival > now:
                yield cluster.env.timeout(arrival - now)
            svc.submit(
                "n00",
                ["rsh", "anylinux", "compute", f"{duration:.3f}"],
                uid=f"seq",
            )
            submitted += 1

    cluster.env.process(submitter())
    cluster.env.run(until=start + horizon)

    if trace is not None:
        trace.add_cluster(cluster, label="utilization")
    idleness = meter.idleness()
    table = ExperimentTable(
        title="Utilization of a dynamic environment (paper section 6.2)",
        columns=["Metric", "Value"],
    )
    table.add("horizon (s)", horizon)
    table.add("machines", machines)
    table.add("sequential jobs submitted", submitted)
    table.add("mean utilization", meter.utilization())
    table.add("total detected idleness", idleness)
    table.meta["idleness"] = idleness
    table.meta["utilization_by_host"] = meter.utilization_by_host()
    table.notes.append("paper: total detected idleness < 1% over five hours")
    return table


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run_utilization())
