"""``repro.faults`` — deterministic fault injection.

The paper's premise is that adaptive jobs survive machines coming and going;
this package makes the *involuntary* departures representable.  It provides:

* :mod:`repro.faults.plan` — declarative, seeded fault schedules
  (:class:`FaultPlan` and the fault record types);
* :mod:`repro.faults.netfaults` — the pluggable network-fault model the
  simulated LAN consults on every send/connect;
* :mod:`repro.faults.injector` — the simulation process that executes a plan
  against a live cluster, with an observability span and counter per fault.

Because every random choice (plan generation, probabilistic drops) draws
from named :class:`~repro.sim.rng.SimRandom` streams, a chaos run is a pure
function of its seed: same seed, same faults, byte-identical trace.
"""

from repro.faults.injector import FaultInjector
from repro.faults.netfaults import NetworkFaults, install
from repro.faults.plan import (
    BrokerCrash,
    BrokerRestart,
    DaemonKill,
    DiskStall,
    Fault,
    FaultPlan,
    JournalTornWrite,
    LatencySpike,
    MachineCrash,
    MessageDrop,
    Partition,
    ShardLinkPartition,
    ShipLinkPartition,
    StandbyCrash,
)

__all__ = [
    "BrokerCrash",
    "BrokerRestart",
    "DaemonKill",
    "DiskStall",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "JournalTornWrite",
    "LatencySpike",
    "MachineCrash",
    "MessageDrop",
    "NetworkFaults",
    "Partition",
    "ShardLinkPartition",
    "ShipLinkPartition",
    "StandbyCrash",
    "install",
]
