"""Executes a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The injector is a simulation process that walks the plan in firing order and
performs each fault at its scheduled instant:

* ``machine_crash`` — :meth:`Cluster.crash_machine` (kills resident
  processes, refuses the network, optionally reboots later);
* ``daemon_kill`` — SIGKILLs every ``rbdaemon`` on the victim host;
* ``partition`` — installs a partition rule in the network fault model and
  *severs* every established connection across the cut (both ends see EOF,
  so recovery protocols run instead of hanging on messages that can never
  arrive);
* ``message_drop`` / ``latency_spike`` — installs the corresponding windowed
  rule;
* ``broker_crash`` / ``broker_restart`` — SIGKILLs the broker process /
  boots a fresh incarnation via the cluster's :class:`BrokerService`
  (no-ops on a cluster that never started a broker);
* ``journal_torn_write`` / ``disk_stall`` — truncates the tail of the
  broker journal's newest WAL file / freezes journal flushes for a window
  (no-ops when the broker runs without a journal);
* ``standby_crash`` / ``ship_link_partition`` — SIGKILLs the warm-standby
  replica / blocks just the primary↔standby link (the false-promotion
  split-brain scenario); both no-ops without a configured standby;
* ``shard_link_partition`` — blocks just the link between two federated
  shards' brokers (borrow RPCs and loan notices go dark; loans across the
  cut self-heal through lease expiry); a no-op without a federation.

Every injection opens and ends an observability span (``fault.<kind>``) and
bumps ``faults.injected`` plus a per-kind counter, so a chaos run's trace
shows exactly what was done to the cluster and when.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.faults.netfaults import NetworkFaults, install
from repro.faults.plan import FaultPlan
from repro.os.signals import SIGKILL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import Cluster
    from repro.sim.events import Event


class FaultInjector:
    """Drives one fault plan against one cluster (see module docstring)."""

    def __init__(self, cluster: "Cluster", plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.env = cluster.env
        self.network = cluster.network
        self.faults: NetworkFaults = install(self.network)
        self.injected: List[object] = []
        self._proc = None

    def start(self) -> "FaultInjector":
        """Spawn the injection process; returns self."""
        if self._proc is None:
            self._proc = self.env.process(self._run(), name="fault-injector")
        return self

    @property
    def done(self) -> "Event":
        """Event fired once every scheduled fault has been injected (the
        injection process itself — a sim Process is yieldable)."""
        assert self._proc is not None, "start() the injector first"
        return self._proc

    # -- the injection loop --------------------------------------------------

    def _run(self):
        tracer = self.network.tracer
        metrics = self.network.metrics
        for fault in self.plan.sorted():
            if fault.at > self.env.now:
                yield self.env.timeout(fault.at - self.env.now)
            span = tracer.start(
                f"fault.{fault.kind}",
                actor="fault-injector",
                **{k: _jsonable(v) for k, v in vars(fault).items()},
            )
            self._inject(fault)
            metrics.counter("faults.injected").inc()
            metrics.counter(f"faults.{fault.kind}").inc()
            self.injected.append(fault)
            span.end()

    def _inject(self, fault) -> None:
        kind = fault.kind
        if kind == "machine_crash":
            self.cluster.crash_machine(fault.host, reboot_after=fault.reboot_after)
        elif kind == "daemon_kill":
            self._kill_daemons(fault.host)
        elif kind == "partition":
            self.faults.add_partition(fault.hosts, fault.duration)
            self.network.sever(self.faults.partitioned)
        elif kind == "message_drop":
            self.faults.add_drop_rule(
                fault.duration,
                probability=fault.probability,
                only_types=fault.only_types,
            )
        elif kind == "latency_spike":
            self.faults.add_latency_spike(fault.duration, fault.factor)
        elif kind == "broker_crash":
            service = self._broker_service(getattr(fault, "shard", 0))
            if service is not None:
                service.crash_broker()
        elif kind == "broker_restart":
            service = self._broker_service(getattr(fault, "shard", 0))
            if service is not None:
                service.restart_broker()
        elif kind == "standby_crash":
            self._kill_standby()
        elif kind == "ship_link_partition":
            broker = self.cluster.broker
            if broker is not None and broker.standby_host is not None:
                # Cut the link between the two *well-known* addresses, not
                # the current broker host — after a promotion both roles sit
                # on the standby address and the cut is inert.
                a, b = broker.broker_addresses[0], broker.broker_addresses[1]
                self.faults.add_link_block(a, b, fault.duration)
                self.network.sever(self.faults.partitioned)
        elif kind == "shard_link_partition":
            federation = self.cluster.federation
            if federation is not None and federation.shards > 1:
                a, b = fault.shards
                host_a = federation.broker_host_of(a % federation.shards)
                host_b = federation.broker_host_of(b % federation.shards)
                if host_a != host_b:
                    # Cut only the broker↔broker link: every machine keeps
                    # its own shard's daemons and apps; just the borrow/loan
                    # control traffic between these two shards goes dark.
                    self.faults.add_link_block(host_a, host_b, fault.duration)
                    self.network.sever(self.faults.partitioned)
        elif kind == "journal_torn_write":
            broker = self.cluster.broker
            if broker is not None and broker.journal is not None:
                broker.journal.tear(fault.drop_chars)
        elif kind == "disk_stall":
            broker = self.cluster.broker
            if broker is not None and broker.journal is not None:
                broker.journal.stall(fault.duration)
        else:  # pragma: no cover - plan types are closed
            raise ValueError(f"unknown fault kind {kind!r}")

    def _broker_service(self, shard: int):
        """The broker service a shard-indexed fault targets: the federated
        shard when a federation runs, else the standalone broker (ignoring
        the index), else None."""
        federation = self.cluster.federation
        if federation is not None:
            return federation.services[shard % federation.shards]
        return self.cluster.broker

    def _kill_standby(self) -> int:
        broker = self.cluster.broker
        if broker is None or broker.standby_host is None:
            return 0
        machine = self.cluster.machines.get(broker.standby_host)
        if machine is None or not machine.up:
            return 0
        killed = 0
        for proc in list(machine.procs.values()):
            if proc.is_alive and proc.argv and proc.argv[0] == "rbstandby":
                proc.signal(SIGKILL)
                killed += 1
        return killed

    def _kill_daemons(self, host: str) -> int:
        machine = self.cluster.machines.get(host)
        if machine is None or not machine.up:
            return 0
        killed = 0
        for proc in list(machine.procs.values()):
            if proc.is_alive and proc.argv and proc.argv[0] == "rbdaemon":
                proc.signal(SIGKILL)
                killed += 1
        return killed

    def __repr__(self) -> str:
        return (
            f"<FaultInjector {len(self.injected)}/{len(self.plan)} injected>"
        )


def _jsonable(value):
    """Span attributes must survive JSONL export: tuples become lists."""
    if isinstance(value, tuple):
        return list(value)
    return value
