"""The pluggable network-fault model consulted by :mod:`repro.cluster.network`.

One :class:`NetworkFaults` instance attaches to a :class:`Network` (its
``faults`` attribute) and answers three questions on every send/connect:

* :meth:`partitioned` — are these two hosts on opposite sides of an active
  partition?  (Checked on both ``send`` and ``connect``.)
* :meth:`should_drop` — does an active lossy window eat this message?
  Probabilistic drops draw from the simulation RNG stream ``"faults.net"``,
  so a run's losses are a pure function of its seed.
* :meth:`latency` — the effective latency given any active spike.

Rules are windows in simulated time: each carries an expiry and is matched
against ``env.now``, so nothing needs to "turn faults off" — expired rules
are simply inert (and pruned lazily).  Severing established connections at
partition onset is the injector's job (:meth:`Network.sever`), not this
model's: this model only shapes traffic that is still flowing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.network import Network


@dataclass
class _PartitionRule:
    hosts: FrozenSet[str]
    until: float

    def cuts(self, a: Optional[str], b: Optional[str]) -> bool:
        """True iff ``a`` and ``b`` are on opposite sides of the cut."""
        return (a in self.hosts) != (b in self.hosts)


@dataclass
class _LinkRule:
    """Blocks exactly one host pair (a ship-link partition) — unlike
    :class:`_PartitionRule`, traffic to and from every other host flows."""

    pair: FrozenSet[str]
    until: float

    def cuts(self, a: Optional[str], b: Optional[str]) -> bool:
        return a != b and a in self.pair and b in self.pair


@dataclass
class _DropRule:
    until: float
    probability: float
    only_types: Optional[Tuple[str, ...]]

    def matches(self, message: object) -> bool:
        if self.only_types is None:
            return True
        mtype = message.get("type") if isinstance(message, dict) else None
        return mtype in self.only_types


@dataclass
class _SpikeRule:
    until: float
    factor: float


class NetworkFaults:
    """Active fault rules for one network (see module docstring)."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self.env = network.env
        self._rng = self.env.rng.stream("faults.net")
        self._partitions: List[_PartitionRule] = []
        self._links: List[_LinkRule] = []
        self._drops: List[_DropRule] = []
        self._spikes: List[_SpikeRule] = []

    # -- installing rules --------------------------------------------------

    def add_partition(self, hosts, duration: float) -> _PartitionRule:
        """Cut ``hosts`` off from all other machines until now+``duration``."""
        rule = _PartitionRule(
            hosts=frozenset(hosts), until=self.env.now + duration
        )
        self._partitions.append(rule)
        return rule

    def add_link_block(self, a: str, b: str, duration: float) -> _LinkRule:
        """Cut just the ``a``↔``b`` link until now+``duration`` (every other
        path stays up — the ship-link split-brain scenario)."""
        rule = _LinkRule(pair=frozenset((a, b)), until=self.env.now + duration)
        self._links.append(rule)
        return rule

    def add_drop_rule(
        self,
        duration: float,
        probability: float = 1.0,
        only_types: Optional[Tuple[str, ...]] = None,
    ) -> _DropRule:
        """Drop matching sends with ``probability`` until now+``duration``."""
        rule = _DropRule(
            until=self.env.now + duration,
            probability=probability,
            only_types=tuple(only_types) if only_types is not None else None,
        )
        self._drops.append(rule)
        return rule

    def add_latency_spike(self, duration: float, factor: float) -> _SpikeRule:
        """Multiply latency by ``factor`` until now+``duration``."""
        rule = _SpikeRule(until=self.env.now + duration, factor=factor)
        self._spikes.append(rule)
        return rule

    # -- queries (hot path: called on every send) --------------------------

    def partitioned(self, a: Optional[str], b: Optional[str]) -> bool:
        """True iff an active partition or link block separates ``a`` and
        ``b``."""
        if not self._partitions and not self._links:
            return False
        now = self.env.now
        self._partitions = [p for p in self._partitions if p.until > now]
        if any(p.cuts(a, b) for p in self._partitions):
            return True
        self._links = [r for r in self._links if r.until > now]
        return any(r.cuts(a, b) for r in self._links)

    def should_drop(
        self, src: Optional[str], dst: Optional[str], message: object
    ) -> bool:
        """True iff an active lossy window eats this message.

        Draws from the ``"faults.net"`` stream only for rules that match the
        window and message type, so unrelated traffic does not perturb the
        stream (keeping drop decisions stable as protocols evolve).
        """
        if not self._drops:
            return False
        now = self.env.now
        self._drops = [d for d in self._drops if d.until > now]
        for rule in self._drops:
            if rule.matches(message):
                if rule.probability >= 1.0:
                    return True
                if float(self._rng.uniform(0.0, 1.0)) < rule.probability:
                    return True
        return False

    def latency(self, base: float) -> float:
        """Effective latency for one message (spikes compound)."""
        if not self._spikes:
            return base
        now = self.env.now
        self._spikes = [s for s in self._spikes if s.until > now]
        for rule in self._spikes:
            base *= rule.factor
        return base

    def __repr__(self) -> str:
        return (
            f"<NetworkFaults partitions={len(self._partitions)} "
            f"links={len(self._links)} "
            f"drops={len(self._drops)} spikes={len(self._spikes)}>"
        )


def install(network: "Network") -> NetworkFaults:
    """Attach a fault model to ``network`` (idempotent) and return it."""
    if network.faults is None:
        network.faults = NetworkFaults(network)
    return network.faults
