"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is a plain list of fault records, each stamped with the
simulated instant it fires.  Plans are data, not behaviour: the same plan can
be printed, diffed, stored next to an experiment's results, and — because
:meth:`FaultPlan.generate` draws every time and host from a named stream of
the simulation's :class:`~repro.sim.rng.SimRandom` — the same seed always
yields the same schedule, which is what makes chaos runs byte-reproducible.

Fault taxonomy (see DESIGN.md §9 for the detection/recovery story):

==================  ========================================================
fault               effect
==================  ========================================================
MachineCrash        power loss on one host (+ optional delayed reboot)
DaemonKill          SIGKILL the monitoring daemon on one host
Partition           a group of hosts is cut off from the rest for a window;
                    established connections across the cut are severed
MessageDrop         a lossy window: sends (optionally only of given message
                    types) are dropped with a probability
LatencySpike        all message latencies multiplied for a window
BrokerCrash         SIGKILL the broker process (jobs run on, unmanaged)
BrokerRestart       boot a fresh broker incarnation (epoch + 1); daemons
                    re-register and apps resume their sessions
StandbyCrash        SIGKILL the warm-standby replica (keeper respawns it;
                    it resumes the ship stream from its persisted offset)
ShipLinkPartition   cut only the primary↔standby link for a window: the
                    standby promotes falsely and fencing must resolve the
                    split brain
ShardLinkPartition  cut one inter-shard broker↔broker link for a window: a
                    federated shard keeps serving its own machines but its
                    borrow RPCs to (and loan notices from) one sibling go
                    dark; loans across the cut self-heal via lease expiry
JournalTornWrite    truncate the tail of the broker's on-disk journal (a
                    partially persisted append, as after power loss)
DiskStall           the broker's journal device stops accepting flushes for
                    a window (hung disk / saturated write cache)
==================  ========================================================

``BrokerCrash`` and ``BrokerRestart`` carry a ``shard`` index (default 0):
against a federation they target that shard's broker, against a standalone
broker the index is ignored, so existing plans replay unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class MachineCrash:
    """Power loss on ``host`` at ``at``; reboots after ``reboot_after``
    seconds (None = stays down)."""

    at: float
    host: str
    reboot_after: Optional[float] = None

    kind = "machine_crash"


@dataclass(frozen=True)
class DaemonKill:
    """SIGKILL every ``rbdaemon`` process on ``host`` at ``at``."""

    at: float
    host: str

    kind = "daemon_kill"


@dataclass(frozen=True)
class Partition:
    """Cut ``hosts`` off from every other machine for ``duration`` seconds."""

    at: float
    duration: float
    hosts: Tuple[str, ...]

    kind = "partition"


@dataclass(frozen=True)
class MessageDrop:
    """Drop sends with ``probability`` for ``duration`` seconds.

    ``only_types`` restricts the rule to wire messages whose ``"type"`` key
    is listed (e.g. ``("daemon_report",)`` to starve the broker's heartbeat
    without breaking request/reply protocols); None matches every message.
    """

    at: float
    duration: float
    probability: float = 1.0
    only_types: Optional[Tuple[str, ...]] = None

    kind = "message_drop"


@dataclass(frozen=True)
class LatencySpike:
    """Multiply network latency by ``factor`` for ``duration`` seconds."""

    at: float
    duration: float
    factor: float = 10.0

    kind = "latency_spike"


@dataclass(frozen=True)
class BrokerCrash:
    """SIGKILL the broker process at ``at``.

    Not host-targeted: the service harness knows where its broker lives.
    ``shard`` picks which federated shard's broker to kill (ignored by a
    standalone broker).  Jobs keep running unmanaged until a
    :class:`BrokerRestart` brings a new incarnation up."""

    at: float
    shard: int = 0

    kind = "broker_crash"


@dataclass(frozen=True)
class BrokerRestart:
    """Boot a fresh broker incarnation at ``at`` (epoch + 1, blank state).

    Recovery is driven by the peers: daemons re-register with their lease
    inventories and apps resume their sessions by (jobid, epoch).
    ``shard`` picks which federated shard to restart (ignored by a
    standalone broker)."""

    at: float
    shard: int = 0

    kind = "broker_restart"


@dataclass(frozen=True)
class StandbyCrash:
    """SIGKILL the warm-standby replica process at ``at``.

    Not host-targeted: the service harness knows where its standby lives.
    The primary's standby keeper notices the dropped ship session and
    respawns it; the respawned replica resumes the stream from its locally
    persisted offset.  No-op on a cluster without a configured standby."""

    at: float

    kind = "standby_crash"


@dataclass(frozen=True)
class ShipLinkPartition:
    """Cut just the primary↔standby link for ``duration`` seconds.

    The nastiest failure in the warm-standby design: both brokers stay up
    and both stay reachable from the daemons, but the ship stream (and its
    heartbeats) goes dark — so the standby promotes *falsely* and the
    epoch-fencing protocol must resolve the resulting split brain.  No-op
    without a configured standby."""

    at: float
    duration: float = 12.0

    kind = "ship_link_partition"


@dataclass(frozen=True)
class ShardLinkPartition:
    """Cut just the link between two federated shards' brokers for
    ``duration`` seconds.

    Every machine stays reachable from its own shard — only the
    borrow/loan control traffic between ``shards[0]`` and ``shards[1]``
    goes dark.  Borrow RPCs across the cut fail fast or time out (the
    borrower walks on around the ring), loan-return notices are lost (the
    donor reclaims via lease expiry), and no machine may ever end up
    grantable on both sides.  No-op without a multi-shard federation."""

    at: float
    duration: float = 12.0
    shards: Tuple[int, int] = (0, 1)

    kind = "shard_link_partition"


@dataclass(frozen=True)
class JournalTornWrite:
    """Drop the last ``drop_chars`` characters of the broker journal's
    newest WAL file at ``at`` — the on-disk shadow of an append that was
    only partially persisted when power went out.  Recovery must treat the
    torn tail as absent, not as corruption of the whole journal.

    No-op on a cluster whose broker runs without a journal."""

    at: float
    drop_chars: int = 24

    kind = "journal_torn_write"


@dataclass(frozen=True)
class DiskStall:
    """The broker's journal device accepts no flushes for ``duration``
    seconds starting at ``at`` (hung disk, saturated write cache).  The
    broker keeps running — appends buffer in memory — but a crash inside
    the window loses everything buffered since the stall began."""

    at: float
    duration: float = 5.0

    kind = "disk_stall"


Fault = Union[
    MachineCrash,
    DaemonKill,
    Partition,
    MessageDrop,
    LatencySpike,
    BrokerCrash,
    BrokerRestart,
    StandbyCrash,
    ShipLinkPartition,
    ShardLinkPartition,
    JournalTornWrite,
    DiskStall,
]


@dataclass
class FaultPlan:
    """An ordered schedule of faults to inject into one run."""

    faults: List[Fault] = field(default_factory=list)

    def add(self, fault: Fault) -> "FaultPlan":
        """Append ``fault``; returns self for chaining."""
        self.faults.append(fault)
        return self

    def sorted(self) -> List[Fault]:
        """Faults in firing order (stable for equal times)."""
        return sorted(self.faults, key=lambda f: f.at)

    def count(self, kind: str) -> int:
        """Number of scheduled faults of one kind."""
        return sum(1 for f in self.faults if f.kind == kind)

    def summary(self) -> str:
        """One line per fault, in firing order."""
        lines = []
        for fault in self.sorted():
            desc = ", ".join(
                f"{key}={value!r}"
                for key, value in vars(fault).items()
                if key != "at"
            )
            lines.append(f"t={fault.at:8.3f}  {fault.kind}  {desc}")
        return "\n".join(lines)

    @classmethod
    def generate(
        cls,
        rng,
        hosts,
        start: float = 10.0,
        window: float = 60.0,
        crashes: int = 3,
        daemon_kills: int = 1,
        partitions: int = 1,
        drop_windows: int = 1,
        latency_spikes: int = 1,
        reboot_after: float = 8.0,
        partition_duration: float = 12.0,
        drop_duration: float = 10.0,
        drop_probability: float = 0.7,
        drop_types: Optional[Tuple[str, ...]] = ("daemon_report",),
        spike_duration: float = 8.0,
        spike_factor: float = 25.0,
        broker_crashes: int = 0,
        broker_restart_after: float = 4.0,
        broker_restarts: bool = True,
        torn_writes: int = 0,
        disk_stalls: int = 0,
        stall_duration: float = 6.0,
        standby_crashes: int = 0,
        ship_partitions: int = 0,
        ship_partition_duration: float = 12.0,
        broker_crash_shard: int = 0,
        shard_link_partitions: int = 0,
        shard_link_duration: float = 12.0,
        shard_link_pair: Tuple[int, int] = (0, 1),
    ) -> "FaultPlan":
        """Draw a random plan over ``hosts`` from ``rng`` (a numpy Generator,
        typically ``env.rng.stream("faults.plan")`` so the schedule is a pure
        function of the run seed).

        Fault times are uniform over ``[start, start + window)``; crash and
        kill victims are uniform over ``hosts``; each partition cuts off a
        random third of ``hosts`` (at least one).  Each broker crash is
        paired with a restart ``broker_restart_after`` seconds later (the
        broker-draw block comes last so plans with ``broker_crashes=0``
        reproduce pre-broker-fault schedules byte-for-byte).
        """
        hosts = list(hosts)
        if not hosts:
            raise ValueError("generate needs at least one host")
        plan = cls()

        def when() -> float:
            return float(rng.uniform(start, start + window))

        def victim() -> str:
            return hosts[int(rng.integers(0, len(hosts)))]

        for _ in range(crashes):
            plan.add(MachineCrash(at=when(), host=victim(), reboot_after=reboot_after))
        for _ in range(daemon_kills):
            plan.add(DaemonKill(at=when(), host=victim()))
        for _ in range(partitions):
            size = max(1, len(hosts) // 3)
            picked = [hosts[i] for i in rng.permutation(len(hosts))[:size]]
            plan.add(
                Partition(
                    at=when(),
                    duration=partition_duration,
                    hosts=tuple(sorted(picked)),
                )
            )
        for _ in range(drop_windows):
            plan.add(
                MessageDrop(
                    at=when(),
                    duration=drop_duration,
                    probability=drop_probability,
                    only_types=drop_types,
                )
            )
        for _ in range(latency_spikes):
            plan.add(
                LatencySpike(at=when(), duration=spike_duration, factor=spike_factor)
            )
        # Broker faults draw last: adding them must not reshuffle the draws
        # (and so the schedule) of every other fault kind under a fixed seed.
        crash_times = []
        for _ in range(broker_crashes):
            crash_at = when()
            crash_times.append(crash_at)
            plan.add(BrokerCrash(at=crash_at, shard=broker_crash_shard))
            # ``broker_restarts=False`` (warm-standby runs: recovery comes
            # from promotion, not restart) consumes no draw, so flipping it
            # leaves every other fault's schedule untouched.
            if broker_restarts:
                plan.add(
                    BrokerRestart(
                        at=crash_at + broker_restart_after,
                        shard=broker_crash_shard,
                    )
                )
        # Journal faults draw after the broker block for the same reason.
        # A torn write pairs with a broker crash when one is scheduled (the
        # tear fires at the same instant; sorted() is stable, so the crash —
        # added first — injects first and the tear truncates what the dead
        # broker had persisted), otherwise it draws its own time.
        for i in range(torn_writes):
            tear_at = crash_times[i] if i < len(crash_times) else when()
            plan.add(
                JournalTornWrite(
                    at=tear_at, drop_chars=int(rng.integers(8, 64))
                )
            )
        for _ in range(disk_stalls):
            plan.add(DiskStall(at=when(), duration=stall_duration))
        # Warm-standby faults draw last of all (same schedule-stability rule:
        # zero-count plans reproduce pre-standby schedules byte-for-byte).
        for _ in range(standby_crashes):
            plan.add(StandbyCrash(at=when()))
        for _ in range(ship_partitions):
            plan.add(
                ShipLinkPartition(at=when(), duration=ship_partition_duration)
            )
        # Federation faults draw last of all (the same stability rule again:
        # zero-count plans reproduce pre-federation schedules byte-for-byte).
        for _ in range(shard_link_partitions):
            plan.add(
                ShardLinkPartition(
                    at=when(),
                    duration=shard_link_duration,
                    shards=tuple(shard_link_pair),
                )
            )
        return plan

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        kinds = {}
        for fault in self.faults:
            kinds[fault.kind] = kinds.get(fault.kind, 0) + 1
        inner = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return f"<FaultPlan {len(self.faults)} faults: {inner}>"
