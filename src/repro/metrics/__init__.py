"""Measurement helpers for the reproduced experiments."""

from repro.metrics.utilization import UtilizationMeter
from repro.metrics.timers import ElapsedTimer, grant_timeline
from repro.metrics.timeline import (
    Interval,
    allocation_intervals,
    machine_busy_fraction,
    render_gantt,
)

__all__ = [
    "ElapsedTimer",
    "Interval",
    "UtilizationMeter",
    "allocation_intervals",
    "grant_timeline",
    "machine_busy_fraction",
    "render_gantt",
]
