"""Allocation timelines: turn the broker event log into a machine Gantt.

The broker's event log records every grant/release; this module folds it
into per-machine occupancy intervals and renders a text Gantt chart — the
quickest way to *see* an adaptive job breathing around sequential arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class Interval:
    """One machine-to-job occupancy interval."""

    host: str
    jobid: int
    start: float
    end: Optional[float] = None  # None = still allocated


def allocation_intervals(events, until: Optional[float] = None) -> List[Interval]:
    """Fold grant/released/job_done events into occupancy intervals."""
    open_by_host: Dict[str, Interval] = {}
    intervals: List[Interval] = []
    for event in events:
        kind = event.get("event")
        if kind == "grant":
            interval = Interval(
                host=event["host"], jobid=event["jobid"], start=event["time"]
            )
            open_by_host[event["host"]] = interval
            intervals.append(interval)
        elif kind == "released":
            interval = open_by_host.pop(event["host"], None)
            if interval is not None:
                interval.end = event["time"]
        elif kind == "job_done":
            for host, interval in list(open_by_host.items()):
                if interval.jobid == event["jobid"]:
                    interval.end = event["time"]
                    del open_by_host[host]
    if until is not None:
        for interval in intervals:
            if interval.end is None:
                interval.end = until
    return intervals


def render_gantt(
    intervals: List[Interval],
    t0: float,
    t1: float,
    width: int = 72,
) -> str:
    """Render intervals as a fixed-width text Gantt.

    Each machine gets a row; each occupied cell shows the job id (mod 10),
    free time shows as ``.``.
    """
    if t1 <= t0:
        raise ValueError("empty time window")
    hosts = sorted({iv.host for iv in intervals})
    scale = width / (t1 - t0)
    lines = [
        f"t = [{t0:.1f}s .. {t1:.1f}s], one column ~ "
        f"{(t1 - t0) / width:.2f}s; digit = job id mod 10, '.' = free"
    ]
    for host in hosts:
        row = ["."] * width
        for interval in intervals:
            if interval.host != host:
                continue
            end = interval.end if interval.end is not None else t1
            lo = max(0, int((interval.start - t0) * scale))
            hi = min(width, max(lo + 1, int((end - t0) * scale)))
            for col in range(lo, hi):
                row[col] = str(interval.jobid % 10)
        lines.append(f"{host:<8} {''.join(row)}")
    return "\n".join(lines)


def machine_busy_fraction(
    intervals: List[Interval], host: str, t0: float, t1: float
) -> float:
    """Fraction of [t0, t1] during which ``host`` held an allocation."""
    total = 0.0
    for interval in intervals:
        if interval.host != host:
            continue
        end = interval.end if interval.end is not None else t1
        lo, hi = max(interval.start, t0), min(end, t1)
        if hi > lo:
            total += hi - lo
    return total / (t1 - t0) if t1 > t0 else 0.0
