"""Elapsed-time capture and broker event-log reductions.

.. deprecated::
    New code should use :mod:`repro.obs` instead: spans
    (:class:`repro.obs.Tracer`) subsume :class:`ElapsedTimer` for anything on
    the allocation path, and :func:`repro.obs.grant_times` replaces
    :func:`grant_timeline`.  These helpers remain as thin compatibility
    shims for existing harness code.
"""

from __future__ import annotations

from typing import List, Optional


class ElapsedTimer:
    """Measure simulated elapsed time around an operation.

    .. deprecated:: Prefer a span from :class:`repro.obs.Tracer` — a span
       records the same start/stop pair *and* lands in the exported trace.
    """

    def __init__(self, env) -> None:
        self.env = env
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    def start(self) -> "ElapsedTimer":
        """Mark the start instant; returns self for chaining."""
        self.started_at = self.env.now
        return self

    def stop(self) -> float:
        """Mark the stop instant and return the elapsed time."""
        self.stopped_at = self.env.now
        return self.elapsed

    @property
    def elapsed(self) -> float:
        if self.started_at is None:
            raise RuntimeError("timer not started")
        end = self.stopped_at if self.stopped_at is not None else self.env.now
        return end - self.started_at


def grant_timeline(service, jobid: int, since: float = 0.0) -> List[float]:
    """Times of `grant` events for one job, relative to ``since``.

    .. deprecated:: Thin shim over :func:`repro.obs.grant_times`, which reads
       the span tree (a granted ``broker.request`` span ends at exactly the
       instant the grant event used to be logged).
    """
    from repro.obs import grant_times

    return grant_times(service, jobid, since)
