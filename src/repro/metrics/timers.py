"""Elapsed-time capture and broker event-log reductions."""

from __future__ import annotations

from typing import List, Optional


class ElapsedTimer:
    """Measure simulated elapsed time around an operation."""

    def __init__(self, env) -> None:
        self.env = env
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    def start(self) -> "ElapsedTimer":
        """Mark the start instant; returns self for chaining."""
        self.started_at = self.env.now
        return self

    def stop(self) -> float:
        """Mark the stop instant and return the elapsed time."""
        self.stopped_at = self.env.now
        return self.elapsed

    @property
    def elapsed(self) -> float:
        if self.started_at is None:
            raise RuntimeError("timer not started")
        end = self.stopped_at if self.stopped_at is not None else self.env.now
        return end - self.started_at


def grant_timeline(service, jobid: int, since: float = 0.0) -> List[float]:
    """Times of `grant` events for one job, relative to ``since``."""
    return sorted(
        e["time"] - since
        for e in service.events_of("grant")
        if e["jobid"] == jobid and e["time"] >= since
    )
