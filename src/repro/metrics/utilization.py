"""Cluster CPU utilization / detected idleness (paper §6.2, final experiment).

"After five hours, the total detected idleness (the total amount of time that
the machines were idle) was less than 1%."  The meter integrates each
machine's busy CPU fraction (from the processor-sharing model) over a window
and reports the complement.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class UtilizationMeter:
    """Windowed busy/idle accounting over a set of machines."""

    def __init__(self, cluster, hosts: Optional[Iterable[str]] = None) -> None:
        self.cluster = cluster
        self.hosts = list(hosts if hosts is not None else cluster.machines)
        self._started_at: Optional[float] = None

    def start(self) -> None:
        """Begin the measurement window at the current instant."""
        self._started_at = self.cluster.env.now
        for host in self.hosts:
            self.cluster.machines[host].cpu.reset_accounting()

    def utilization_by_host(self) -> Dict[str, float]:
        """Mean busy fraction per machine since :meth:`start`."""
        if self._started_at is None:
            raise RuntimeError("meter not started")
        return {
            host: self.cluster.machines[host].cpu.utilization()
            for host in self.hosts
        }

    def utilization(self) -> float:
        """Mean busy fraction across all measured machines.

        An empty host set measures nothing: report 0.0 busy rather than
        dividing by zero.
        """
        per_host = self.utilization_by_host()
        if not per_host:
            return 0.0
        return sum(per_host.values()) / len(per_host)

    def idleness(self) -> float:
        """The paper's "total detected idleness": 1 - utilization."""
        return 1.0 - self.utilization()
