"""``repro.obs`` — end-to-end allocation tracing and metrics.

The observability layer the evaluation rests on: every headline number in
the paper is a latency decomposition of the allocation protocol, and this
package makes those decompositions first-class instead of ad-hoc timer
arithmetic.  It provides:

* :mod:`repro.obs.spans` — a span tracer with context propagation through
  the simulated process tree (``RB_TRACE`` environ) and the wire protocol;
* :mod:`repro.obs.metrics` — counters/gauges/histograms keyed on simulated
  time;
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` exporters plus
  the multi-run :class:`~repro.obs.export.TraceCollector`;
* :mod:`repro.obs.queries` — span-tree queries (grant timelines, phase
  durations, connectivity checks);
* :mod:`repro.obs.timeseries` — bounded instruments (mergeable histogram
  digests, ring-capped series, windowed rates, online phase folding);
* :mod:`repro.obs.health` — simulated-time watchdogs and SLO reports.

Every :class:`~repro.cluster.network.Network` owns a tracer and a registry;
program bodies reach them through :func:`tracer_of` / :func:`metrics_of`.
"""

from repro.obs.export import (
    TraceCollector,
    span_record,
    to_chrome,
    to_jsonl,
    write_trace,
)
from repro.obs.health import (
    HealthMonitor,
    HealthReport,
    HealthThresholds,
    SLOReport,
    evaluate_slos,
)
from repro.obs.metrics import (
    METRICS_MODE_ENVIRON_KEY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.queries import (
    format_trace,
    grant_times,
    is_connected,
    phase_durations,
    trace_root,
)
from repro.obs.spans import (
    TRACE_ENVIRON_KEY,
    TRACE_SAMPLE_ENVIRON_KEY,
    Span,
    Tracer,
    context_from_environ,
    format_context,
    parse_context,
)
from repro.obs.timeseries import (
    HistogramDigest,
    SeriesBuffer,
    SpanPhaseFolder,
    phase_of_span,
    windowed_rate,
)

__all__ = [
    "METRICS_MODE_ENVIRON_KEY",
    "TRACE_ENVIRON_KEY",
    "TRACE_SAMPLE_ENVIRON_KEY",
    "Counter",
    "Gauge",
    "HealthMonitor",
    "HealthReport",
    "HealthThresholds",
    "Histogram",
    "HistogramDigest",
    "MetricsRegistry",
    "SLOReport",
    "SeriesBuffer",
    "Span",
    "SpanPhaseFolder",
    "TraceCollector",
    "Tracer",
    "context_from_environ",
    "evaluate_slos",
    "format_context",
    "format_trace",
    "grant_times",
    "is_connected",
    "metrics_of",
    "parse_context",
    "phase_durations",
    "phase_of_span",
    "span_record",
    "to_chrome",
    "to_jsonl",
    "trace_root",
    "tracer_of",
    "windowed_rate",
]


def tracer_of(proc) -> Tracer:
    """The tracer of the network ``proc``'s machine belongs to."""
    return proc.machine.network.tracer


def metrics_of(proc) -> MetricsRegistry:
    """The metrics registry of the network ``proc``'s machine belongs to."""
    return proc.machine.network.metrics
