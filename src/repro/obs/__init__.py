"""``repro.obs`` — end-to-end allocation tracing and metrics.

The observability layer the evaluation rests on: every headline number in
the paper is a latency decomposition of the allocation protocol, and this
package makes those decompositions first-class instead of ad-hoc timer
arithmetic.  It provides:

* :mod:`repro.obs.spans` — a span tracer with context propagation through
  the simulated process tree (``RB_TRACE`` environ) and the wire protocol;
* :mod:`repro.obs.metrics` — counters/gauges/histograms keyed on simulated
  time;
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` exporters plus
  the multi-run :class:`~repro.obs.export.TraceCollector`;
* :mod:`repro.obs.queries` — span-tree queries (grant timelines, phase
  durations, connectivity checks).

Every :class:`~repro.cluster.network.Network` owns a tracer and a registry;
program bodies reach them through :func:`tracer_of` / :func:`metrics_of`.
"""

from repro.obs.export import (
    TraceCollector,
    span_record,
    to_chrome,
    to_jsonl,
    write_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.queries import (
    format_trace,
    grant_times,
    is_connected,
    phase_durations,
    trace_root,
)
from repro.obs.spans import (
    TRACE_ENVIRON_KEY,
    Span,
    Tracer,
    context_from_environ,
    format_context,
    parse_context,
)

__all__ = [
    "TRACE_ENVIRON_KEY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceCollector",
    "Tracer",
    "context_from_environ",
    "format_context",
    "format_trace",
    "grant_times",
    "is_connected",
    "metrics_of",
    "parse_context",
    "phase_durations",
    "span_record",
    "to_chrome",
    "to_jsonl",
    "trace_root",
    "tracer_of",
    "write_trace",
]


def tracer_of(proc) -> Tracer:
    """The tracer of the network ``proc``'s machine belongs to."""
    return proc.machine.network.tracer


def metrics_of(proc) -> MetricsRegistry:
    """The metrics registry of the network ``proc``'s machine belongs to."""
    return proc.machine.network.metrics
