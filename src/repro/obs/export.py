"""Trace exporters: JSONL and Chrome ``trace_event`` format.

Two outputs, two audiences:

* **JSONL** — one span per line, stable key order; the machine-diffable form
  (the determinism tests pin byte-identical exports for identical seeds, and
  perf PRs can diff per-phase breakdowns instead of only totals);
* **Chrome trace** — a ``{"traceEvents": [...]}`` document loadable in
  ``about:tracing`` or https://ui.perfetto.dev; each simulated machine
  becomes a "process" row, each component (app, broker, rsh, module, ...) a
  "thread" within it, and metrics become counter tracks.

Simulated seconds are mapped to trace microseconds, so 1 simulated second
reads as 1 s in the viewer.

:class:`TraceCollector` accumulates spans from the *several* clusters a
single experiment builds (Table 1 alone boots six) into one file, with each
measurement labelled as its own process group.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, Tracer

#: Simulated seconds -> Chrome trace microseconds.
_US = 1_000_000.0


def span_record(span: Span, now: Optional[float] = None) -> Dict[str, Any]:
    """The JSONL dict for one span (open spans clamp to ``now``)."""
    end = span.ended_at
    if end is None and now is not None:
        end = now
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.started_at,
        "end": end,
        "open": span.ended_at is None,
        "attrs": span.attrs,
    }


def to_jsonl(spans: List[Span], now: Optional[float] = None) -> str:
    """Render spans as JSON Lines, one span per line, stable key order."""
    lines = [
        json.dumps(span_record(span, now=now), sort_keys=True, default=str)
        for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _actor_of(span: Span) -> str:
    actor = span.attrs.get("actor")
    if actor:
        return str(actor)
    return span.name.split(".", 1)[0]


def to_chrome(
    spans: List[Span],
    metrics: Optional[MetricsRegistry] = None,
    now: Optional[float] = None,
    label: Optional[str] = None,
    _state: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from spans (+ metrics).

    ``label`` prefixes the process names (used when merging several runs);
    ``_state`` is the collector's shared pid/tid allocator, internal.
    """
    state = _state if _state is not None else {"pids": {}, "tids": {}, "events": []}
    pids: Dict[Tuple[str, str], int] = state["pids"]
    tids: Dict[Tuple[int, str], int] = state["tids"]
    events: List[Dict[str, Any]] = state["events"]

    def pid_for(host: str) -> int:
        key = (label or "", host)
        if key not in pids:
            pids[key] = len(pids) + 1
            name = host if not label else f"{label}: {host}"
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[key],
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        return pids[key]

    def tid_for(pid: int, actor: str) -> int:
        key = (pid, actor)
        if key not in tids:
            tids[key] = sum(1 for p, _ in tids if p == pid) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tids[key],
                    "args": {"name": actor},
                }
            )
        return tids[key]

    for span in spans:
        end = span.ended_at
        if end is None:
            end = now if now is not None else span.started_at
        pid = pid_for(str(span.attrs.get("host", "sim")))
        tid = tid_for(pid, _actor_of(span))
        args = {k: v for k, v in span.attrs.items() if k not in ("host", "actor")}
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": _actor_of(span),
                "ts": span.started_at * _US,
                "dur": max(0.0, end - span.started_at) * _US,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    if metrics is not None:
        pid = pid_for("metrics")
        for metric in metrics.all_metrics():
            samples = getattr(metric, "samples", None)
            if not samples:
                continue
            for when, value in samples:
                events.append(
                    {
                        "ph": "C",
                        "name": metric.name,
                        "ts": when * _US,
                        "pid": pid,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(
    path: str,
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
) -> str:
    """Export one tracer to ``path``; format chosen by extension.

    ``.jsonl`` writes JSON Lines, anything else the Chrome trace document.
    Returns the path for chaining.
    """
    now = tracer.env.now
    if path.endswith(".jsonl"):
        payload = to_jsonl(tracer.spans, now=now)
    else:
        payload = json.dumps(to_chrome(tracer.spans, metrics=metrics, now=now))
    with open(path, "w") as fh:
        fh.write(payload)
    return path


class TraceCollector:
    """Accumulates traces from the many clusters one experiment builds.

    Experiment harnesses call :meth:`add_cluster` after each measurement;
    :meth:`write` then emits a single file with one labelled process group
    per measurement.  Each cluster keeps its own simulated timeline (they
    all start at t=0), which the Chrome viewer handles naturally since the
    groups are distinct processes.
    """

    def __init__(self) -> None:
        self.runs: List[Tuple[str, List[Span], Optional[MetricsRegistry], float]] = []

    def add_cluster(self, cluster: Any, label: Optional[str] = None) -> None:
        """Capture a cluster's tracer (and metrics) under ``label``."""
        network = cluster.network
        self.add_tracer(network.tracer, label=label, metrics=network.metrics)

    def add_tracer(
        self,
        tracer: Tracer,
        label: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        """Capture one tracer's spans under ``label``."""
        name = label if label is not None else f"run{len(self.runs)}"
        self.runs.append((name, list(tracer.spans), metrics, tracer.env.now))

    def jsonl(self) -> str:
        """All runs as JSON Lines; each record carries its run label."""
        lines = []
        for name, spans, _metrics, now in self.runs:
            for span in spans:
                record = span_record(span, now=now)
                record["run"] = name
                lines.append(json.dumps(record, sort_keys=True, default=str))
        return "\n".join(lines) + ("\n" if lines else "")

    def chrome(self) -> Dict[str, Any]:
        """All runs as one Chrome trace document (one group per run)."""
        state: Dict[str, Any] = {"pids": {}, "tids": {}, "events": []}
        doc: Dict[str, Any] = {"traceEvents": state["events"], "displayTimeUnit": "ms"}
        for name, spans, metrics, now in self.runs:
            doc = to_chrome(spans, metrics=metrics, now=now, label=name, _state=state)
        return doc

    def write(self, path: str) -> str:
        """Write the collected trace; ``.jsonl`` selects JSON Lines."""
        if path.endswith(".jsonl"):
            payload = self.jsonl()
        else:
            payload = json.dumps(self.chrome())
        with open(path, "w") as fh:
            fh.write(payload)
        return path

    def __repr__(self) -> str:
        total = sum(len(spans) for _, spans, _, _ in self.runs)
        return f"<TraceCollector runs={len(self.runs)} spans={total}>"
