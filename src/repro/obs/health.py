"""Simulated-time health watchdogs and SLO reports for the broker.

The chaos experiment proved the broker *recovers*; this module watches it
*while it runs*.  A :class:`HealthMonitor` is an ordinary simulation process
ticking on the simulated clock, so its checks are deterministic facts of the
run like everything else.  Each pass evaluates three watchdogs against live
broker state:

* **stuck allocations** — a machine in RECLAIMING longer than the threshold
  (the revoke went out, nobody released; the dual of the lease sweeper's
  expiry, caught *before* the lease runs out);
* **heartbeat gaps** — a tracked machine silent longer than the liveness
  deadline (the sweeper should have acted; a gap beyond it means detection
  itself is lagging);
* **queue-depth watermarks** — the pending queue above its high-water
  threshold (demand outrunning supply, or a scheduler stall);
* **journal flush lag** — on a durable broker, buffered journal records
  older than a few flush intervals (a stalled disk or wedged flusher:
  exactly the state a crash would turn into lost durability);
* **replication lag** — on a broker with a warm standby, flushed-but-unacked
  ship-stream characters beyond the threshold (a slow, dead or partitioned
  standby: exactly the window a failover would lose).

Anomalies are edge-triggered into ``health.*`` counters and the broker
event log, and summarised in an end-of-run :class:`HealthReport` — which is
also the single source of truth for the chaos table's ``stuck_allocations``.
:func:`evaluate_slos` turns a report plus the grant-wait histogram into a
pass/fail :class:`SLOReport` (the ``python -m repro slo`` command).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class HealthThresholds:
    """Watchdog thresholds; ``None`` fields derive from the calibration.

    ``stuck_after`` defaults to the lease TTL (a reclaim outliving a whole
    lease is stuck), ``heartbeat_gap`` to the liveness deadline,
    ``queue_high`` to ``max(4, managed machines)``, ``journal_lag`` to
    four flush intervals (a healthy flusher drains well within one), and
    ``replication_lag`` to the calibration's ``replication_lag_chars``
    (the in-flight ship window a healthy standby acks promptly).
    """

    check_interval: float = 5.0
    stuck_after: Optional[float] = None
    heartbeat_gap: Optional[float] = None
    queue_high: Optional[int] = None
    journal_lag: Optional[float] = None
    replication_lag: Optional[int] = None


@dataclass
class HealthReport:
    """End-of-run summary of everything the watchdogs saw.

    ``stuck_allocations`` is the number of machines still holding an
    allocation at report time — the chaos experiment's leaked-allocation
    count (its meta is emitted from here).
    """

    time: float
    checks: int
    stuck_allocations: int
    allocated_hosts: List[str] = field(default_factory=list)
    stuck_events: int = 0
    heartbeat_gap_events: int = 0
    max_heartbeat_gap: float = 0.0
    queue_breaches: int = 0
    queue_high_watermark: int = 0
    pending: int = 0
    journal_lag_events: int = 0
    max_journal_lag: float = 0.0
    replication_lag_events: int = 0
    max_replication_lag: int = 0

    @property
    def healthy(self) -> bool:
        """No stuck-allocation anomalies were ever flagged.

        Deliberately *not* ``stuck_allocations == 0``: machines held by a
        still-running job at report time are normal for a mid-flight
        snapshot; only drained runs (chaos) should insist the count is
        zero, which they assert on ``stuck_allocations`` directly."""
        return self.stuck_events == 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (deterministic; safe to embed in merged docs)."""
        return {
            "time": round(self.time, 6),
            "checks": self.checks,
            "stuck_allocations": self.stuck_allocations,
            "allocated_hosts": list(self.allocated_hosts),
            "stuck_events": self.stuck_events,
            "heartbeat_gap_events": self.heartbeat_gap_events,
            "max_heartbeat_gap": round(self.max_heartbeat_gap, 6),
            "queue_breaches": self.queue_breaches,
            "queue_high_watermark": self.queue_high_watermark,
            "pending": self.pending,
            "journal_lag_events": self.journal_lag_events,
            "max_journal_lag": round(self.max_journal_lag, 6),
            "replication_lag_events": self.replication_lag_events,
            "max_replication_lag": self.max_replication_lag,
            "healthy": self.healthy,
        }

    def render(self) -> str:
        """Human-readable health summary."""
        verdict = "healthy" if self.healthy else "UNHEALTHY"
        lines = [
            f"== health @ t={self.time:.3f}s: {verdict} "
            f"({self.checks} checks) ==",
            (
                f"stuck allocations: {self.stuck_allocations} "
                f"(events: {self.stuck_events})"
            ),
            (
                f"heartbeat gaps: {self.heartbeat_gap_events} "
                f"(max gap: {self.max_heartbeat_gap:.3f}s)"
            ),
            (
                f"queue: high watermark {self.queue_high_watermark}, "
                f"{self.queue_breaches} breaches, "
                f"{self.pending} pending at end"
            ),
        ]
        if self.journal_lag_events or self.max_journal_lag:
            lines.append(
                f"journal lag: {self.journal_lag_events} events "
                f"(max lag: {self.max_journal_lag:.3f}s)"
            )
        if self.replication_lag_events or self.max_replication_lag:
            lines.append(
                f"replication lag: {self.replication_lag_events} events "
                f"(max lag: {self.max_replication_lag} chars)"
            )
        if self.allocated_hosts:
            lines.append("allocated at end: " + ", ".join(self.allocated_hosts))
        return "\n".join(lines) + "\n"


class HealthMonitor:
    """A simulated-time watchdog process over one :class:`BrokerService`.

    Construct with the service (after ``wait_ready`` is a natural spot),
    call :meth:`start` to begin periodic checks, and :meth:`report` at the
    end of the run.  Reads ``service.state`` on every pass, so broker
    restarts (which swap the state object) are followed transparently.
    All bookkeeping is plain counters plus per-host edge-trigger sets, so a
    monitor adds one timer event per interval and nothing else.
    """

    def __init__(self, service: Any, thresholds: Optional[HealthThresholds] = None) -> None:
        self.service = service
        self.env = service.env
        self.metrics = service.metrics
        cal = service.cluster.network.calibration
        given = thresholds or HealthThresholds()
        self.check_interval = given.check_interval
        self.stuck_after = (
            given.stuck_after
            if given.stuck_after is not None
            else cal.lease_ttl
        )
        self.heartbeat_gap = (
            given.heartbeat_gap
            if given.heartbeat_gap is not None
            else cal.liveness_deadline
        )
        self.queue_high = (
            given.queue_high
            if given.queue_high is not None
            else max(4, len(service.managed_hosts))
        )
        self.journal_lag = (
            given.journal_lag
            if given.journal_lag is not None
            else 4.0 * cal.journal_flush_interval
        )
        self.replication_lag = (
            given.replication_lag
            if given.replication_lag is not None
            else cal.replication_lag_chars
        )
        self.checks = 0
        self.stuck_events = 0
        self.gap_events = 0
        self.queue_breaches = 0
        self.queue_high_watermark = 0
        self.max_heartbeat_gap = 0.0
        self.journal_lag_events = 0
        self.max_journal_lag = 0.0
        self.replication_lag_events = 0
        self.max_replication_lag = 0
        self._stuck_flagged: set = set()
        self._gap_flagged: set = set()
        self._queue_flagged = False
        self._journal_flagged = False
        self._replication_flagged = False
        self._proc = None

    def start(self) -> "HealthMonitor":
        """Begin periodic checks (idempotent); returns self for chaining."""
        if self._proc is None:
            self._proc = self.env.process(self._run())
        return self

    def _run(self):
        while True:
            yield self.env.timeout(self.check_interval)
            self.check()

    def check(self) -> None:
        """Run one watchdog pass against current broker state.

        Anomalies are edge-triggered: a condition increments its counter
        and logs once when it appears on a host, and re-arms only after
        the host recovers — a machine stuck for ten intervals is one
        event, not ten."""
        from repro.broker.state import AllocationState

        self.checks += 1
        now = self.env.now
        state = self.service.state

        stuck_now: set = set()
        for record in state.leased_records():
            allocation = record.allocation
            if (
                allocation is not None
                and allocation.state is AllocationState.RECLAIMING
                and allocation.reclaiming_since >= 0.0
                and now - allocation.reclaiming_since > self.stuck_after
            ):
                stuck_now.add(record.host)
                if record.host not in self._stuck_flagged:
                    self.stuck_events += 1
                    self.metrics.counter("health.stuck_allocations").inc()
                    self.service.log(
                        event="health_stuck_allocation",
                        host=record.host,
                        jobid=allocation.jobid,
                        reclaiming_for=now - allocation.reclaiming_since,
                    )
        self._stuck_flagged = stuck_now

        gaps_now: set = set()
        for record in state.tracked_records():
            if record.last_seen < 0.0:
                continue
            if record.borrowed_from is not None:
                # A borrowed machine's daemon heartbeats to the shard that
                # *owns* it; the borrowing shard's record refreshes only on
                # loan events, so a gap here is the loan working, not
                # detection lagging.
                continue
            gap = now - record.last_seen
            if gap > self.max_heartbeat_gap:
                self.max_heartbeat_gap = gap
            if gap > self.heartbeat_gap:
                gaps_now.add(record.host)
                if record.host not in self._gap_flagged:
                    self.gap_events += 1
                    self.metrics.counter("health.heartbeat_gaps").inc()
                    self.service.log(
                        event="health_heartbeat_gap", host=record.host, gap=gap
                    )
        self._gap_flagged = gaps_now

        depth = len(state.pending)
        if depth > self.queue_high_watermark:
            self.queue_high_watermark = depth
        if depth > self.queue_high:
            if not self._queue_flagged:
                self.queue_breaches += 1
                self.metrics.counter("health.queue_breaches").inc()
                self.service.log(event="health_queue_high", depth=depth)
            self._queue_flagged = True
        else:
            self._queue_flagged = False

        journal = getattr(self.service, "journal", None)
        if journal is not None:
            lag = journal.flush_lag(now)
            if lag > self.max_journal_lag:
                self.max_journal_lag = lag
            if lag > self.journal_lag:
                if not self._journal_flagged:
                    self.journal_lag_events += 1
                    self.metrics.counter("health.journal_lag").inc()
                    self.service.log(
                        event="health_journal_lag",
                        lag=lag,
                        pending_ops=journal.pending_ops(),
                    )
                self._journal_flagged = True
            else:
                self._journal_flagged = False

        # Replication lag (the warm-standby watchdog): flushed ship-stream
        # characters the standby has not acknowledged.  A promoted broker's
        # fresh journal has shipping off, so the watchdog follows failovers
        # transparently (and is inert entirely without a standby).
        if journal is not None and journal.ship_enabled:
            ship_lag = journal.ship_lag()
            if ship_lag > self.max_replication_lag:
                self.max_replication_lag = ship_lag
            if ship_lag > self.replication_lag:
                if not self._replication_flagged:
                    self.replication_lag_events += 1
                    self.metrics.counter("health.replication_lag").inc()
                    self.service.log(
                        event="health_replication_lag",
                        lag_chars=ship_lag,
                        acked_offset=journal.acked_offset,
                        flushed_offset=journal.flushed_offset,
                    )
                self._replication_flagged = True
            else:
                self._replication_flagged = False

    def report(self) -> HealthReport:
        """Run a final check and summarise the whole run."""
        self.check()
        state = self.service.state
        allocated = sorted(
            host
            for host, record in state.machines.items()
            if record.allocation is not None
        )
        return HealthReport(
            time=self.env.now,
            checks=self.checks,
            stuck_allocations=len(allocated),
            allocated_hosts=allocated,
            stuck_events=self.stuck_events,
            heartbeat_gap_events=self.gap_events,
            max_heartbeat_gap=self.max_heartbeat_gap,
            queue_breaches=self.queue_breaches,
            queue_high_watermark=self.queue_high_watermark,
            pending=len(state.pending),
            journal_lag_events=self.journal_lag_events,
            max_journal_lag=self.max_journal_lag,
            replication_lag_events=self.replication_lag_events,
            max_replication_lag=self.max_replication_lag,
        )


@dataclass
class SLObjective:
    """One service-level objective: a measured value against a bound."""

    name: str
    actual: float
    objective: float
    ok: bool

    def render(self) -> str:
        """One pass/fail line."""
        mark = "PASS" if self.ok else "FAIL"
        return f"{mark} {self.name}: {self.actual:g} (objective <= {self.objective:g})"


@dataclass
class SLOReport:
    """A set of evaluated objectives; passes only if every one does."""

    objectives: List[SLObjective] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every objective held."""
        return all(objective.ok for objective in self.objectives)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for merged documents."""
        return {
            "passed": self.passed,
            "objectives": [
                {
                    "name": o.name,
                    "actual": o.actual,
                    "objective": o.objective,
                    "ok": o.ok,
                }
                for o in self.objectives
            ],
        }

    def render(self) -> str:
        """Human-readable SLO report."""
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"== SLO report: {verdict} =="]
        lines.extend(objective.render() for objective in self.objectives)
        return "\n".join(lines) + "\n"


def evaluate_slos(
    service: Any,
    report: HealthReport,
    grant_wait_p95: float = 30.0,
    max_heartbeat_gap: Optional[float] = None,
    drained: bool = False,
) -> SLOReport:
    """Evaluate the run's service-level objectives.

    Objectives: 95th-percentile grant wait below ``grant_wait_p95`` (the
    paper's allocation-latency claim as a bound), zero stuck-allocation
    events, and — when ``max_heartbeat_gap`` is given — the worst observed
    heartbeat gap below it.  ``drained`` adds a zero-leaked-allocations
    objective; only meaningful when the run was given time to wind down
    (machines held by a still-running job are not leaks).
    """
    wait = service.metrics.histogram("broker.grant_wait")
    p95 = wait.percentile(0.95)
    objectives = [
        SLObjective(
            name="grant_wait_p95_seconds",
            actual=p95,
            objective=grant_wait_p95,
            ok=p95 <= grant_wait_p95,
        ),
        SLObjective(
            name="stuck_allocation_events",
            actual=float(report.stuck_events),
            objective=0.0,
            ok=report.stuck_events == 0,
        ),
    ]
    if drained:
        objectives.append(
            SLObjective(
                name="stuck_allocations",
                actual=float(report.stuck_allocations),
                objective=0.0,
                ok=report.stuck_allocations == 0,
            )
        )
    if max_heartbeat_gap is not None:
        objectives.append(
            SLObjective(
                name="max_heartbeat_gap_seconds",
                actual=report.max_heartbeat_gap,
                objective=max_heartbeat_gap,
                ok=report.max_heartbeat_gap <= max_heartbeat_gap,
            )
        )
    return SLOReport(objectives=objectives)
