"""A metrics registry keyed on simulated time.

Counters, gauges and histograms in the Prometheus mould, except that every
sample is stamped with the *simulated* clock — the same axis the paper's
tables use — so a metric series can be replayed against a trace and exported
as counter tracks in the Chrome trace viewer.

All instruments are get-or-create through :class:`MetricsRegistry` (one per
simulated cluster, next to the tracer), so instrumentation sites never need
to coordinate declaration order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: One time-stamped sample: ``(simulated time, value)``.
Sample = Tuple[float, float]


class Counter:
    """A monotonically increasing count with a time-stamped sample series."""

    kind = "counter"

    def __init__(self, name: str, env: Any, help: str = "") -> None:
        self.name = name
        self.env = env
        self.help = help
        self.value = 0.0
        self.samples: List[Sample] = []

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) at the current simulated instant."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount
        self.samples.append((self.env.now, self.value))

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can go up and down, sampled on every change."""

    kind = "gauge"

    def __init__(self, name: str, env: Any, help: str = "") -> None:
        self.name = name
        self.env = env
        self.help = help
        self.value = 0.0
        self.samples: List[Sample] = []

    def set(self, value: float) -> None:
        """Set the gauge at the current simulated instant."""
        self.value = float(value)
        self.samples.append((self.env.now, self.value))

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge upward."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the gauge downward."""
        self.set(self.value - amount)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution of observations, each stamped with simulated time."""

    kind = "histogram"

    def __init__(self, name: str, env: Any, help: str = "") -> None:
        self.name = name
        self.env = env
        self.help = help
        self.observations: List[Sample] = []

    def observe(self, value: float) -> None:
        """Record one observation at the current simulated instant."""
        self.observations.append((self.env.now, float(value)))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.observations)

    @property
    def total(self) -> float:
        """Sum of all observed values."""
        return sum(v for _, v in self.observations)

    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self.total / self.count if self.observations else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) by nearest rank; 0.0 when empty."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.observations:
            return 0.0
        ordered = sorted(v for _, v in self.observations)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean():.4f}>"


class MetricsRegistry:
    """Get-or-create home for every instrument of one simulation."""

    def __init__(self, env: Any) -> None:
        self.env = env
        self._metrics: Dict[str, Any] = {}

    def _get(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, self.env, help=help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(Histogram, name, help)

    def all_metrics(self) -> List[Any]:
        """Every registered instrument, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A plain-dict summary of every instrument (for tools/tests)."""
        out: Dict[str, Dict[str, Any]] = {}
        for metric in self.all_metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "kind": metric.kind,
                    "count": metric.count,
                    "total": metric.total,
                    "mean": metric.mean(),
                    "p50": metric.percentile(0.5),
                    "p95": metric.percentile(0.95),
                }
            else:
                out[metric.name] = {"kind": metric.kind, "value": metric.value}
        return out

    def render(self) -> str:
        """Human-readable rendering (what ``rbtop`` writes)."""
        lines = [f"== metrics @ t={self.env.now:.3f}s =="]
        for name, info in self.snapshot().items():
            if info["kind"] == "histogram":
                lines.append(
                    f"{name}: n={info['count']} total={info['total']:.3f} "
                    f"mean={info['mean']:.3f} p50={info['p50']:.3f} "
                    f"p95={info['p95']:.3f}"
                )
            else:
                lines.append(f"{name}: {info['value']:g}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"<MetricsRegistry metrics={len(self._metrics)}>"
