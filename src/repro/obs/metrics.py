"""A metrics registry keyed on simulated time.

Counters, gauges and histograms in the Prometheus mould, except that every
sample is stamped with the *simulated* clock — the same axis the paper's
tables use — so a metric series can be replayed against a trace and exported
as counter tracks in the Chrome trace viewer.

All instruments are get-or-create through :class:`MetricsRegistry` (one per
simulated cluster, next to the tracer), so instrumentation sites never need
to coordinate declaration order.

The registry runs in one of three modes (``RB_METRICS_MODE`` or the ``mode``
argument), trading recall for memory:

* ``exact`` (default) — every sample and observation is kept forever, which
  preserves byte-identical determinism gates and full post-hoc replay;
* ``bounded`` — sample series are interval-aggregated into ring buffers
  (:class:`~repro.obs.timeseries.SeriesBuffer`) and histograms fold into
  fixed-bin digests (:class:`~repro.obs.timeseries.HistogramDigest`), so
  registry memory is flat for any run length;
* ``off`` — only current values and running count/sum are maintained; no
  series at all (the obs-overhead benchmark's floor).

Aggregates (``value``, ``count``, ``total``, ``mean``) are identical in all
modes: they are maintained as running scalars, never recomputed from the
retained series.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from .timeseries import HistogramDigest, SeriesBuffer

#: One time-stamped sample: ``(simulated time, value)``.
Sample = Tuple[float, float]

#: Environment variable selecting the default registry mode.
METRICS_MODE_ENVIRON_KEY = "RB_METRICS_MODE"

#: The recognised registry modes.
METRICS_MODES = ("exact", "bounded", "off")


class _ExactSeries:
    """Unbounded sample list — the original, replay-everything behaviour."""

    __slots__ = ("points",)

    def __init__(self) -> None:
        self.points: List[Sample] = []

    def add(self, t: float, value: float) -> None:
        self.points.append((t, value))

    def samples(self) -> List[Sample]:
        return self.points

    def __len__(self) -> int:
        return len(self.points)


class _BoundedSeries:
    """Interval-aggregated ring buffer (see :class:`SeriesBuffer`)."""

    __slots__ = ("buffer",)

    def __init__(self, resolution: float, capacity: int) -> None:
        self.buffer = SeriesBuffer(resolution=resolution, capacity=capacity)

    def add(self, t: float, value: float) -> None:
        self.buffer.add(t, value)

    def samples(self) -> List[Sample]:
        return self.buffer.samples()

    def __len__(self) -> int:
        return len(self.buffer)


class _NullSeries:
    """No retained samples at all (``off`` mode)."""

    __slots__ = ()

    def add(self, t: float, value: float) -> None:
        pass

    def samples(self) -> List[Sample]:
        return []

    def __len__(self) -> int:
        return 0


class Counter:
    """A monotonically increasing count with a time-stamped sample series."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        env: Any,
        help: str = "",
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.name = name
        self.env = env
        self.help = help
        self.value = 0.0
        self._registry = registry
        self._series = registry._make_series() if registry else _ExactSeries()
        self._record = self._series.add

    @property
    def samples(self) -> List[Sample]:
        """The retained ``(time, value)`` series (mode-dependent recall)."""
        return self._series.samples()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) at the current simulated instant."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount
        self._record(self.env.now, self.value)
        if self._registry is not None:
            self._registry.updates += 1

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can go up and down, sampled on every change."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        env: Any,
        help: str = "",
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.name = name
        self.env = env
        self.help = help
        self.value = 0.0
        self._registry = registry
        self._series = registry._make_series() if registry else _ExactSeries()
        self._record = self._series.add

    @property
    def samples(self) -> List[Sample]:
        """The retained ``(time, value)`` series (mode-dependent recall)."""
        return self._series.samples()

    def set(self, value: float) -> None:
        """Set the gauge at the current simulated instant."""
        self.value = float(value)
        self._record(self.env.now, self.value)
        if self._registry is not None:
            self._registry.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge upward."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the gauge downward."""
        self.set(self.value - amount)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution of observations, each stamped with simulated time.

    Count and sum are running scalars (O(1) reads in every mode).  In
    ``exact`` mode the full observation list is kept and quantiles are
    nearest-rank exact; in ``bounded`` mode observations fold into a
    fixed-bin :class:`HistogramDigest` and quantiles are estimates; in
    ``off`` mode only count/sum/min/max survive.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        env: Any,
        help: str = "",
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.name = name
        self.env = env
        self.help = help
        self._registry = registry
        self._mode = registry.mode if registry else "exact"
        self.observations: List[Sample] = []
        self.digest: Optional[HistogramDigest] = (
            HistogramDigest() if self._mode == "bounded" else None
        )
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation at the current simulated instant."""
        value = float(value)
        self._count += 1
        self._sum += value
        if self._mode == "exact":
            self.observations.append((self.env.now, value))
        elif self.digest is not None:
            self.digest.observe(value)
        if self._registry is not None:
            self._registry.updates += 1

    @property
    def count(self) -> int:
        """Number of observations (running, O(1))."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observed values (running, O(1))."""
        return self._sum

    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1); exact by nearest rank in ``exact``
        mode, digest-estimated in ``bounded`` mode, 0.0 in ``off`` mode."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self._mode == "exact":
            if not self.observations:
                return 0.0
            ordered = sorted(v for _, v in self.observations)
            rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
            return ordered[rank]
        if self.digest is not None:
            return self.digest.quantile(q)
        return 0.0

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean():.4f}>"


class MetricsRegistry:
    """Get-or-create home for every instrument of one simulation.

    ``mode`` selects the memory model (see the module docstring); when
    omitted it is read from ``RB_METRICS_MODE`` and defaults to ``exact``.
    ``series_resolution``/``series_capacity`` size the bounded-mode ring
    buffers.  The registry self-meters with plain integers (``updates``)
    rather than instruments, so observing observability costs nothing and
    cannot recurse.
    """

    def __init__(
        self,
        env: Any,
        mode: Optional[str] = None,
        series_resolution: float = 1.0,
        series_capacity: int = 512,
    ) -> None:
        if mode is None:
            mode = os.environ.get(METRICS_MODE_ENVIRON_KEY, "exact")
        if mode not in METRICS_MODES:
            raise ValueError(
                f"unknown metrics mode {mode!r} (expected one of {METRICS_MODES})"
            )
        self.env = env
        self.mode = mode
        self.series_resolution = series_resolution
        self.series_capacity = series_capacity
        self.updates = 0
        self._metrics: Dict[str, Any] = {}

    def _make_series(self):
        if self.mode == "exact":
            return _ExactSeries()
        if self.mode == "bounded":
            return _BoundedSeries(self.series_resolution, self.series_capacity)
        return _NullSeries()

    def _get(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, self.env, help=help, registry=self)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(Histogram, name, help)

    def all_metrics(self) -> List[Any]:
        """Every registered instrument, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def series_points(self) -> int:
        """Total retained sample/observation points across all instruments.

        The bounded-memory acceptance check: in ``bounded`` mode this is
        capped by ``instruments * series_capacity`` no matter how long the
        run, while ``exact`` mode grows with every update.
        """
        points = 0
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                points += len(metric.observations)
            else:
                points += len(metric._series)
        return points

    def self_stats(self) -> Dict[str, Any]:
        """Obs self-metering: mode, instrument count, update count, memory."""
        return {
            "mode": self.mode,
            "instruments": len(self._metrics),
            "updates": self.updates,
            "series_points": self.series_points(),
        }

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A plain-dict summary of every instrument (for tools/tests)."""
        out: Dict[str, Dict[str, Any]] = {}
        for metric in self.all_metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "kind": metric.kind,
                    "count": metric.count,
                    "total": metric.total,
                    "mean": metric.mean(),
                    "p50": metric.percentile(0.5),
                    "p95": metric.percentile(0.95),
                }
            else:
                out[metric.name] = {"kind": metric.kind, "value": metric.value}
        return out

    def render(self) -> str:
        """Human-readable rendering (what ``rbtop`` writes)."""
        lines = [f"== metrics @ t={self.env.now:.3f}s =="]
        for name, info in self.snapshot().items():
            if info["kind"] == "histogram":
                lines.append(
                    f"{name}: n={info['count']} total={info['total']:.3f} "
                    f"mean={info['mean']:.3f} p50={info['p50']:.3f} "
                    f"p95={info['p95']:.3f}"
                )
            else:
                lines.append(f"{name}: {info['value']:g}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"<MetricsRegistry mode={self.mode} metrics={len(self._metrics)}>"
