"""Span queries: the trace-side replacement for ad-hoc event-log scans.

The experiment harnesses used to reduce the broker's flat event list by
hand; these helpers ask the same questions of the span tree instead, which
also gives per-phase breakdowns (``phase_durations``) the event log never
had.  ``metrics/timers.py`` keeps thin shims delegating here.

Span names used by the instrumentation (the vocabulary these queries rely
on):

==================  ======================================================
``job.submit``       root: one submitted job, from submission to app exit
``app.run``          the app process lifetime
``app.register``     app start -> broker submit_ack
``app.rsh_request``  one intercepted rsh handled by the app
``app.machine_wait`` machine_request sent -> grant/denial/queueing
``app.revoke``       revoke received -> host released
``module.<prog>``    one external-module script run (e.g. module.pvm_grow)
``rshprime``         one rsh' invocation end to end
``broker.job``       broker-side job record lifetime
``broker.request``   request arrival -> grant/denial (attr ``host`` on grant)
``broker.reclaim``   revoke sent -> machine released
``pvm.add_host``     PVM master add: rsh -> slave pvmd registered
``lam.boot_node``    LAM origin boot of one remote lamd
``calypso.worker``   one Calypso worker session (join -> loss/shutdown)
``rbdaemon.boot``    monitoring daemon startup handshake
==================  ======================================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.spans import Span, Tracer

#: Span name of a broker-side machine request (granted ones carry ``host``).
REQUEST_SPAN = "broker.request"


def _tracer_of(source: Any) -> Tracer:
    """Accept a Tracer, or anything exposing one (BrokerService, Cluster)."""
    if isinstance(source, Tracer):
        return source
    tracer = getattr(source, "tracer", None)
    if isinstance(tracer, Tracer):
        return tracer
    network = getattr(source, "network", None)
    if network is not None and isinstance(network.tracer, Tracer):
        return network.tracer
    raise TypeError(f"no tracer on {source!r}")


def grant_times(source: Any, jobid: int, since: float = 0.0) -> List[float]:
    """Times at which ``jobid`` was granted machines, relative to ``since``.

    Span-based successor of ``repro.metrics.timers.grant_timeline``: a grant
    is a finished ``broker.request`` span carrying a ``host`` attribute, and
    its end instant is exactly when the broker logged the grant.
    """
    tracer = _tracer_of(source)
    return sorted(
        span.ended_at - since
        for span in tracer.spans_named(REQUEST_SPAN)
        if span.finished
        and span.attrs.get("jobid") == jobid
        and span.attrs.get("host") is not None
        and span.ended_at >= since
    )


def trace_root(tracer: Tracer, trace_id: int) -> Optional[Span]:
    """The root span of one trace, if present."""
    for span in tracer.roots():
        if span.trace_id == trace_id:
            return span
    return None


def is_connected(tracer: Tracer, trace_id: int) -> bool:
    """Whether every span of the trace reaches the root via parent links."""
    spans = tracer.trace(trace_id)
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        seen = set()
        node = span
        while node.parent_id is not None:
            if node.parent_id in seen or node.parent_id not in by_id:
                return False
            seen.add(node.parent_id)
            node = by_id[node.parent_id]
        if node.trace_id != trace_id:
            return False
    return True


def phase_durations(tracer: Tracer, trace_id: int) -> Dict[str, float]:
    """Total finished-span duration per span name within one trace."""
    totals: Dict[str, float] = {}
    for span in tracer.trace(trace_id):
        if span.finished:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
    return totals


def format_trace(tracer: Tracer, trace_id: Optional[int] = None) -> str:
    """Render trace trees as an indented text outline (what rbtrace writes)."""
    roots = tracer.roots()
    if trace_id is not None:
        roots = [r for r in roots if r.trace_id == trace_id]
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        end = f"{span.ended_at:9.3f}" if span.finished else "     open"
        host = span.attrs.get("host", "-")
        lines.append(
            f"{span.started_at:9.3f} {end} {'  ' * depth}{span.name} "
            f"[{host}] ({span.duration:.3f}s)"
        )
        for child in tracer.children_of(span):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines) + ("\n" if lines else "")
