"""Span-based tracing over simulated time.

A :class:`Span` is one timed operation — an rsh' interception, a broker
grant, a ``pvm_grow`` run, a slave daemon join.  Spans form trees: every span
except a trace root names its parent, so one job submission yields a single
causally-connected tree from the user's ``app`` invocation down to the last
slave daemon handshake.  All timestamps are *simulated* seconds (``env.now``)
— the same clock the reproduced tables report — which makes span durations
directly comparable to the paper's numbers.

Context propagates two ways, mirroring how causality actually flows in the
system:

* **down the process tree** via the inherited environment variable
  ``RB_TRACE`` (children get a copy of the parent's environ, exactly like the
  ``RB_APP_PORT`` breadcrumb the broker itself relies on); use
  :meth:`Span.environ` when spawning and :func:`context_from_environ` when
  starting a span inside a program body;
* **across the wire** by attaching a context dict to protocol messages
  (:func:`repro.broker.protocol.attach_trace` /
  :func:`repro.broker.protocol.trace_of`).

Span and trace ids are drawn from plain counters, so identical seeds give
byte-identical exports (see ``tests/obs/test_trace_determinism.py``).
"""

from __future__ import annotations

import hashlib
import itertools
import os
from typing import Any, Callable, Dict, List, Optional, Union

#: Environment variable carrying the active span context down the simulated
#: process tree (``"<trace_id>:<span_id>"``).
TRACE_ENVIRON_KEY = "RB_TRACE"

#: Environment variable selecting the default trace sampling rate (0..1).
TRACE_SAMPLE_ENVIRON_KEY = "RB_TRACE_SAMPLE"

#: Wire/dict form of a span context: ``{"trace_id": int, "span_id": int}``.
Context = Dict[str, int]


def format_context(context: Context) -> str:
    """Render a context dict as the compact ``trace:span`` environ form."""
    return f"{context['trace_id']}:{context['span_id']}"


def parse_context(text: Optional[str]) -> Optional[Context]:
    """Parse the ``trace:span`` environ form; None/garbage gives None."""
    if not text:
        return None
    parts = text.split(":")
    if len(parts) != 2:
        return None
    try:
        return {"trace_id": int(parts[0]), "span_id": int(parts[1])}
    except ValueError:
        return None


def context_from_environ(environ: Dict[str, str]) -> Optional[Context]:
    """The span context a process inherited, if any."""
    return parse_context(environ.get(TRACE_ENVIRON_KEY))


class Span:
    """One timed operation in a trace tree.

    Created via :meth:`Tracer.start`; finished with :meth:`end`.  ``attrs``
    is a free-form dict; by convention ``host`` names the machine the
    operation ran on and ``actor`` the component (app, broker, rsh, ...), and
    the exporters use both to lay spans out in the Chrome trace viewer.
    """

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "started_at",
        "ended_at",
        "sampled",
        "_attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        started_at: float,
        attrs: Optional[Dict[str, Any]],
        sampled: bool = True,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = started_at
        self.ended_at: Optional[float] = None
        self.sampled = sampled
        # Allocated lazily: attribute-less spans (and there are many on the
        # hot instrumentation paths) never pay for a dict.
        self._attrs = attrs if attrs else None

    # -- state ---------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether :meth:`end` has been called."""
        return self.ended_at is not None

    @property
    def duration(self) -> float:
        """Elapsed simulated seconds (up to now if still open)."""
        end = self.ended_at if self.ended_at is not None else self.tracer.env.now
        return end - self.started_at

    @property
    def context(self) -> Context:
        """This span's wire-form context (for child spans elsewhere)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @property
    def attrs(self) -> Dict[str, Any]:
        """The span's attribute dict (created on first touch)."""
        attrs = self._attrs
        if attrs is None:
            attrs = self._attrs = {}
        return attrs

    # -- mutation ------------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Merge attributes into the span; returns self for chaining."""
        if attrs:
            self.attrs.update(attrs)
        return self

    def end(self, **attrs: Any) -> "Span":
        """Close the span at the current simulated instant (idempotent)."""
        if attrs:
            self.attrs.update(attrs)
        if self.ended_at is None:
            self.ended_at = self.tracer.env.now
            if self.sampled and self.tracer._observers:
                for observer in self.tracer._observers:
                    observer(self)
        return self

    # -- propagation -----------------------------------------------------------

    def environ(self) -> Dict[str, str]:
        """Environ fragment that makes spawned children parent under us."""
        return {TRACE_ENVIRON_KEY: format_context(self.context)}

    def __repr__(self) -> str:
        state = f"..{self.ended_at:.3f}" if self.finished else " (open)"
        return (
            f"<Span {self.name} t{self.trace_id}/s{self.span_id} "
            f"{self.started_at:.3f}{state}>"
        )


#: What :meth:`Tracer.start` accepts as a parent.
ParentLike = Union[Span, Context, str, None]


class Tracer:
    """Records spans against one simulation environment's clock.

    One tracer exists per :class:`~repro.cluster.network.Network` (i.e. per
    simulated cluster), created unconditionally — recording is cheap, and an
    always-on tracer is what makes every experiment's run inspectable after
    the fact without re-running it.

    ``sample`` (default from ``RB_TRACE_SAMPLE``, 1.0 when unset) is a
    head-based trace sampling rate: the keep/drop decision is made once per
    *trace*, at root creation, by hashing ``"<seed>:<trace_id>"`` — so it is
    deterministic for a given seed, every trace tree is kept or dropped
    whole, and identical seeds still give identical exports at any rate.
    Unsampled spans are created (ids advance identically — determinism does
    not depend on the rate) but are not recorded or indexed, and span-end
    observers never see them.
    """

    def __init__(self, env: Any, sample: Optional[float] = None) -> None:
        self.env = env
        if sample is None:
            sample = float(os.environ.get(TRACE_SAMPLE_ENVIRON_KEY, "1.0"))
        self.sample = min(1.0, max(0.0, sample))
        self._sample_seed = int(getattr(getattr(env, "rng", None), "seed", 0) or 0)
        self._unsampled_traces: set = set()
        self.spans: List[Span] = []
        self.spans_started = 0
        self.spans_sampled_out = 0
        self._observers: List[Callable[[Span], None]] = []
        self._by_id: Dict[int, Span] = {}
        # Query indexes, maintained at append time (mirroring the broker's
        # events_of index): the recall surface — trace viewers, experiment
        # reductions, rbtrace's tree walk — answers from these in O(matches)
        # instead of scanning every span ever recorded.
        self._by_name: Dict[str, List[Span]] = {}
        self._by_trace: Dict[int, List[Span]] = {}
        self._by_parent: Dict[int, List[Span]] = {}
        self._roots: List[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # -- creation ------------------------------------------------------------

    def add_observer(self, observer: Callable[[Span], None]) -> None:
        """Register a callback invoked with each sampled span as it ends."""
        self._observers.append(observer)

    def _keep_trace(self, trace_id: int) -> bool:
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self._sample_seed}:{trace_id}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64 < self.sample

    def start(self, name: str, parent: ParentLike = None, **attrs: Any) -> Span:
        """Open a span; ``parent`` may be a Span, a context dict, the
        ``trace:span`` string form, or None (which roots a new trace)."""
        if isinstance(parent, str):
            parent = parse_context(parent)
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif isinstance(parent, dict):
            trace_id, parent_id = parent["trace_id"], parent["span_id"]
        else:
            trace_id, parent_id = next(self._trace_ids), None
        self.spans_started += 1
        if parent_id is None:
            sampled = self._keep_trace(trace_id)
            if not sampled:
                self._unsampled_traces.add(trace_id)
        else:
            sampled = trace_id not in self._unsampled_traces
        span = Span(
            tracer=self,
            name=name,
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            started_at=self.env.now,
            attrs=attrs,
            sampled=sampled,
        )
        if not sampled:
            self.spans_sampled_out += 1
            return span
        self.spans.append(span)
        self._by_id[span.span_id] = span
        self._by_name.setdefault(name, []).append(span)
        self._by_trace.setdefault(trace_id, []).append(span)
        if parent_id is None:
            self._roots.append(span)
        else:
            self._by_parent.setdefault(parent_id, []).append(span)
        return span

    # -- queries -------------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        """The span with this id, if recorded."""
        return self._by_id.get(span_id)

    def spans_named(self, name: str) -> List[Span]:
        """All spans called ``name``, in start order."""
        return list(self._by_name.get(name, ()))

    def trace(self, trace_id: int) -> List[Span]:
        """All spans of one trace tree, in start order."""
        return list(self._by_trace.get(trace_id, ()))

    def roots(self) -> List[Span]:
        """Spans with no parent (one per trace), in start order."""
        return list(self._roots)

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in start order."""
        return list(self._by_parent.get(span.span_id, ()))

    def self_stats(self) -> Dict[str, Any]:
        """Obs self-metering: sampling rate, spans started/kept/dropped."""
        return {
            "sample": self.sample,
            "spans_started": self.spans_started,
            "spans_kept": len(self.spans),
            "spans_sampled_out": self.spans_sampled_out,
        }

    def __repr__(self) -> str:
        open_count = sum(1 for s in self.spans if not s.finished)
        return f"<Tracer spans={len(self.spans)} open={open_count}>"
