"""Bounded, mergeable telemetry primitives for continuous observation.

The original ``repro.obs`` instruments keep every sample forever, which is
fine for the paper's short table runs but structurally incompatible with
soak-length experiments ("flat memory over 100k submissions") and with
feeding *online* consumers such as a malleability scheduler.  This module
provides the bounded building blocks:

* :class:`HistogramDigest` — a fixed-bin, log-spaced histogram with exact
  count/sum/min/max and estimated quantiles.  Two digests with identical
  bounds merge by adding bin counts, so parallel sweep shards can fold
  their latency distributions into one.
* :class:`SeriesBuffer` — an interval-aggregated sample series with a
  ring-buffer cap: one retained point per ``resolution`` seconds, newest
  ``capacity`` intervals kept.
* :func:`windowed_rate` — a trailing-window rate view over a cumulative
  counter's sample series.
* :class:`SpanPhaseFolder` — folds finished spans' durations into
  per-allocation-phase digests *online* (via the tracer's span-end
  observer hook) instead of post-hoc trace-tree walks.

Everything here is pure arithmetic on simulated-clock inputs — no events
are scheduled and no wall-clock state is read — so enabling these bounded
views never perturbs simulation determinism.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

#: Bound method caches for the per-sample hot paths (Histogram.observe and
#: SeriesBuffer.add run once per metric update; attribute lookups add up).
_log10 = math.log10

#: One time-stamped sample: ``(simulated time, value)``.
Sample = Tuple[float, float]


class HistogramDigest:
    """A fixed-memory histogram over log-spaced bins.

    Values land in geometrically spaced bins between ``lo`` and ``hi``
    (``bins_per_decade`` bins per factor of ten) plus dedicated underflow
    and overflow bins; count, sum, min and max stay exact, while quantiles
    are estimated from bin midpoints (clamped to the observed min/max).
    Memory is O(bins) regardless of how many values are observed.
    """

    __slots__ = (
        "lo",
        "hi",
        "bins_per_decade",
        "count",
        "total",
        "min",
        "max",
        "_bins",
        "_nbins",
    )

    def __init__(
        self,
        lo: float = 1e-6,
        hi: float = 1e6,
        bins_per_decade: int = 8,
    ) -> None:
        if not (0 < lo < hi):
            raise ValueError(f"digest bounds must satisfy 0 < lo < hi, got {lo}..{hi}")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be >= 1")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins_per_decade = int(bins_per_decade)
        self._nbins = int(round(math.log10(self.hi / self.lo) * self.bins_per_decade))
        # _bins[0] is underflow (v <= lo, including non-positive values);
        # _bins[-1] is overflow (v >= hi).
        self._bins = [0] * (self._nbins + 2)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _index(self, value: float) -> int:
        if value <= self.lo:
            return 0
        if value >= self.hi:
            return self._nbins + 1
        idx = 1 + int(math.log10(value / self.lo) * self.bins_per_decade)
        return min(max(idx, 1), self._nbins)

    def _edge(self, i: int) -> float:
        # Lower edge of bin i (1-based interior bins).
        return self.lo * 10.0 ** ((i - 1) / self.bins_per_decade)

    def observe(self, value: float) -> None:
        """Fold one value into the digest."""
        value = float(value)
        # _index inlined: this runs once per observation.
        if value <= self.lo:
            self._bins[0] += 1
        elif value >= self.hi:
            self._bins[self._nbins + 1] += 1
        else:
            idx = 1 + int(_log10(value / self.lo) * self.bins_per_decade)
            if idx < 1:
                idx = 1
            elif idx > self._nbins:
                idx = self._nbins
            self._bins[idx] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> float:
        """Exact mean of all observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1); exact at the extremes, 0.0 when empty."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.count:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for i, n in enumerate(self._bins):
            cumulative += n
            if cumulative >= target:
                if i == 0:
                    estimate = self.min if self.min is not None else self.lo
                elif i == self._nbins + 1:
                    estimate = self.max if self.max is not None else self.hi
                else:
                    estimate = math.sqrt(self._edge(i) * self._edge(i + 1))
                lo = self.min if self.min is not None else estimate
                hi = self.max if self.max is not None else estimate
                return min(max(estimate, lo), hi)
        return self.max if self.max is not None else 0.0

    def merge(self, other: "HistogramDigest") -> "HistogramDigest":
        """Fold another digest with identical bounds into this one."""
        if (self.lo, self.hi, self.bins_per_decade) != (
            other.lo,
            other.hi,
            other.bins_per_decade,
        ):
            raise ValueError("cannot merge digests with different bin bounds")
        for i, n in enumerate(other._bins):
            self._bins[i] += n
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def summary(self) -> Dict[str, float]:
        """Plain-dict summary (count/total/mean/p50/p95/max) for wire export."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean(),
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "max": self.max if self.max is not None else 0.0,
        }

    def __repr__(self) -> str:
        return f"<HistogramDigest n={self.count} mean={self.mean():.4f}>"


class SeriesBuffer:
    """An interval-aggregated, ring-capped sample series.

    At most one point is retained per ``resolution`` seconds of simulated
    time (the latest write in the interval wins — the right aggregate for
    cumulative counters and gauges), and at most ``capacity`` intervals
    are kept; older intervals fall off the ring and are counted in
    ``dropped``.  Memory is therefore O(capacity) for any run length.
    """

    __slots__ = ("resolution", "capacity", "dropped", "_points")

    def __init__(self, resolution: float = 1.0, capacity: int = 512) -> None:
        if resolution <= 0:
            raise ValueError("series resolution must be > 0")
        if capacity < 1:
            raise ValueError("series capacity must be >= 1")
        self.resolution = float(resolution)
        self.capacity = int(capacity)
        self.dropped = 0
        self._points: Deque[List[float]] = deque(maxlen=self.capacity)

    def add(self, t: float, value: float) -> None:
        """Record ``value`` at simulated time ``t`` (monotone ``t`` expected)."""
        bucket = t // self.resolution
        points = self._points
        if points:
            last = points[-1]
            if last[0] == bucket:
                last[1] = t
                last[2] = value
                return
            if len(points) == self.capacity:
                self.dropped += 1
        points.append([bucket, t, value])

    def samples(self) -> List[Sample]:
        """The retained ``(time, value)`` points, oldest first."""
        return [(t, v) for _, t, v in self._points]

    def last(self) -> Optional[Sample]:
        """The most recent retained sample, if any."""
        if not self._points:
            return None
        _, t, v = self._points[-1]
        return (t, v)

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return (
            f"<SeriesBuffer n={len(self._points)}/{self.capacity} "
            f"res={self.resolution}s dropped={self.dropped}>"
        )


def windowed_rate(
    samples: Sequence[Sample], now: float, window: float = 60.0
) -> float:
    """Average increase per second of a cumulative series over the window.

    ``samples`` is a ``(time, value)`` series with non-decreasing values (a
    counter's sample series, exact or bounded).  The baseline is the last
    sample at or before ``now - window``; if the retained series starts
    inside the window the baseline is 0.0 (the counter's origin).
    """
    if window <= 0:
        raise ValueError("rate window must be > 0")
    if not samples:
        return 0.0
    cutoff = now - window
    latest = samples[-1][1]
    baseline = 0.0
    for t, value in reversed(samples):
        if t <= cutoff:
            baseline = value
            break
    return max(0.0, (latest - baseline) / window)


#: Span name → allocation-protocol phase, the paper's latency decomposition
#: (submit → decision → phase I → phase II → grant).  ``module.*`` spans
#: (external-module growth, e.g. ``module.pvm``) map to ``phase2`` by prefix.
PHASE_OF_SPAN: Dict[str, str] = {
    "app.register": "submit",
    "broker.request": "decision",
    "rshprime": "phase1",
    "app.machine_wait": "grant",
    "broker.reclaim": "reclaim",
    "job.submit": "job",
}

#: Display order for phase summaries.
PHASE_ORDER: Tuple[str, ...] = (
    "submit",
    "decision",
    "phase1",
    "phase2",
    "grant",
    "reclaim",
    "job",
)


def phase_of_span(name: str) -> Optional[str]:
    """The allocation phase a span name belongs to, or None."""
    phase = PHASE_OF_SPAN.get(name)
    if phase is None and name.startswith("module."):
        return "phase2"
    return phase


class SpanPhaseFolder:
    """Folds finished spans into per-phase latency digests, online.

    Subscribes to a tracer's span-end observer hook and accumulates each
    finished span's duration into the :class:`HistogramDigest` of its
    allocation phase (see :data:`PHASE_OF_SPAN`).  This replaces post-hoc
    trace-tree walks for the live ``stats`` view: the distributions are
    ready the moment they are asked for, at O(bins) memory per phase, and
    spans left open by crashes simply never fold in.
    """

    def __init__(self, tracer: Any, **digest_kwargs: Any) -> None:
        self.digests: Dict[str, HistogramDigest] = {}
        self.spans_folded = 0
        self._digest_kwargs = digest_kwargs
        tracer.add_observer(self._on_span_end)

    def _on_span_end(self, span: Any) -> None:
        phase = phase_of_span(span.name)
        if phase is None:
            return
        digest = self.digests.get(phase)
        if digest is None:
            digest = self.digests[phase] = HistogramDigest(**self._digest_kwargs)
        digest.observe(span.duration)
        self.spans_folded += 1

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase digest summaries, in protocol order."""
        return {
            phase: self.digests[phase].summary()
            for phase in PHASE_ORDER
            if phase in self.digests
        }

    def __repr__(self) -> str:
        return f"<SpanPhaseFolder phases={sorted(self.digests)} folded={self.spans_folded}>"
