"""Simulated operating-system substrate.

This package models exactly the POSIX surface the paper's mechanisms rely on:

* processes with pids, parent/child links, **environment-variable
  inheritance** (how ``rsh'`` finds its app process),
* **signals** — SIGTERM with catchable handlers and a grace period, SIGKILL
  that cannot be caught (how subapps revoke machines),
* a **PATH-resolved program registry** (how ``rsh'`` shadows ``rsh``),
* a tiny per-user **filesystem** (``.hosts`` files, the ``.pvmrc`` the
  ``pvm_grow`` module writes),
* machines with processor-sharing CPUs and monitorable state (load, logged-in
  users, keyboard/mouse activity).
"""

from repro.os.errors import (
    AuthenticationError,
    ConnectionClosed,
    ConnectionRefused,
    NoSuchHost,
    NoSuchProgram,
    SimOSError,
)
from repro.os.filesystem import FileNotFound, Filesystem
from repro.os.machine import Machine, MachineKind
from repro.os.process import OSProcess, ProcessStatus
from repro.os.programs import ProgramDirectory, ProgramNotExecutable
from repro.os.signals import SIGINT, SIGKILL, SIGTERM, Signal, SignalDelivery

__all__ = [
    "AuthenticationError",
    "ConnectionClosed",
    "ConnectionRefused",
    "FileNotFound",
    "Filesystem",
    "Machine",
    "MachineKind",
    "NoSuchHost",
    "NoSuchProgram",
    "OSProcess",
    "ProcessStatus",
    "ProgramDirectory",
    "ProgramNotExecutable",
    "SIGINT",
    "SIGKILL",
    "SIGTERM",
    "Signal",
    "SignalDelivery",
    "SimOSError",
]
