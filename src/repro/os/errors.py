"""Exception hierarchy for the simulated OS and network."""

from __future__ import annotations


class SimOSError(Exception):
    """Base class for all simulated OS-level failures."""


class NoSuchHost(SimOSError):
    """Name resolution failed: no machine with that name on the network."""


class NoSuchProgram(SimOSError):
    """PATH lookup failed: no executable with that name is visible."""


class ConnectionRefused(SimOSError):
    """Nothing is listening on the target (host, port)."""


class ConnectionClosed(SimOSError):
    """The peer closed the connection (receive after EOF, send after close)."""


class AuthenticationError(SimOSError):
    """The rsh daemon rejected the caller's credentials."""
