"""A minimal per-machine filesystem.

Just enough to model the two files the paper's protocol actually touches:

* ``~/.hosts`` — the hostfile a job consults when growing (the user writes
  ``anylinux`` into it to opt into broker-chosen machines, paper §5.2), and
* ``~/.pvmrc`` — the command file the ``pvm_grow`` external module writes
  before invoking a PVM console (paper Figure 4).

Paths are plain strings; ``$HOME`` expansion resolves against the owning
process's ``HOME`` environment variable.
"""

from __future__ import annotations

from typing import Dict, List


class FileNotFound(KeyError):
    """Read of a path that does not exist."""


class Filesystem:
    """String-keyed text files on one machine."""

    def __init__(self) -> None:
        self._files: Dict[str, str] = {}

    def write(self, path: str, content: str) -> None:
        """Create or truncate ``path`` with ``content``."""
        self._files[path] = content

    def append(self, path: str, content: str) -> None:
        """Append to ``path`` (creating it if absent)."""
        self._files[path] = self._files.get(path, "") + content

    def read(self, path: str) -> str:
        """Contents of ``path`` (raises :class:`FileNotFound`)."""
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def read_lines(self, path: str) -> List[str]:
        """Non-empty stripped lines of ``path``."""
        return [
            line.strip()
            for line in self.read(path).splitlines()
            if line.strip()
        ]

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists."""
        return path in self._files

    def unlink(self, path: str) -> None:
        """Delete ``path`` (no error if absent, like ``rm -f``)."""
        self._files.pop(path, None)

    def listdir(self) -> List[str]:
        """All paths, sorted."""
        return sorted(self._files)

    def __repr__(self) -> str:
        return f"<Filesystem {len(self._files)} files>"
