"""Simulated machines.

A :class:`Machine` bundles a processor-sharing CPU, a process table, a tiny
filesystem, a listening-port table and the monitorable state the broker's
daemons report: load, number of jobs per user, logged-in users and
keyboard/mouse (console) activity.

Machines are *private* (owned by an individual, who has absolute priority) or
*public* (laboratory machines available to everyone) — the distinction the
paper's default allocation policy is built on (§2).

A machine can also *fail*: :meth:`Machine.crash` models a power loss — every
resident process dies instantly (which closes its sockets, so peers see EOF
after one latency), and the machine refuses connections until
:meth:`Machine.boot` brings it back up.  This is the involuntary-departure
counterpart of the paper's voluntary owner reclaim, and what the broker's
liveness detection exists to notice.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.os.filesystem import Filesystem
from repro.os.programs import ProgramBody, ProgramDirectory, resolve
from repro.sim.pshare import ProcessorSharingQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.network import Network
    from repro.os.process import OSProcess
    from repro.sim.environment import Environment


class MachineKind(enum.Enum):
    """Ownership class used by the default allocation policy."""

    PUBLIC = "public"
    PRIVATE = "private"


class Machine:
    """One simulated host.

    Parameters
    ----------
    env:
        Owning simulation environment.
    name:
        Host name, unique within a network.
    arch, os_name:
        Platform attributes matched by RSL requests such as
        ``(arch="i686linux")``.
    cpus, speed:
        CPU model parameters (see
        :class:`~repro.sim.pshare.ProcessorSharingQueue`).
    kind, owner:
        Ownership class; ``owner`` is the owning username for private
        machines.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        arch: str = "i686",
        os_name: str = "linux",
        cpus: int = 1,
        speed: float = 1.0,
        kind: MachineKind = MachineKind.PUBLIC,
        owner: Optional[str] = None,
    ) -> None:
        if kind is MachineKind.PRIVATE and owner is None:
            raise ValueError(f"private machine {name!r} needs an owner")
        self.env = env
        self.name = name
        self.arch = arch
        self.os_name = os_name
        self.kind = kind
        self.owner = owner
        self.cpu = ProcessorSharingQueue(env, cpus=cpus, speed=speed)
        self.fs = Filesystem()
        self.path: List[ProgramDirectory] = []
        self.procs: Dict[int, "OSProcess"] = {}
        self._pids = itertools.count(1)
        self.network: Optional["Network"] = None
        #: Event-lane index this machine's activity is scheduled into when
        #: the kernel runs partitioned (assigned by the cluster builder;
        #: lane 0 anchors the broker's machine).  See
        #: :class:`repro.sim.environment.Lane`.
        self.lane: int = 0
        #: False while the machine is crashed/powered off; the network
        #: refuses connections to a down machine.
        self.up: bool = True
        #: Bumped on every process-table change (register/unregister).  The
        #: monitoring daemon folds it into its cheap change probe: any
        #: process arrival or exit — including subapp lease changes that
        #: leave counts unchanged — forces a full report instead of a
        #: delta beacon.
        self.proc_table_version: int = 0
        #: Users with a login session on this machine.
        self.logged_in: Set[str] = set()
        #: True while the machine's owner is at the console (keyboard/mouse
        #: events within the activity window) — reported by daemons, consumed
        #: by the private-machine revocation policy.
        self.console_active: bool = False

    # -- platform ----------------------------------------------------------

    @property
    def platform(self) -> str:
        """``arch + os`` string matched against RSL requests."""
        return f"{self.arch}{self.os_name}"

    def resolve_program(self, name: str) -> ProgramBody:
        """PATH lookup (see :func:`repro.os.programs.resolve`)."""
        return resolve(self.path, name)

    # -- process management ---------------------------------------------------

    def next_pid(self) -> int:
        """Allocate the next machine-local pid."""
        return next(self._pids)

    def register_process(self, proc: "OSProcess") -> None:
        """Enter ``proc`` into the process table."""
        self.procs[proc.pid] = proc
        self.proc_table_version += 1

    def unregister_process(self, proc: "OSProcess") -> None:
        """Remove ``proc`` from the process table (idempotent)."""
        if self.procs.pop(proc.pid, None) is not None:
            self.proc_table_version += 1

    def processes_of(self, uid: str) -> List["OSProcess"]:
        """Live processes belonging to ``uid``, in pid order."""
        return [p for pid, p in sorted(self.procs.items()) if p.uid == uid]

    def job_count(self, exclude_uids: Set[str] = frozenset()) -> int:
        """Number of live processes not belonging to ``exclude_uids``."""
        return sum(1 for p in self.procs.values() if p.uid not in exclude_uids)

    # -- failure --------------------------------------------------------------

    def crash(self) -> int:
        """Power loss: kill every resident process, refuse the network.

        Process death closes each victim's listeners and connections, so
        remote peers observe EOF after one network latency — exactly how a
        crashed host surfaces to the rest of a real LAN.  Idempotent while
        down; returns the number of processes killed.
        """
        from repro.os.signals import SIGKILL

        if not self.up:
            return 0
        self.up = False
        self.console_active = False
        self.logged_in.clear()
        killed = 0
        for proc in list(self.procs.values()):
            if proc.is_alive:
                proc.signal(SIGKILL)
                killed += 1
        return killed

    def boot(self) -> None:
        """Bring a crashed machine back up (empty: no processes survive a
        crash; system daemons must be restarted by whoever owns them)."""
        self.up = True

    # -- monitoring snapshot -------------------------------------------------

    def snapshot(self) -> dict:
        """The facts a monitoring daemon reports to the broker (paper §3):
        CPU status, logged-in users, number of running jobs, console status.
        """
        return {
            "host": self.name,
            "platform": self.platform,
            "kind": self.kind.value,
            "owner": self.owner,
            "cpu_load": self.cpu.load,
            "n_processes": len(self.procs),
            "logged_in": sorted(self.logged_in),
            "console_active": self.console_active,
            "time": self.env.now,
        }

    def __repr__(self) -> str:
        return (
            f"<Machine {self.name!r} {self.kind.value} load={self.cpu.load} "
            f"procs={len(self.procs)}>"
        )
