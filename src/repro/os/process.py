"""Simulated OS processes.

An :class:`OSProcess` runs a program body (a generator function) on a machine
and exposes the POSIX-ish surface program bodies use: argv, inherited
environment variables, spawn, CPU bursts, sleeping, sockets, files and
signals.

Unix details that matter to the paper and are modelled faithfully:

* children inherit a *copy* of the parent's environment — this is how every
  descendant of an ``app`` process knows where its app lives
  (``RB_APP_HOST`` / ``RB_APP_PORT``);
* a process may only signal processes of the same uid — this is why the
  user-level broker needs the app layer at all: the broker's own daemons run
  as the broker user and *cannot* touch the job, while the app/subapp
  processes run as the job's user and can;
* SIGKILL is uncatchable; other signals run handlers (``except Interrupt``);
* process death releases its CPU bursts and closes its sockets; children are
  orphaned, not killed.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set

from repro.os.errors import SimOSError
from repro.os.signals import SIGKILL, Signal, SignalDelivery
from repro.sim.events import Event
from repro.sim.process import Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.network import Connection, Listener
    from repro.os.machine import Machine


class ProcessStatus(enum.Enum):
    """Lifecycle state of a simulated process."""

    RUNNING = "running"
    EXITED = "exited"
    KILLED = "killed"
    CRASHED = "crashed"


class PermissionError_(SimOSError):
    """Signal permission denied (different uid)."""


class OSProcess:
    """One simulated Unix process.

    Parameters
    ----------
    machine:
        Host to run on.
    argv:
        ``argv[0]`` is the program name resolved through the machine's PATH
        (or a qualified ``dir:name``); the rest are arguments.
    uid:
        Owning user.
    environ:
        Environment variables; children built via :meth:`spawn` inherit a
        copy automatically.
    parent:
        Creating process, if any.
    startup_delay:
        Exec overhead before the body starts running (defaults to the
        network's calibration ``proc_startup``).
    """

    def __init__(
        self,
        machine: "Machine",
        argv: Sequence[str],
        uid: str,
        environ: Optional[Dict[str, str]] = None,
        parent: Optional["OSProcess"] = None,
        startup_delay: Optional[float] = None,
    ) -> None:
        if not argv:
            raise ValueError("argv must not be empty")
        self.machine = machine
        self.env = machine.env
        self.argv = list(argv)
        self.uid = uid
        self.environ: Dict[str, str] = dict(environ or {})
        self.parent = parent
        self.pid = machine.next_pid()
        self.children: List["OSProcess"] = []
        self.status = ProcessStatus.RUNNING
        self.exit_code: Optional[int] = None
        self.exception: Optional[BaseException] = None
        #: Event that fires with the exit code when the process terminates.
        self.terminated: Event = Event(self.env)
        #: Event that fires if the process detaches into the background
        #: (``pvmd``-style daemonization); an rshd waiting on the remote
        #: command returns control to the rsh client when this fires.
        self.daemonized: Event = Event(self.env)
        self._computes: Set[Event] = set()
        self._listeners: List["Listener"] = []
        self._connections: List["Connection"] = []
        self._threads: List[Process] = []
        self._pending_signals: List[SignalDelivery] = []

        body = machine.resolve_program(self.argv[0])
        if startup_delay is None:
            startup_delay = self._calibration().proc_startup
        self._startup_delay = startup_delay
        machine.register_process(self)
        if parent is not None:
            parent.children.append(self)
        # The process's kick-off event belongs in its machine's lane: every
        # event it schedules afterwards (timeouts, CPU bursts, spawns) is
        # pushed while one of its own events is being dispatched, so lane
        # affinity propagates from this single placement.
        env = self.env
        if env._nlanes > 1:
            token = env.lane_scope(machine.lane)
            self._sim_process: Process = env.process(
                self._run(body), name=f"{machine.name}:{self.argv[0]}#{self.pid}"
            )
            env.lane_restore(token)
        else:
            self._sim_process = env.process(
                self._run(body), name=f"{machine.name}:{self.argv[0]}#{self.pid}"
            )
        self._sim_process.add_callback(self._on_sim_exit)

    def _calibration(self):
        network = self.machine.network
        if network is not None:
            return network.calibration
        from repro.calibration import DEFAULT

        return DEFAULT

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.argv[0]

    @property
    def host(self) -> str:
        return self.machine.name

    @property
    def home(self) -> str:
        """The user's home directory path on this machine."""
        return self.environ.get("HOME", f"/home/{self.uid}")

    @property
    def is_alive(self) -> bool:
        return self.status is ProcessStatus.RUNNING

    # -- body runner ----------------------------------------------------------

    def _run(self, body):
        try:
            # The startup delay is inside the try: a signal arriving while
            # the process is still "exec-ing" (no handler installed yet)
            # terminates it with the conventional code, as on real Unix.
            if self._startup_delay > 0:
                yield self.env.timeout(self._startup_delay)
            result = yield from body(self)
        except Interrupt as intr:
            # An uncaught signal: die with the conventional exit code.
            cause = intr.cause
            signum = (
                int(cause.signal)
                if isinstance(cause, SignalDelivery)
                else int(Signal.SIGTERM)
            )
            return -signum
        if result is None:
            return 0
        return int(result)

    def _on_sim_exit(self, event: Event) -> None:
        if self.terminated.triggered:
            # Already finalized (SIGKILL or a crashed thread aborted us);
            # the main generator completing afterwards is expected.
            return
        if event.ok:
            code = event.value
            code = 0 if code is None else int(code)
            self.status = (
                ProcessStatus.EXITED if code >= 0 else ProcessStatus.KILLED
            )
            self._finalize(code)
        else:
            event.defuse()
            self.exception = event.value
            self.status = ProcessStatus.CRASHED
            network = self.machine.network
            if network is not None:
                network.record_crash(self)
            self._finalize(1)

    def _finalize(self, code: int) -> None:
        self.exit_code = code
        self.machine.unregister_process(self)
        for thread in list(self._threads):
            if thread.is_alive:
                thread.abort()
        for compute in list(self._computes):
            self.machine.cpu.cancel(compute)
        self._computes.clear()
        for listener in list(self._listeners):
            listener.close()
        for conn in list(self._connections):
            conn.close()
        self.terminated.succeed(code)
        self._reap()

    def _reap(self) -> None:
        """Unlink this dead process from the process tree.

        A child stays in ``parent.children`` while it has children of its
        own (``kill_tree`` must still reach live descendants through a dead
        intermediate), and is dropped once its own subtree is gone —
        recursively unpinning dead ancestors.  Without reaping, long-lived
        parents (rshd, the daemons) accumulate every process they ever
        spawned and a service-mode run's memory grows with its history."""
        node = self
        while (
            node.parent is not None
            and not node.is_alive
            and not node.children
        ):
            parent = node.parent
            try:
                parent.children.remove(node)
            except ValueError:
                pass
            node.parent = None
            node = parent

    # -- syscalls for program bodies ---------------------------------------

    def sleep(self, seconds: float) -> Event:
        """Event firing after ``seconds`` of simulated time."""
        return self.env.timeout(seconds)

    def compute(self, cpu_seconds: float, tag: Any = None) -> Event:
        """Event firing when ``cpu_seconds`` of CPU work completes.

        The burst contends with every other runnable task on this machine
        (processor sharing) and is cancelled automatically if the process
        dies first.
        """
        done = self.machine.cpu.execute(cpu_seconds, tag=tag or self.name)
        computes = self._computes
        if len(computes) > 8:
            # Amortized pruning instead of a discard callback per burst:
            # cancelling an already-finished compute at death is a no-op,
            # so finished entries only cost memory until the next prune.
            self._computes = computes = {
                ev for ev in computes if not ev._processed
            }
        computes.add(done)
        return done

    def spawn(
        self,
        argv: Sequence[str],
        environ: Optional[Dict[str, str]] = None,
        uid: Optional[str] = None,
        startup_delay: Optional[float] = None,
        inherit_env: bool = True,
    ) -> "OSProcess":
        """fork+exec a child on this machine.

        The child inherits a copy of this process's environment (unless
        ``inherit_env`` is False — rshd starts remote commands with a fresh
        login environment) merged with ``environ`` overrides.
        """
        child_env = dict(self.environ) if inherit_env else {}
        if environ:
            child_env.update(environ)
        return OSProcess(
            self.machine,
            argv,
            uid=uid or self.uid,
            environ=child_env,
            parent=self,
            startup_delay=startup_delay,
        )

    def wait(self, child: "OSProcess") -> Event:
        """Event that fires with ``child``'s exit code (waitpid)."""
        return child.terminated

    def daemonize(self) -> None:
        """Detach into the background (see :attr:`daemonized`)."""
        if not self.daemonized.triggered:
            self.daemonized.succeed()

    def thread(self, generator, name: Optional[str] = None) -> Process:
        """Run ``generator`` concurrently *inside* this process.

        Threads share the process's sockets and die with it (they are
        aborted when the process terminates).  Used by servers that juggle
        several connections — rshd sessions, the app's per-client handlers.
        An unhandled exception in a thread crashes the whole process, like a
        real thread taking down its process.
        """
        label = f"{self.machine.name}:{self.argv[0]}#{self.pid}/{name or 'thread'}"
        thread = self.env.process(self._thread_body(generator), name=label)
        self._threads.append(thread)
        thread.add_callback(lambda _ev: self._threads.remove(thread))
        return thread

    def _thread_body(self, generator):
        try:
            result = yield from generator
        except GeneratorExit:  # being aborted alongside the process
            raise
        except Interrupt:
            return None  # process-level signal tore the thread down
        except BaseException as exc:  # noqa: BLE001 - crash the process
            if self.is_alive:
                self.exception = exc
                self.status = ProcessStatus.CRASHED
                network = self.machine.network
                if network is not None:
                    network.record_crash(self)
                self._sim_process.abort(1)
                self._finalize(1)
            return None
        return result

    # -- signals ---------------------------------------------------------------

    def signal(
        self, sig: Signal, sender: Optional["OSProcess"] = None
    ) -> bool:
        """Deliver ``sig`` to this process.

        Returns False (and delivers nothing) if the process is already dead.
        Raises :class:`PermissionError_` if ``sender`` belongs to a different
        uid — the Unix rule the paper's two-layer design exists to respect.
        """
        if sender is not None and sender.uid != self.uid:
            raise PermissionError_(
                f"{sender.uid!r} cannot signal {self.uid!r}'s pid {self.pid}"
            )
        if not self.is_alive:
            return False
        delivery = SignalDelivery(sig, sender)
        if sig is SIGKILL:
            self.status = ProcessStatus.KILLED
            self._sim_process.abort(-int(SIGKILL))
            self._finalize(-int(SIGKILL))
            return True
        self._sim_process.interrupt(delivery)
        return True

    def kill_tree(self, sig: Signal, sender: Optional["OSProcess"] = None) -> int:
        """Signal this process and every live descendant; returns count."""
        count = 0
        for child in list(self.children):
            count += child.kill_tree(sig, sender=sender)
        if self.is_alive:
            self.signal(sig, sender=sender)
            count += 1
        return count

    # -- sockets (delegated to the network) ------------------------------------

    def _network(self):
        network = self.machine.network
        if network is None:
            raise SimOSError(f"machine {self.machine.name!r} is not networked")
        return network

    def listen(self, port: int) -> "Listener":
        """Open a listening socket on ``port`` of this machine."""
        listener = self._network().listen(self, port)
        self._listeners.append(listener)
        return listener

    def connect(self, host: str, port: int) -> Event:
        """Event yielding a :class:`Connection` (or failing) after latency."""
        return self._network().connect(self, host, port)

    def adopt_connection(self, conn: "Connection") -> None:
        """Track a connection for closing when this process dies.

        Already-closed sockets are dropped amortizedly as new ones are
        adopted: a long-lived acceptor (rshd, the broker, the daemons)
        would otherwise pin every connection it ever served until death,
        growing a service-mode run's memory with its whole history."""
        connections = self._connections
        connections.append(conn)
        if len(connections) >= 32:
            live = [c for c in connections if not c.closed_local]
            if 2 * len(live) <= len(connections):
                self._connections = live

    # -- files -------------------------------------------------------------

    def expand(self, path: str) -> str:
        """Expand ``~`` and ``$HOME`` to this process's home directory."""
        if path.startswith("~"):
            path = self.home + path[1:]
        return path.replace("$HOME", self.home)

    def read_file(self, path: str) -> str:
        """Read ``path`` (with home expansion) from this machine's fs."""
        return self.machine.fs.read(self.expand(path))

    def write_file(self, path: str, content: str) -> None:
        """Create/truncate ``path`` (with home expansion)."""
        self.machine.fs.write(self.expand(path), content)

    def append_file(self, path: str, content: str) -> None:
        """Append to ``path`` (with home expansion)."""
        self.machine.fs.append(self.expand(path), content)

    def unlink_file(self, path: str) -> None:
        """Delete ``path`` if present (rm -f semantics)."""
        self.machine.fs.unlink(self.expand(path))

    def file_exists(self, path: str) -> bool:
        """Whether ``path`` (with home expansion) exists."""
        return self.machine.fs.exists(self.expand(path))

    def __repr__(self) -> str:
        return (
            f"<OSProcess {self.machine.name}:{self.pid} {self.argv[0]!r} "
            f"uid={self.uid} {self.status.value}>"
        )
