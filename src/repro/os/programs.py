"""Executable programs and PATH-style resolution.

A *program* is a generator function ``main(proc)`` run by an
:class:`~repro.os.process.OSProcess`; ``proc`` exposes the OS surface (argv,
environ, spawn, sockets, compute, ...).  Programs live in
:class:`ProgramDirectory` objects — the simulated analogue of ``/usr/bin`` —
and each machine has an ordered ``path`` of directories.

This ordering is the load-bearing mechanism of the paper: ResourceBroker
installs its ``rsh'`` (registered under the *same name* ``rsh``) in a
directory that precedes the system directory on managed machines, so any
program that execs ``rsh`` without a hard-coded absolute path transparently
gets the broker-aware version (paper §5.1 required condition 2).  A program
that *does* want a specific version may use an absolute name such as
``system:rsh``.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Iterator, Optional

from repro.os.errors import NoSuchProgram

#: Signature of a program body: a generator function taking the process.
ProgramBody = Callable[..., Generator]


class ProgramNotExecutable(NoSuchProgram):
    """Found an entry under that name but it is not a program."""


class ProgramDirectory:
    """A named collection of executables (one ``bin`` directory)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._programs: Dict[str, ProgramBody] = {}

    def register(self, name: str, body: Optional[ProgramBody] = None):
        """Register ``body`` as executable ``name``.

        Usable directly or as a decorator::

            bin = ProgramDirectory("system")

            @bin.register("null")
            def null_main(proc):
                yield proc.sleep(0)
        """
        if body is not None:
            self._validate(name, body)
            self._programs[name] = body
            return body

        def decorator(fn: ProgramBody) -> ProgramBody:
            self._validate(name, fn)
            self._programs[name] = fn
            return fn

        return decorator

    @staticmethod
    def _validate(name: str, body: ProgramBody) -> None:
        if not callable(body):
            raise TypeError(f"program {name!r} body {body!r} is not callable")
        if ":" in name:
            raise ValueError(f"program name {name!r} may not contain ':'")

    def lookup(self, name: str) -> Optional[ProgramBody]:
        """The program registered under ``name``, or ``None``."""
        return self._programs.get(name)

    def names(self) -> Iterator[str]:
        """Registered program names, sorted."""
        return iter(sorted(self._programs))

    def __contains__(self, name: str) -> bool:
        return name in self._programs

    def __repr__(self) -> str:
        return f"<ProgramDirectory {self.name!r} ({len(self._programs)} programs)>"


def resolve(path, name: str) -> ProgramBody:
    """Resolve ``name`` against an ordered list of directories.

    ``name`` may be qualified as ``"<directory>:<program>"`` (the simulated
    absolute path), which bypasses PATH order.
    """
    if ":" in name:
        dirname, progname = name.split(":", 1)
        for directory in path:
            if directory.name == dirname:
                body = directory.lookup(progname)
                if body is None:
                    raise NoSuchProgram(f"{name!r} not found")
                return body
        raise NoSuchProgram(f"directory {dirname!r} not on path")
    for directory in path:
        body = directory.lookup(name)
        if body is not None:
            return body
    raise NoSuchProgram(f"{name!r} not found on PATH {[d.name for d in path]}")
