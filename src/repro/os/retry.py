"""Bounded retry-with-backoff for boot-time connects.

A freshly spawned daemon or app racing its server's startup — or connecting
across a transiently partitioned LAN — should not give up after one refused
connect.  :func:`connect_with_backoff` is the shared policy: a capped
exponential backoff over a bounded number of attempts, after which the last
error propagates (callers keep their existing failure handling).

This is deliberately only for *establishment*.  Established connections are
never silently re-dialed: connection loss is a meaningful signal every
recovery protocol in the stack (daemon keeper, subapp reclaim, broker
liveness) is built around.
"""

from __future__ import annotations

from repro.os.errors import ConnectionRefused, NoSuchHost


def connect_with_backoff(
    proc,
    host: str,
    port: int,
    attempts: int = None,
    base: float = None,
    cap: float = None,
    counter=None,
):
    """Connect ``proc`` to ``host:port``, retrying refused attempts.

    Yield-from this inside a program body; it returns the connection or
    raises the final attempt's :class:`ConnectionRefused`/:class:`NoSuchHost`.
    Defaults come from the calibration (``connect_retry_*``); ``counter``,
    if given, is incremented once per retry (not per attempt), so a clean
    first connect contributes zero.
    """
    cal = proc.machine.network.calibration
    if attempts is None:
        attempts = cal.connect_retry_attempts
    if base is None:
        base = cal.connect_retry_base
    if cap is None:
        cap = cal.connect_retry_cap
    delay = base
    for attempt in range(attempts):
        try:
            conn = yield proc.connect(host, port)
            return conn
        except (ConnectionRefused, NoSuchHost):
            if attempt == attempts - 1:
                raise
        if counter is not None:
            counter.inc()
        backoff = proc.sleep(delay)
        try:
            yield backoff
        finally:
            # A signal (or the process dying) mid-backoff must not leave the
            # timer armed in the event heap; cancel is a no-op once fired.
            backoff.cancel()
        delay = min(delay * 2.0, cap)
    raise AssertionError("unreachable")  # pragma: no cover


def connect_any_with_backoff(
    proc,
    hosts,
    port: int,
    attempts: int = None,
    base: float = None,
    cap: float = None,
    counter=None,
):
    """:func:`connect_with_backoff` over a list of candidate hosts.

    Each backoff round dials **every** candidate in order (primary first,
    then the well-known secondary) before sleeping — a client of a service
    that can fail over to a warm standby must not burn whole backoff
    rounds on a dead primary while the promoted secondary is already
    listening; that delay is directly client-visible failover disruption
    (bench_failover measures it).  With a single host this is
    byte-identical to :func:`connect_with_backoff`.
    """
    cal = proc.machine.network.calibration
    if attempts is None:
        attempts = cal.connect_retry_attempts
    if base is None:
        base = cal.connect_retry_base
    if cap is None:
        cap = cal.connect_retry_cap
    hosts = list(hosts)
    delay = base
    for attempt in range(attempts):
        error = None
        for host in hosts:
            try:
                conn = yield proc.connect(host, port)
                return conn
            except (ConnectionRefused, NoSuchHost) as exc:
                error = exc
        if attempt == attempts - 1:
            raise error
        if counter is not None:
            counter.inc()
        backoff = proc.sleep(delay)
        try:
            yield backoff
        finally:
            backoff.cancel()
        delay = min(delay * 2.0, cap)
    raise AssertionError("unreachable")  # pragma: no cover


def connect_any_forever(
    proc,
    hosts,
    port: int,
    base: float = None,
    cap: float = None,
    counter=None,
):
    """:func:`connect_forever` over a list of candidate hosts (see
    :func:`connect_any_with_backoff` for the every-candidate-per-round
    rule)."""
    cal = proc.machine.network.calibration
    if base is None:
        base = cal.connect_retry_base
    if cap is None:
        cap = cal.connect_retry_cap
    hosts = list(hosts)
    delay = base
    while True:
        for host in hosts:
            try:
                conn = yield proc.connect(host, port)
                return conn
            except (ConnectionRefused, NoSuchHost):
                pass
        if counter is not None:
            counter.inc()
        backoff = proc.sleep(delay)
        try:
            yield backoff
        finally:
            backoff.cancel()
        delay = min(delay * 2.0, cap)


def connect_forever(
    proc,
    host: str,
    port: int,
    base: float = None,
    cap: float = None,
    counter=None,
):
    """Connect ``proc`` to ``host:port``, retrying refused attempts forever.

    The unbounded sibling of :func:`connect_with_backoff`, for callers whose
    only correct move is to keep trying: a monitoring daemon re-registering
    with a broker that may be down arbitrarily long must never give up
    (exiting would deadlock the broker's keeper, which respawns daemons only
    when their *connection* drops).  Backoff is capped, so the retry cadence
    settles at ``cap`` seconds; the process dying (machine crash, kill)
    tears the loop down the ordinary way.
    """
    cal = proc.machine.network.calibration
    if base is None:
        base = cal.connect_retry_base
    if cap is None:
        cap = cal.connect_retry_cap
    delay = base
    while True:
        try:
            conn = yield proc.connect(host, port)
            return conn
        except (ConnectionRefused, NoSuchHost):
            pass
        if counter is not None:
            counter.inc()
        backoff = proc.sleep(delay)
        try:
            yield backoff
        finally:
            backoff.cancel()
        delay = min(delay * 2.0, cap)
