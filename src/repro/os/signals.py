"""Unix-style signals for simulated processes.

Delivery semantics mirror the subset of POSIX the paper's revocation protocol
uses ("the subapp sends a standard Unix signal to the child process, and if
the child does not terminate within a specified amount of time, the subapp
terminates the child"):

* ``SIGKILL`` can never be caught: the target terminates at the current
  instant with exit code ``-9``.
* All other signals are delivered as a :class:`~repro.sim.process.Interrupt`
  whose cause is a :class:`SignalDelivery`.  A program that does not catch the
  interrupt terminates with exit code ``-signum``; a program that catches it
  may clean up and exit — or keep running.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional


class Signal(enum.IntEnum):
    """The signal numbers the simulator knows about."""

    SIGINT = 2
    SIGKILL = 9
    SIGTERM = 15


SIGINT = Signal.SIGINT
SIGKILL = Signal.SIGKILL
SIGTERM = Signal.SIGTERM


@dataclass(frozen=True)
class SignalDelivery:
    """Payload attached to the interrupt that delivers a signal.

    Attributes
    ----------
    signal:
        Which signal.
    sender:
        The :class:`~repro.os.process.OSProcess` (or ``None`` for
        kernel/harness-originated signals) that sent it.
    """

    signal: Signal
    sender: Optional[Any] = None

    def __str__(self) -> str:
        return self.signal.name
