"""Allocation policies (mechanism/policy separation, paper design goal 5).

Policies are plain objects deciding *who gets which machine*; all enforcement
(the how) lives in the broker mechanisms.  Swapping a policy never touches
protocol code — exactly the "easily plug-in module" the paper asks for.
"""

from repro.policy.base import Decision, DecisionKind, Policy
from repro.policy.default import DefaultPolicy
from repro.policy.simple import FifoPolicy, RandomIdlePolicy

__all__ = [
    "Decision",
    "DecisionKind",
    "DefaultPolicy",
    "FifoPolicy",
    "Policy",
    "RandomIdlePolicy",
]
