"""Policy interface."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle:
    # repro.broker's package init pulls in the default policy)
    from repro.broker.state import BrokerState, MachineRecord, PendingRequest


class DecisionKind(enum.Enum):
    """What the policy wants the broker to do for a request."""

    GRANT = "grant"  # give `host` to the requester now
    PREEMPT = "preempt"  # reclaim `host` from `victim_jobid`, then grant
    WAIT = "wait"  # nothing can be done yet; keep the request queued


@dataclass(frozen=True)
class Decision:
    kind: DecisionKind
    host: Optional[str] = None
    victim_jobid: Optional[int] = None
    reason: str = ""

    @classmethod
    def grant(cls, host: str) -> "Decision":
        return cls(DecisionKind.GRANT, host=host)

    @classmethod
    def preempt(cls, host: str, victim_jobid: int) -> "Decision":
        return cls(DecisionKind.PREEMPT, host=host, victim_jobid=victim_jobid)

    @classmethod
    def wait(cls, reason: str = "") -> "Decision":
        return cls(DecisionKind.WAIT, reason=reason)


class Policy:
    """Base class for allocation policies."""

    name = "abstract"

    def decide(
        self, state: "BrokerState", request: "PendingRequest"
    ) -> Decision:
        """Choose what to do for one queued machine request.

        Called whenever the request might become satisfiable (arrival, a
        machine freeing up, a daemon report changing eligibility).  Must not
        mutate ``state``.
        """
        raise NotImplementedError

    def reclaim_on_owner_return(
        self, state: "BrokerState", machine: "MachineRecord"
    ) -> bool:
        """Should the broker revoke ``machine``'s allocation now that its
        owner is at the console?  Default: yes (the paper's absolute-priority
        rule for private machines)."""
        return machine.kind == "private"

    def __repr__(self) -> str:
        return f"<Policy {self.name}>"
