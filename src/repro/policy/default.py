"""The paper's default allocation policy (§2), made precise.

The paper states three rules:

1. machines are *private* or *public*; private machines go only to adaptive
   jobs and the owner has absolute priority (revocation on return);
2. machines should be allocated just-in-time, not pre-reserved;
3. "in other cases, ResourceBroker tries to evenly partition machines among
   jobs".

The evaluation adds an implicit fourth rule: *firm* demand (a non-adaptive
job, or an explicit user-driven grow such as a PVM-console ``add``) preempts
*elastic* holdings (machines an adaptive job soaked up opportunistically) —
Table 2 shows a sequential job taking a machine from a running Calypso
computation, and Figure 7 shows a PVM virtual machine growing to the full
cluster at Calypso's expense.  Elastic jobs never preempt firm allocations
and even-partition only among themselves.

Preemption picks the *richest* elastic holder first (most allocations), so
repeated firm requests drain holders evenly from the top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.policy.base import Decision, Policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.broker.state import (
        Allocation,
        BrokerState,
        MachineRecord,
        PendingRequest,
    )


class DefaultPolicy(Policy):
    """Private/public × firm/elastic rules as described above."""

    name = "default"

    def decide(self, state: "BrokerState", request: "PendingRequest") -> Decision:
        """Grant an idle machine, preempt an elastic holder, or wait."""
        if state.use_indexes:
            # Query the state's partitioned indexes: the idle search walks
            # the idle heaps in grant-preference order (O(log n) per grant,
            # O(1) on a fully-allocated cluster however large it is), and
            # the victim search touches only the held machines whose
            # platform can match.  Both searches order by total-order keys,
            # so index iteration order never shows through in the decision.
            best = state.best_idle(request)
            if best is not None:
                return Decision.grant(best.host)
            eligible = state.held_eligible(request)
        else:
            # Reference path: one full eligibility scan serves both the idle
            # search and the victim search.
            eligible = state.eligible_machines(request)
            idle = [m for m in eligible if m.allocation is None]
            if idle:
                idle.sort(
                    key=lambda m: (m.kind != "public", m.cpu_load, m.host)
                )
                return Decision.grant(idle[0].host)

        victim = self._pick_victim(state, request, eligible)
        if victim is not None:
            machine, allocation = victim
            return Decision.preempt(machine.host, allocation.jobid)
        return Decision.wait("no idle machine and no preemptable holding")

    # -- internals ----------------------------------------------------------

    def _pick_victim(
        self, state: "BrokerState", request: "PendingRequest", eligible
    ) -> Optional[Tuple["MachineRecord", "Allocation"]]:
        candidates = self._preemptable(state, request, eligible)
        if not candidates:
            return None
        requester_holdings = state.holding_count(request.jobid)

        def richness(item: Tuple[MachineRecord, Allocation]) -> Tuple:
            machine, allocation = item
            return (
                -state.holding_count(allocation.jobid),  # richest holder first
                machine.kind != "public",  # prefer freeing public machines
                -allocation.granted_at,  # most recently granted first
                machine.host,
            )

        candidates.sort(key=richness)
        machine, allocation = candidates[0]
        if request.firm:
            return machine, allocation
        # Elastic requester: preempt only to restore even partition.
        if state.holding_count(allocation.jobid) > requester_holdings + 1:
            return machine, allocation
        return None

    def _preemptable(
        self, state: "BrokerState", request: "PendingRequest", eligible
    ) -> List[Tuple["MachineRecord", "Allocation"]]:
        result = []
        for machine in eligible:
            allocation = machine.allocation
            if allocation is None:
                continue
            if allocation.jobid == request.jobid:
                continue  # never preempt yourself
            if allocation.firm:
                continue  # firm holdings are stable; FIFO wait instead
            if allocation.state.value != "active":
                continue  # pending/reclaiming machines are already spoken for
            result.append((machine, allocation))
        return result
