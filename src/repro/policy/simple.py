"""Baseline policies used by the ablation benchmarks.

These deliberately drop parts of the default policy so the benches can
isolate what each rule buys:

* :class:`FifoPolicy` — never preempts.  Requests wait until a machine frees
  naturally.  Against the default policy this shows what just-in-time
  *reallocation* (as opposed to allocation) is worth.
* :class:`RandomIdlePolicy` — grants a uniformly random idle machine and
  never preempts; the weakest reasonable baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.policy.base import Decision, Policy


class FifoPolicy(Policy):
    """Grant idle machines in deterministic order; never preempt."""

    name = "fifo"

    def decide(self, state, request) -> Decision:
        """Grant the first idle machine or wait; never preempt."""
        idle = state.idle_machines(request)
        if idle:
            return Decision.grant(idle[0].host)
        return Decision.wait("fifo: waiting for a machine to free")

    def reclaim_on_owner_return(self, state, machine) -> bool:
        """Owner priority still applies under FIFO."""
        # Still honour the owner's absolute priority; only preemption for
        # *other jobs* is disabled.
        return machine.kind == "private"


class RandomIdlePolicy(Policy):
    """Grant a uniformly random idle machine; never preempt."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng: Optional[np.random.Generator] = np.random.default_rng(seed)

    def decide(self, state, request) -> Decision:
        """Grant a uniformly random idle machine or wait."""
        idle = state.idle_machines(request)
        if idle:
            pick = int(self._rng.integers(0, len(idle)))
            return Decision.grant(idle[pick].host)
        return Decision.wait("random: waiting for a machine to free")
