"""The standard remote shell: ``rsh`` client and ``rshd`` daemon.

This is the commodity mechanism parallel programming systems use to start
remote processes, and the exact interface ResourceBroker intercepts: its
``rsh'`` (:mod:`repro.broker.rshprime`) shadows this program on the PATH of
managed machines.
"""

from repro.rsh.daemon import RSHD_PORT, rshd_main
from repro.rsh.client import RshExit, install_rsh, remote_exec, rsh_main

__all__ = [
    "RSHD_PORT",
    "RshExit",
    "install_rsh",
    "remote_exec",
    "rsh_main",
    "rshd_main",
]
