"""``rsh`` — the standard remote shell client.

``rsh <host> <command> [args...]`` starts ``command`` on ``host`` via that
machine's rshd, blocks until the remote command exits (or daemonizes) and
returns its exit code.  This is deliberately the *dumb* commodity tool: host
names are used verbatim; a symbolic name like ``anylinux`` simply fails to
resolve.  The broker's ``rsh'`` wrapper builds on :func:`remote_exec`.
"""

from __future__ import annotations

from repro.cluster import ports
from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost


class RshExit:
    """Conventional rsh exit codes."""

    OK = 0
    ERROR = 1  # connection/lookup/remote-exec failure


def remote_exec(proc, host, command_argv, user=None):
    """Run ``command_argv`` on ``host`` through its rshd; yield-from this.

    Returns 0 on success, 1 on any failure (rsh does not forward the remote
    exit code; it only distinguishes success from failure).
    """
    if not command_argv:
        return RshExit.ERROR
    calibration = proc.machine.network.calibration

    # Connect + authenticate to the remote daemon.
    yield proc.sleep(calibration.rsh_connect)
    try:
        conn = yield proc.connect(host, ports.RSHD)
    except (NoSuchHost, ConnectionRefused):
        return RshExit.ERROR

    conn.send(
        {
            "type": "exec",
            "user": user or proc.uid,
            "argv": list(command_argv),
            "block": True,
        }
    )
    try:
        started = yield conn.recv()
        if started.get("type") != "started":
            conn.close()
            return RshExit.ERROR
        finished = yield conn.recv()
    except ConnectionClosed:
        return RshExit.ERROR
    conn.close()
    if finished.get("type") != "exit":
        return RshExit.ERROR
    code = int(finished.get("code", 0))
    return RshExit.OK if code == 0 else RshExit.ERROR


def rsh_main(proc):
    """Program body: ``argv = ["rsh", host, command, args...]``."""
    if len(proc.argv) < 3:
        return RshExit.ERROR
    code = yield from remote_exec(proc, proc.argv[1], proc.argv[2:])
    return code


def install_rsh(directory) -> None:
    """Register ``rsh`` and ``rshd`` in a program directory."""
    from repro.rsh.daemon import rshd_main

    directory.register("rsh", rsh_main)
    directory.register("rshd", rshd_main)
