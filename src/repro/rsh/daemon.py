"""``rshd`` — the remote shell daemon.

One instance listens on port 514 of every machine.  The wire protocol is a
simulation of the BSD rshd exchange:

1. the client connects and sends an ``exec`` request
   ``{"user", "argv", "block"}``;
2. after the fork cost, rshd spawns the command as ``user`` and replies
   ``{"type": "started", "pid": ...}``;
3. if ``block`` (the rsh client is attached), rshd waits until the command
   exits — or daemonizes, like ``pvmd`` — then sends
   ``{"type": "exit", "code": ...}`` and closes.

Failures (unresolvable program, bad request) produce
``{"type": "error", "message": ...}`` with exit code 1, matching how a real
rsh surfaces ``rshd: command not found``.
"""

from __future__ import annotations

from repro.cluster import ports
from repro.os.errors import ConnectionClosed, NoSuchProgram

RSHD_PORT = ports.RSHD


def _safe_send(conn, message) -> bool:
    """Send unless the connection was severed under us (machine crash,
    partition); a daemon must outlive any one client."""
    try:
        conn.send(message)
        return True
    except ConnectionClosed:
        return False


def rshd_main(proc):
    """Program body of the rsh daemon (runs forever)."""
    listener = proc.listen(RSHD_PORT)
    while True:
        try:
            conn = yield listener.accept()
        except ConnectionClosed:
            return 0
        proc.thread(_serve(proc, conn), name="rshd-session")


def _serve(proc, conn):
    """Handle one rsh client connection."""
    calibration = proc.machine.network.calibration
    try:
        request = yield conn.recv()
    except ConnectionClosed:
        conn.close()
        return
    if not isinstance(request, dict) or request.get("type") != "exec":
        _safe_send(conn, {"type": "error", "message": f"bad request {request!r}"})
        conn.close()
        return

    user = request.get("user", "nobody")
    argv = request.get("argv") or []
    block = bool(request.get("block", True))
    if not argv:
        _safe_send(conn, {"type": "error", "message": "empty command"})
        conn.close()
        return

    # The fork/exec cost of the daemon spawning the command.
    yield proc.sleep(calibration.rshd_fork)

    try:
        child = proc.spawn(
            argv,
            uid=user,
            environ={"HOME": f"/home/{user}"},
            inherit_env=False,
        )
    except NoSuchProgram as exc:
        _safe_send(conn, {"type": "error", "message": str(exc)})
        conn.close()
        return

    _safe_send(conn, {"type": "started", "pid": child.pid, "host": proc.machine.name})
    if block:
        outcome = yield proc.env.any_of([child.terminated, child.daemonized])
        if child.terminated in outcome:
            code = child.exit_code if child.exit_code is not None else 0
        else:
            code = 0  # command detached; report success to the client
        _safe_send(conn, {"type": "exit", "code": code})
    conn.close()
