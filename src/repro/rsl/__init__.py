"""Resource Specification Language (RSL).

ResourceBroker "adopted the Resource Specification Language of Globus, and
extended it to support adaptive programs.  Specifically, ``adaptive``,
``start_script``, and ``module`` parameters were added" (paper §4.1).  The
running example is::

    +(count>=4)(arch="i686linux")(module="pvm")

This package provides the parser, the request object, and symbolic host-name
matching (``anyhost``, ``anylinux``, ...).
"""

from repro.rsl.parser import (
    RSLError,
    RSLRequest,
    is_symbolic_hostname,
    parse_rsl,
    symbolic_matches,
)

__all__ = [
    "RSLError",
    "RSLRequest",
    "is_symbolic_hostname",
    "parse_rsl",
    "symbolic_matches",
]
