"""Parser for the (extended) Globus Resource Specification Language.

Grammar (the subset the paper uses)::

    spec    := ['+' | '&'] clause*
    clause  := '(' attr [op value] ')'
    op      := '=' | '!=' | '>=' | '<=' | '>' | '<'
    attr    := identifier
    value   := '"' chars '"' | number | identifier

A bare ``(attr)`` clause is a boolean flag (used by the ``adaptive``
extension).  Multiple clauses conjoin.  Unknown attributes are kept and
matched verbatim against machine snapshot fields, so the language is open to
extension without parser changes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

_CLAUSE = re.compile(
    r"""\(\s*
        (?P<attr>[A-Za-z_][A-Za-z0-9_\-]*)
        \s*
        (?:(?P<op>>=|<=|!=|=|>|<)\s*
           (?P<value>"[^"]*"|[^\s()]+)
        )?
        \s*\)""",
    re.VERBOSE,
)

_COMPARABLE_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
}


class RSLError(ValueError):
    """Malformed RSL text."""


def _coerce(raw: str) -> Any:
    if raw.startswith('"') and raw.endswith('"'):
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


@dataclass(frozen=True)
class Clause:
    """One ``(attr op value)`` constraint."""

    attr: str
    op: str
    value: Any

    def test(self, actual: Any) -> bool:
        """Does ``actual`` satisfy this clause?"""
        if self.op == "flag":
            return bool(actual)
        try:
            return _COMPARABLE_OPS[self.op](actual, self.value)
        except TypeError:
            return False

    def __str__(self) -> str:
        if self.op == "flag":
            return f"({self.attr})"
        value = f'"{self.value}"' if isinstance(self.value, str) else self.value
        return f"({self.attr}{self.op}{value})"


@dataclass
class RSLRequest:
    """A parsed resource specification.

    The paper's extended attributes get first-class accessors; everything
    else is matched against machine snapshots via :meth:`matches_machine`.
    """

    clauses: List[Clause] = field(default_factory=list)
    source: str = ""

    # -- paper-defined attributes --------------------------------------------

    @property
    def count_min(self) -> int:
        """Minimum machine count (``(count>=4)``); defaults to 1."""
        for clause in self.clauses:
            if clause.attr == "count":
                if clause.op in (">=", "=", ">"):
                    bump = 1 if clause.op == ">" else 0
                    return int(clause.value) + bump
        return 1

    @property
    def module(self) -> Optional[str]:
        """External module name (``(module="pvm")``), or None."""
        for clause in self.clauses:
            if clause.attr == "module" and clause.op in ("=", "flag"):
                return str(clause.value) if clause.op == "=" else None
        return None

    @property
    def adaptive(self) -> bool:
        """The ``adaptive`` extension flag.

        Module-managed jobs (PVM/LAM) are inherently adaptive too — the
        module exists precisely to grow/shrink them — so ``module`` implies
        adaptive.
        """
        for clause in self.clauses:
            if clause.attr == "adaptive":
                return clause.op != "=" or bool(clause.value)
        return self.module is not None

    @property
    def start_script(self) -> Optional[str]:
        for clause in self.clauses:
            if clause.attr == "start_script" and clause.op == "=":
                return str(clause.value)
        return None

    @property
    def arch(self) -> Optional[str]:
        for clause in self.clauses:
            if clause.attr == "arch" and clause.op == "=":
                return str(clause.value)
        return None

    # -- matching -----------------------------------------------------------

    _MACHINE_ATTRS = {"arch": "platform"}
    _NON_MACHINE = {"count", "module", "adaptive", "start_script"}

    def matches_machine(self, snapshot: Dict[str, Any]) -> bool:
        """True if a machine snapshot satisfies every machine constraint."""
        for clause in self.clauses:
            if clause.attr in self._NON_MACHINE:
                continue
            key = self._MACHINE_ATTRS.get(clause.attr, clause.attr)
            if not clause.test(snapshot.get(key)):
                return False
        return True

    def __str__(self) -> str:
        return "+" + "".join(str(c) for c in self.clauses)


def parse_rsl(text: str) -> RSLRequest:
    """Parse RSL ``text`` into an :class:`RSLRequest`.

    The empty string is a valid specification with no constraints.
    """
    stripped = text.strip()
    body = stripped
    if body.startswith(("+", "&")):
        body = body[1:].strip()
    clauses: List[Clause] = []
    pos = 0
    while pos < len(body):
        match = _CLAUSE.match(body, pos)
        if match is None:
            raise RSLError(f"cannot parse RSL at {body[pos:]!r} in {text!r}")
        attr = match.group("attr")
        op = match.group("op")
        if op is None:
            clauses.append(Clause(attr, "flag", True))
        else:
            clauses.append(Clause(attr, op, _coerce(match.group("value"))))
        pos = match.end()
        while pos < len(body) and body[pos].isspace():
            pos += 1
    return RSLRequest(clauses=clauses, source=stripped)


# -- symbolic host names ------------------------------------------------------

#: Prefix that marks a host name as a request rather than an address
#: (paper §4.2: "anyhost", "anylinux").
SYMBOLIC_PREFIX = "any"


def is_symbolic_hostname(name: str) -> bool:
    """True for broker-interpreted names like ``anyhost`` or ``anylinux``."""
    return name.lower().startswith(SYMBOLIC_PREFIX)


def symbolic_matches(name: str, snapshot: Dict[str, Any]) -> bool:
    """Does a machine snapshot satisfy a symbolic host name?

    ``anyhost`` (or bare ``any``) matches every machine; ``any<text>``
    matches machines whose platform string contains ``<text>`` — e.g.
    ``anylinux`` matches platform ``i686linux``.
    """
    if not is_symbolic_hostname(name):
        raise ValueError(f"{name!r} is not a symbolic host name")
    suffix = name.lower()[len(SYMBOLIC_PREFIX):]
    if suffix in ("", "host"):
        return True
    return suffix in str(snapshot.get("platform", "")).lower()
