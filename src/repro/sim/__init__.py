"""Discrete-event simulation kernel.

The kernel is a small, self-contained, SimPy-flavoured engine: simulated
*processes* are Python generators that ``yield`` :class:`~repro.sim.events.Event`
objects; the :class:`~repro.sim.environment.Environment` owns the event queue
and the simulated clock.  Everything above this package (the simulated OS, the
cluster, ResourceBroker itself and the parallel programming systems) is written
in terms of these primitives.

Determinism
-----------
Event ordering is a strict total order on ``(time, priority, sequence)`` where
``sequence`` is a global insertion counter, so two runs of the same program
with the same seed produce identical traces.  All randomness flows through
:mod:`repro.sim.rng`.
"""

from repro.sim.environment import Environment
from repro.sim.events import (
    URGENT,
    NORMAL,
    LOW,
    AllOf,
    AnyOf,
    Event,
    EventAborted,
    Timeout,
)
from repro.sim.process import Interrupt, Process, ProcessDied
from repro.sim.stores import FilterStore, Resource, Store, StoreFull
from repro.sim.pshare import ProcessorSharingQueue, PSTask
from repro.sim.rng import SimRandom

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "EventAborted",
    "FilterStore",
    "Interrupt",
    "LOW",
    "NORMAL",
    "PSTask",
    "Process",
    "ProcessDied",
    "ProcessorSharingQueue",
    "Resource",
    "SimRandom",
    "Store",
    "StoreFull",
    "Timeout",
    "URGENT",
]
