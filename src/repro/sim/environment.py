"""The simulation environment: clock, partitioned event lanes and run loop.

The kernel's pending-event state lives in :class:`Lane` objects — each lane
owns one binary heap of ``(time, priority, seq, event)`` entries.  A default
environment has a single lane and behaves exactly like the classic serial
kernel.  With ``lanes=N`` the machine population of a simulated cluster is
partitioned across lanes (see :mod:`repro.cluster.builder`): every lane gets
its own, much smaller heap, and the run loop interleaves lanes in the exact
serial total order ``(time, priority, seq)`` — the global sequence counter is
shared, so an N-lane run is event-for-event identical to a 1-lane run while
paying ``O(log(H/N))`` per heap operation and dispatching *runs* of
consecutive same-lane events without re-scanning the other lanes (the
conservative window: a lane provably holds the global minimum until another
lane's head could undercut it or a cross-lane push lands).

True windowed parallelism across OS processes — lanes advancing to
``min(neighbor clocks) + lookahead`` and exchanging timestamped envelopes —
lives in :mod:`repro.sim.lanes`; it requires partitions that share no Python
state, which the in-process cluster simulation deliberately does not enforce.
See DESIGN.md §15 for the model and its safety argument.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappop
from typing import Any, Deque, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import SimRandom


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to halt :meth:`Environment.run` when its ``until`` event fires."""


class Lane:
    """One partition's share of the pending-event state.

    A lane owns its heap plus the per-partition observability the broker's
    ``stats`` RPC reports: the clock of its most recent dispatch (lane clock
    skew = spread of these across lanes), a sampled heap high-water mark and
    the window-stall counter (times a batched run of this lane's events was
    cut short by another lane).  In single-lane mode the per-lane numbers
    mirror the environment-wide counters.
    """

    __slots__ = ("id", "heap", "high_water", "clock", "processed", "window_stalls")

    def __init__(self, lane_id: int, clock: float) -> None:
        self.id = lane_id
        self.heap: List[Tuple[float, int, int, Event]] = []
        #: Sampled at dispatch boundaries and stats time (exact enough for
        #: capacity planning; the *global* high-water mark is exact).
        self.high_water = 0
        #: Simulated time of the last event dispatched from this lane.
        self.clock = clock
        self.processed = 0
        #: Times a batched same-lane run was broken by a cross-lane push or
        #: by another lane's head undercutting this lane's next event.
        self.window_stalls = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Lane {self.id} pending={len(self.heap)} clock={self.clock:.6f}>"


class Environment:
    """Owns simulated time and the pending-event lanes.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    seed:
        Seed for the environment-wide random stream (see
        :class:`~repro.sim.rng.SimRandom`).  Every source of randomness in a
        simulation must derive from this stream for runs to be reproducible.
    lanes:
        Number of event lanes.  ``1`` (the default) is the classic serial
        kernel; ``N > 1`` partitions the heap while preserving the serial
        total order exactly (see module docstring).
    """

    #: Below this heap size, compaction is never worth the heapify.
    COMPACT_MIN = 64

    def __init__(
        self, initial_time: float = 0.0, seed: int = 0, lanes: int = 1
    ) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes!r}")
        self._now = float(initial_time)
        self._lanes: List[Lane] = [Lane(i, self._now) for i in range(lanes)]
        self._nlanes = lanes
        #: The ambient lane: events scheduled right now land in its heap.
        #: The run loop points it at the lane being dispatched; cross-lane
        #: producers (the network, process spawns) retarget it around their
        #: pushes via lane_scope()/lane_restore().
        self._lane: Lane = self._lanes[0]
        #: Hot alias of ``self._lane.heap`` — the inlined push sites in
        #: events.py write through this name.  Rebound only on lane switches,
        #: never replaced with a new list (compaction mutates in place).
        self._queue: List[Tuple[float, int, int, Event]] = self._lane.heap
        #: Triggered events to process *now*, ahead of the heaps: completions
        #: known to occur at the current instant skip the O(log n) heap
        #: round-trip.  Their callbacks still run from the top-level loop
        #: (never nested inside another event's callbacks).  Global FIFO
        #: across lanes — immediate ordering is part of the serial contract.
        self._immediate: Deque[Event] = deque()
        self._eid = 0
        self._active_process: Optional[Process] = None
        self.rng = SimRandom(seed)
        #: Cancelled events still occupying heap entries (lazy deletion),
        #: summed across lanes.
        self._dead = 0
        #: Live + dead entries across all lane heaps (the single-heap
        #: ``len(queue)`` of the classic kernel, kept as a counter so the
        #: inlined push sites stay O(1) regardless of lane count).
        self._pending = 0
        #: Set by any push that targets a lane other than the one being
        #: dispatched; tells the laned run loop its cached window bound may
        #: be stale.
        self._cross_push = False
        # Kernel counters, exposed via heap_stats() for benchmarks.
        self._processed = 0
        self._skipped = 0
        self._compactions = 0
        self._heap_high_water = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def lane_count(self) -> int:
        """Number of event lanes (1 = classic serial kernel)."""
        return self._nlanes

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Queue ``event`` for processing after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._eid += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._eid, event)
        )
        if event._cancelled:
            # Triggering an event cancelled while still pending: the fresh
            # heap entry is born dead.
            self._dead += 1
        pending = self._pending + 1
        self._pending = pending
        if pending > self._heap_high_water:
            self._heap_high_water = pending

    def schedule_into(
        self, lane_id: int, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Queue ``event`` in a specific lane's heap.

        The explicit cross-lane scheduling primitive: ordering is unaffected
        (the total order is lane-agnostic), but placement keeps per-lane
        stats honest and lets the laned run loop batch machine-local runs.
        """
        token = self.lane_scope(lane_id)
        self.schedule(event, delay, priority)
        self.lane_restore(token)

    def lane_scope(self, lane_id: int) -> Lane:
        """Retarget the ambient lane; returns a token for lane_restore().

        Used by the network and process layers to drop events into the lane
        that owns the destination machine.  Cheap enough for hot paths: two
        attribute writes when the lane actually changes, one compare when it
        does not.
        """
        lane = self._lanes[lane_id]
        prev = self._lane
        if lane is not prev:
            self._lane = lane
            self._queue = lane.heap
            self._cross_push = True
        return prev

    def lane_restore(self, token: Lane) -> None:
        """Undo a :meth:`lane_scope` (pass the token it returned)."""
        self._lane = token
        self._queue = token.heap

    def _note_cancelled(self) -> None:
        """A scheduled event was cancelled; compact when dead entries win."""
        self._dead += 1
        if self._dead * 2 > self._pending and self._pending >= self.COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the lane heaps in one O(n) pass.

        Mutates each heap *in place*: the run loop holds local aliases to
        the lists across callback execution, and compaction can run from
        inside a callback.
        """
        pending = 0
        for lane in self._lanes:
            heap = lane.heap
            heap[:] = [e for e in heap if not e[3]._cancelled]
            heapq.heapify(heap)
            pending += len(heap)
        self._pending = pending
        self._dead = 0
        self._compactions += 1

    def deliver_now(self, event: Event) -> None:
        """Queue a triggered event for processing at the current instant.

        The fast-path alternative to ``succeed()``-style scheduling for
        completions that must run *now*: the event skips the heap and is
        processed (FIFO among immediate events) before the next heap pop.
        The caller must have set ``_ok``/``_value`` already.
        """
        self._immediate.append(event)

    def peek(self) -> float:
        """Time of the next *live* scheduled event, or ``inf`` if none.

        Cancelled entries at the heads are purged on the way — ``run`` relies
        on peek to decide whether the next event lies past its horizon, so a
        dead head must never stand in for a live event beyond it.
        """
        if self._immediate:
            return self._now
        best = float("inf")
        for lane in self._lanes:
            heap = lane.heap
            while heap and heap[0][3]._cancelled:
                heappop(heap)
                self._dead -= 1
                self._skipped += 1
                self._pending -= 1
            if heap and heap[0][0] < best:
                best = heap[0][0]
        return best

    def _pop_next(self) -> Tuple[float, Lane, Event]:
        """Pop the globally minimal live entry across lanes (step() helper)."""
        best: Optional[Lane] = None
        best_key: Optional[Tuple[float, int, int, Event]] = None
        for lane in self._lanes:
            heap = lane.heap
            while heap and heap[0][3]._cancelled:
                heappop(heap)
                self._dead -= 1
                self._skipped += 1
                self._pending -= 1
            if heap and (best_key is None or heap[0] < best_key):
                best_key = heap[0]
                best = lane
        if best is None:
            raise EmptySchedule()
        heappop(best.heap)
        self._pending -= 1
        assert best_key is not None
        return best_key[0], best, best_key[3]

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time.

        Cancelled entries encountered on the way are discarded without
        running callbacks (and without consuming the step).
        """
        imm = self._immediate
        while imm:
            event = imm.popleft()
            if event._cancelled:
                self._skipped += 1
                continue
            self._lane.processed += 1
            self._dispatch(event)
            return
        when, lane, event = self._pop_next()
        self._now = when
        lane.clock = when
        lane.processed += 1
        self._lane = lane
        self._queue = lane.heap
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Run one popped event's callbacks (shared by step and run)."""
        self._processed += 1
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An exception nobody consumed: abort the run loudly.
            exc = event._value
            raise exc

    def heap_stats(self) -> dict:
        """Kernel counters for benchmarks (see ``benchmarks/bench_scale``).

        The top-level numbers are environment-wide and *identical for any
        lane count* (the laned executor preserves the serial total order);
        the ``lanes`` list carries the per-partition detail — heap high-water
        per lane, each lane's clock (skew between them is the spread), and
        window-stall counts.  Callers folding heap stats into determinism
        documents should drop the ``lanes`` key, which legitimately varies
        with the lane configuration.
        """
        single = self._nlanes == 1
        lanes = []
        for lane in self._lanes:
            pending = len(lane.heap)
            if pending > lane.high_water:
                lane.high_water = pending
            lanes.append(
                {
                    "lane": lane.id,
                    "pending": pending,
                    "heap_high_water": (
                        self._heap_high_water if single else lane.high_water
                    ),
                    "clock": self._now if single else lane.clock,
                    "processed": self._processed if single else lane.processed,
                    "window_stalls": lane.window_stalls,
                }
            )
        return {
            "pushes": self._eid,
            "processed": self._processed,
            "skipped_cancelled": self._skipped,
            "compactions": self._compactions,
            "heap_high_water": self._heap_high_water,
            "pending": self._pending,
            "dead_pending": self._dead,
            "lanes": lanes,
        }

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or queue exhaustion).

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until the clock reaches it.
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (raising if it failed).
        """
        stop_at = None
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.processed:
                    if stop_event.ok:
                        return stop_event.value
                    raise stop_event.value
                stop_event.add_callback(self._stop_callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at!r} is in the past (now={self._now!r})"
                    )
        if self._nlanes == 1:
            return self._run_single(stop_at, stop_event)
        return self._run_laned(stop_at, stop_event)

    def _run_single(self, stop_at, stop_event) -> Any:
        # The loop below is step() with peek() fused in: one heap access and
        # no per-event function calls.  This is the single hottest loop in
        # the whole system — any semantic change here must be mirrored in
        # step()/peek() and in _run_laned(), which preserves the same total
        # order across N lanes.
        queue = self._queue  # safe alias: _compact() mutates in place
        imm = self._immediate
        pop = heappop
        try:
            while True:
                if imm:
                    event = imm.popleft()
                    if event._cancelled:
                        self._skipped += 1
                        continue
                else:
                    while queue and queue[0][3]._cancelled:
                        pop(queue)
                        self._dead -= 1
                        self._skipped += 1
                        self._pending -= 1
                    if not queue:
                        if stop_at is not None:
                            self._now = stop_at
                        return None
                    entry = queue[0]
                    if stop_at is not None and entry[0] > stop_at:
                        self._now = stop_at
                        return None
                    pop(queue)
                    self._pending -= 1
                    event = entry[3]
                    self._now = entry[0]
                self._processed += 1
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # An exception nobody consumed: abort the run loudly.
                    raise event._value
        except StopSimulation:
            assert stop_event is not None
            if stop_event.ok:
                return stop_event.value
            raise stop_event.value from None

    def _run_laned(self, stop_at, stop_event) -> Any:
        # Exact-merge executor over N lane heaps: pops the global minimum
        # ``(time, priority, seq)`` so the total order equals _run_single's
        # bit for bit.  The win is batching — once a lane holds the global
        # minimum it keeps dispatching (small-heap pops, no cross-lane scan)
        # until another lane's cached head key could undercut it, an
        # immediate lands, or a push targets another lane.  That bound is
        # the in-process analogue of a conservative lookahead window.
        lanes = self._lanes
        imm = self._immediate
        pop = heappop
        try:
            while True:
                if imm:
                    event = imm.popleft()
                    if event._cancelled:
                        self._skipped += 1
                        continue
                    # Immediates have no heap entry; attribute them to the
                    # ambient lane so per-lane counts sum to the global one.
                    self._lane.processed += 1
                    self._processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    continue
                # Full scan: purge dead heads, find the live global minimum
                # and the runner-up bound for the batched run below.
                best: Optional[Lane] = None
                best_key = None
                other_key = None
                for lane in lanes:
                    heap = lane.heap
                    while heap and heap[0][3]._cancelled:
                        pop(heap)
                        self._dead -= 1
                        self._skipped += 1
                        self._pending -= 1
                    if not heap:
                        continue
                    key = heap[0]
                    if best_key is None or key < best_key:
                        other_key = best_key
                        best_key = key
                        best = lane
                    elif other_key is None or key < other_key:
                        other_key = key
                if best is None:
                    if stop_at is not None:
                        self._now = stop_at
                    return None
                # Batched same-lane run.  other_key is a conservative lower
                # bound on every other lane's next event: cancellations only
                # raise their true minimum, and any push that could lower it
                # sets _cross_push and breaks the batch.
                heap = best.heap
                self._lane = best
                self._queue = heap
                self._cross_push = False
                while True:
                    entry = heap[0]
                    when = entry[0]
                    if stop_at is not None and when > stop_at:
                        self._now = stop_at
                        return None
                    depth = len(heap)
                    if depth > best.high_water:
                        best.high_water = depth
                    pop(heap)
                    self._pending -= 1
                    self._now = when
                    best.clock = when
                    best.processed += 1
                    event = entry[3]
                    self._processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if imm:
                        break  # immediates outrank every heap
                    if self._cross_push:
                        best.window_stalls += 1
                        break
                    while heap and heap[0][3]._cancelled:
                        pop(heap)
                        self._dead -= 1
                        self._skipped += 1
                        self._pending -= 1
                    if not heap:
                        break
                    if other_key is not None and not (heap[0] < other_key):
                        best.window_stalls += 1
                        break
        except StopSimulation:
            assert stop_event is not None
            if stop_event.ok:
                return stop_event.value
            raise stop_event.value from None

    def run_window(self, until: float) -> None:
        """Run every event *strictly before* ``until``, then advance to it.

        The half-open window primitive of the parallel lane executor
        (:mod:`repro.sim.lanes`): a partition may safely execute ``[now,
        until)`` when ``until <= min(neighbor clocks) + lookahead``, because
        no neighbor can still produce an envelope arriving inside the
        window.  Unlike :meth:`run`, an event scheduled exactly at ``until``
        is left for the next window.  Single-lane environments only.
        """
        assert self._nlanes == 1, "run_window drives one partition's lane"
        if until < self._now:
            raise ValueError(f"until={until!r} is in the past (now={self._now!r})")
        queue = self._queue
        imm = self._immediate
        pop = heappop
        while True:
            if imm:
                event = imm.popleft()
                if event._cancelled:
                    self._skipped += 1
                    continue
            else:
                while queue and queue[0][3]._cancelled:
                    pop(queue)
                    self._dead -= 1
                    self._skipped += 1
                    self._pending -= 1
                if not queue or queue[0][0] >= until:
                    self._now = until
                    return
                entry = queue[0]
                pop(queue)
                self._pending -= 1
                event = entry[3]
                self._now = entry[0]
            self._processed += 1
            callbacks, event.callbacks = event.callbacks, None
            event._processed = True
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new simulated process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every given event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any given event succeeds."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return (
            f"<Environment now={self._now:.6f} pending={self._pending} "
            f"lanes={self._nlanes}>"
        )
