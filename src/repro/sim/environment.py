"""The simulation environment: clock, event queue and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import SimRandom


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to halt :meth:`Environment.run` when its ``until`` event fires."""


class Environment:
    """Owns simulated time and the pending-event heap.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    seed:
        Seed for the environment-wide random stream (see
        :class:`~repro.sim.rng.SimRandom`).  Every source of randomness in a
        simulation must derive from this stream for runs to be reproducible.
    """

    def __init__(self, initial_time: float = 0.0, seed: int = 0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self.rng = SimRandom(seed)

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Queue ``event`` for processing after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An exception nobody consumed: abort the run loudly.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or queue exhaustion).

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until the clock reaches it.
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (raising if it failed).
        """
        stop_at = None
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.processed:
                    if stop_event.ok:
                        return stop_event.value
                    raise stop_event.value
                stop_event.add_callback(self._stop_callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at!r} is in the past (now={self._now!r})"
                    )

        try:
            while True:
                if stop_at is not None and self.peek() > stop_at:
                    self._now = stop_at
                    return None
                try:
                    self.step()
                except EmptySchedule:
                    if stop_at is not None:
                        self._now = stop_at
                    return None
        except StopSimulation:
            assert stop_event is not None
            if stop_event.ok:
                return stop_event.value
            raise stop_event.value from None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new simulated process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every given event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any given event succeeds."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return (
            f"<Environment now={self._now:.6f} pending={len(self._queue)}>"
        )
