"""The simulation environment: clock, event queue and run loop."""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import SimRandom


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to halt :meth:`Environment.run` when its ``until`` event fires."""


class Environment:
    """Owns simulated time and the pending-event heap.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    seed:
        Seed for the environment-wide random stream (see
        :class:`~repro.sim.rng.SimRandom`).  Every source of randomness in a
        simulation must derive from this stream for runs to be reproducible.
    """

    #: Below this heap size, compaction is never worth the heapify.
    COMPACT_MIN = 64

    def __init__(self, initial_time: float = 0.0, seed: int = 0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        #: Triggered events to process *now*, ahead of the heap: completions
        #: known to occur at the current instant skip the O(log n) heap
        #: round-trip.  Their callbacks still run from the top-level loop
        #: (never nested inside another event's callbacks).
        self._immediate: Deque[Event] = deque()
        self._eid = 0
        self._active_process: Optional[Process] = None
        self.rng = SimRandom(seed)
        #: Cancelled events still occupying heap entries (lazy deletion).
        self._dead = 0
        # Kernel counters, exposed via heap_stats() for benchmarks.
        self._processed = 0
        self._skipped = 0
        self._compactions = 0
        self._heap_high_water = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Queue ``event`` for processing after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._eid += 1
        queue = self._queue
        heapq.heappush(queue, (self._now + delay, priority, self._eid, event))
        if event._cancelled:
            # Triggering an event cancelled while still pending: the fresh
            # heap entry is born dead.
            self._dead += 1
        if len(queue) > self._heap_high_water:
            self._heap_high_water = len(queue)

    def _note_cancelled(self) -> None:
        """A scheduled event was cancelled; compact when dead entries win."""
        self._dead += 1
        if self._dead * 2 > len(self._queue) and len(self._queue) >= self.COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the heap in one O(n) pass.

        Mutates the queue *in place*: the run loop holds a local alias to
        the list across callback execution, and compaction can run from
        inside a callback.
        """
        queue = self._queue
        queue[:] = [e for e in queue if not e[3]._cancelled]
        heapq.heapify(queue)
        self._dead = 0
        self._compactions += 1

    def deliver_now(self, event: Event) -> None:
        """Queue a triggered event for processing at the current instant.

        The fast-path alternative to ``succeed()``-style scheduling for
        completions that must run *now*: the event skips the heap and is
        processed (FIFO among immediate events) before the next heap pop.
        The caller must have set ``_ok``/``_value`` already.
        """
        self._immediate.append(event)

    def peek(self) -> float:
        """Time of the next *live* scheduled event, or ``inf`` if none.

        Cancelled entries at the head are purged on the way — ``run`` relies
        on peek to decide whether the next event lies past its horizon, so a
        dead head must never stand in for a live event beyond it.
        """
        if self._immediate:
            return self._now
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._dead -= 1
            self._skipped += 1
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time.

        Cancelled entries encountered on the way are discarded without
        running callbacks (and without consuming the step).
        """
        imm = self._immediate
        while imm:
            event = imm.popleft()
            if event._cancelled:
                self._skipped += 1
                continue
            self._dispatch(event)
            return
        queue = self._queue
        while True:
            try:
                when, _prio, _eid, event = heapq.heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
            if not event._cancelled:
                break
            self._dead -= 1
            self._skipped += 1
        self._now = when
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Run one popped event's callbacks (shared by step and run)."""
        self._processed += 1
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An exception nobody consumed: abort the run loudly.
            exc = event._value
            raise exc

    def heap_stats(self) -> dict:
        """Kernel counters for benchmarks (see ``benchmarks/bench_scale``)."""
        return {
            "pushes": self._eid,
            "processed": self._processed,
            "skipped_cancelled": self._skipped,
            "compactions": self._compactions,
            "heap_high_water": self._heap_high_water,
            "pending": len(self._queue),
            "dead_pending": self._dead,
        }

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or queue exhaustion).

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until the clock reaches it.
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (raising if it failed).
        """
        stop_at = None
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.processed:
                    if stop_event.ok:
                        return stop_event.value
                    raise stop_event.value
                stop_event.add_callback(self._stop_callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at!r} is in the past (now={self._now!r})"
                    )

        # The loop below is step() with peek() fused in: one heap access and
        # no per-event function calls.  This is the single hottest loop in
        # the whole system — any semantic change here must be mirrored in
        # step()/peek(), which remain the public single-step API.
        queue = self._queue  # safe alias: _compact() mutates in place
        imm = self._immediate
        pop = heapq.heappop
        try:
            while True:
                if imm:
                    event = imm.popleft()
                    if event._cancelled:
                        self._skipped += 1
                        continue
                else:
                    while queue and queue[0][3]._cancelled:
                        pop(queue)
                        self._dead -= 1
                        self._skipped += 1
                    if not queue:
                        if stop_at is not None:
                            self._now = stop_at
                        return None
                    entry = queue[0]
                    if stop_at is not None and entry[0] > stop_at:
                        self._now = stop_at
                        return None
                    pop(queue)
                    event = entry[3]
                    self._now = entry[0]
                self._processed += 1
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # An exception nobody consumed: abort the run loudly.
                    raise event._value
        except StopSimulation:
            assert stop_event is not None
            if stop_event.ok:
                return stop_event.value
            raise stop_event.value from None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new simulated process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every given event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any given event succeeds."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return (
            f"<Environment now={self._now:.6f} pending={len(self._queue)}>"
        )
