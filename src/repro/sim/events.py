"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot future: it starts *pending*, is *triggered*
exactly once with either a value (:meth:`Event.succeed`) or an exception
(:meth:`Event.fail`), and is then *processed* by the environment, which runs
its callbacks at a well-defined point in simulated time.

Priorities
----------
Events triggered for the same simulated time are processed in
``(priority, sequence)`` order.  ``URGENT`` is reserved for kernel-internal
bookkeeping (process interrupts, store handoffs) so that user-visible ordering
stays intuitive; ``NORMAL`` is the default.

Cancellation
------------
:meth:`Event.cancel` marks a scheduled event dead *in place*: the heap entry
stays where it is, and :meth:`Environment.step` discards it without running
callbacks (lazy deletion — removing an arbitrary heap entry eagerly would be
O(n)).  This is the mechanism behind every re-armed timer in the system: the
processor-sharing wake-up, retry backoffs, the broker's liveness sweep.  A
cancelled event never delivers a value, so only cancel events nobody is (or
will be) waiting on.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.environment import Environment

#: Sentinel for "this event has not been triggered yet".
PENDING = object()

#: Kernel-internal priority; processed before anything else at the same time.
URGENT = 0
#: Default priority for user events.
NORMAL = 1
#: Processed after everything else at the same time (used for monitors).
LOW = 2


class EventAborted(Exception):
    """Raised into waiters when an event is cancelled before triggering."""


class Event:
    """A one-shot occurrence at a point in simulated time.

    Parameters
    ----------
    env:
        The owning environment.

    Notes
    -----
    The life cycle is ``pending -> triggered -> processed``.  Callbacks are
    plain callables invoked with the event as their only argument; once the
    event has been processed, adding a callback raises ``RuntimeError``
    (late registration is almost always a bug in simulation code).
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_processed",
        "_defused",
        "_cancelled",
    )

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._defused = False
        self._cancelled = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has marked this event dead."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Environment.schedule inlined (hot path: every store handoff and
        # task completion lands here).  Mirror changes there.  env._queue is
        # the ambient lane's heap; env._pending is the cross-lane entry count.
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, priority, env._eid, self))
        if self._cancelled:
            env._dead += 1
        pending = env._pending + 1
        env._pending = pending
        if pending > env._heap_high_water:
            env._heap_high_water = pending
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception delivered to all waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=0.0, priority=priority)
        return self

    def cancel(self) -> bool:
        """Mark the event dead so it is discarded instead of processed.

        Returns False (a no-op) once the event has already been processed.
        The scheduled heap entry is *not* removed — the environment skips it
        lazily when popped and compacts the heap when dead entries pile up —
        so cancelling is O(1).  Callbacks of a cancelled event never run;
        cancel only timers nobody waits on (the kernel does this itself for
        timers orphaned by process death).
        """
        if self._processed:
            return False
        if not self._cancelled:
            self._cancelled = True
            if self._value is not PENDING:
                # Already triggered => a heap entry exists for it.
                self.env._note_cancelled()
        return True

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run.

        A failed event whose exception reaches the environment's step loop
        without any process consuming it stops the simulation (mirroring
        SimPy's behaviour); defusing suppresses that.
        """
        self._defused = True

    # -- waiting -----------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.callbacks is None:
            raise RuntimeError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously-added callback (no-op if absent/processed)."""
        if self.callbacks is not None:
            try:
                self.callbacks.remove(callback)
            except ValueError:
                pass

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._value is PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(
        self, env: "Environment", delay: float, value: Any = None
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Event.__init__ is inlined here: timeouts are the kernel's hottest
        # allocation (every sleep, message latency and PS wake-up is one),
        # and they are born triggered, so the generic pending setup would be
        # overwritten immediately anyway.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self.delay = delay
        # Environment.schedule inlined (a fresh timeout is never born dead).
        env._eid += 1
        heappush(env._queue, (env._now + delay, NORMAL, env._eid, self))
        pending = env._pending + 1
        env._pending = pending
        if pending > env._heap_high_water:
            env._heap_high_water = pending

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class _Condition(Event):
    """Base for composite events over a fixed set of sub-events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        # A condition failing with nobody waiting is always benign: it means
        # the waiter died (was killed) or stopped caring.  Live waiters still
        # receive the failure as an exception.
        self._defused = True
        self.events: List[Event] = list(events)
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if self.triggered:
                break  # satisfied by an earlier sub-event; don't subscribe
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _collect(self) -> dict:
        # Only events that have actually been *processed* count as having
        # occurred: a Timeout carries its value from construction, so testing
        # ``triggered`` alone would report future timeouts as complete.
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event.ok:
            event.defuse()
            self.fail(event.value)
        elif self._satisfied():
            self.succeed(self._collect())
        if self.triggered:
            self._detach_pending(event)

    def _detach_pending(self, cause: Event) -> None:
        """Unsubscribe from sub-events that can no longer matter.

        Once the condition has triggered, the still-unprocessed sub-events
        would only invoke a dead ``_check``; detach from them, and cancel
        timeout guards nobody else waits on — the ``any_of([op, timeout])``
        race pattern otherwise leaks one dead timer per race into the heap.
        """
        for ev in self.events:
            if ev is cause or ev.processed:
                continue
            ev.remove_callback(self._check)
            if not ev.callbacks and isinstance(ev, Timeout):
                ev.cancel()

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once *all* sub-events have succeeded (fails fast on error)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(_Condition):
    """Triggers as soon as *any* sub-event succeeds (fails fast on error)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1
