"""Windowed parallel lane executor: conservative PDES across OS processes.

The in-process laned kernel (:mod:`repro.sim.environment`) preserves the
serial total order exactly, which makes it the determinism-gated mode for the
full cluster simulation — but it cannot use more than one core.  This module
is the other half of the partitioned-kernel story: *state-disjoint*
partitions, each owning a private :class:`~repro.sim.environment.Environment`,
advance in lockstep windows and exchange timestamped envelopes.  Because a
cross-partition message always takes at least the LAN's minimum latency
(``lookahead``), every lane may safely execute the half-open window

    [clock, min(next event over all lanes) + lookahead)

without hearing from its neighbors mid-window: any envelope generated inside
the window arrives at or after its end (DESIGN.md §15 gives the argument).
That is classic conservative window synchronization — barriers, no
null-message flood — and the windows are what amortize IPC when lanes run as
forked worker processes.

Determinism: lanes are seeded from ``(seed, lane_id)``, envelopes are
injected in canonical ``(arrival time, src lane, send seq)`` order — the
tie-break rule of the partitioned kernel — and the merged document is
digested with the same canonical JSON the sweep gate uses, so the ``serial``
and ``mp`` backends must (and do, see ``tests/sim/test_lanes.py``) produce
sha256-identical documents.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.calibration import DEFAULT
from repro.sim.environment import Environment

#: An envelope is ``(when, src_lane, seq, dst_lane, payload)``; the first
#: three fields are its canonical injection sort key.
Envelope = Tuple[float, int, int, int, Any]


def _lane_seed(seed: int, lane_id: int) -> int:
    """Independent, reproducible per-lane seed (stable across backends)."""
    digest = hashlib.sha256(f"{seed}:lane:{lane_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def canonical_digest(document: Dict[str, Any]) -> str:
    """sha256 of the byte-stable serialization (the sweep-gate technique)."""
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class LaneRuntime:
    """One partition's private world: environment, mailbox, send counter.

    The ``build`` callback of :class:`LanedSimulation` receives one runtime
    per lane and populates it with processes via ``rt.env`` plus a message
    handler via :meth:`on_message`.  All cross-partition communication goes
    through :meth:`post` — the runtime records outgoing envelopes for the
    executor to route at the next window barrier.
    """

    def __init__(
        self, lane_id: int, nlanes: int, lookahead: float, seed: int
    ) -> None:
        self.lane_id = lane_id
        self.nlanes = nlanes
        self.lookahead = lookahead
        #: The simulation-wide root seed (lane-independent): derive actor
        #: randomness from this when behavior must not depend on which lane
        #: an actor was partitioned into.
        self.seed = seed
        self.env = Environment(seed=_lane_seed(seed, lane_id))
        self.sent = 0
        self.received = 0
        self.outgoing: List[Envelope] = []
        self._handler: Optional[Callable[[Any], None]] = None
        #: Optional result callback, set by the builder; its return value
        #: lands in the merged document (must be JSON-serializable).
        self.result: Optional[Callable[[], Any]] = None

    def on_message(self, handler: Callable[[Any], None]) -> None:
        """Register the callable invoked with each delivered payload."""
        self._handler = handler

    def post(self, dst_lane: int, payload: Any, delay: Optional[float] = None) -> None:
        """Send ``payload`` to ``dst_lane``, arriving ``delay`` from now.

        ``delay`` defaults to the lookahead and may never undercut it — that
        lower bound is the safety argument of the whole executor.  Sends to
        the local lane skip the envelope machinery (same arrival semantics).
        """
        if delay is None:
            delay = self.lookahead
        elif delay < self.lookahead:
            raise ValueError(
                f"delay {delay!r} undercuts the lookahead {self.lookahead!r}"
            )
        self.sent += 1
        if dst_lane == self.lane_id:
            self._schedule_delivery(self.env.now + delay, payload)
        else:
            self.outgoing.append(
                (self.env.now + delay, self.lane_id, self.sent, dst_lane, payload)
            )

    def _schedule_delivery(self, when: float, payload: Any) -> None:
        timer = self.env.timeout(when - self.env.now, payload)
        timer.callbacks.append(self._deliver)

    def _deliver(self, event) -> None:
        self.received += 1
        handler = self._handler
        if handler is not None:
            handler(event._value)

    def inject(self, envelopes: List[Envelope]) -> None:
        """Schedule incoming envelopes (already canonically sorted)."""
        for when, _src, _seq, _dst, payload in envelopes:
            self._schedule_delivery(when, payload)

    def drain_outgoing(self) -> List[Envelope]:
        """Take (and clear) the envelopes produced since the last drain."""
        out = self.outgoing
        self.outgoing = []
        return out

    def summary(self) -> Dict[str, Any]:
        """The per-lane slice of the merged document (backend-independent)."""
        stats = self.env.heap_stats()
        return {
            "lane": self.lane_id,
            "clock": round(self.env.now, 9),
            "events": stats["processed"],
            "pushes": stats["pushes"],
            "sent": self.sent,
            "received": self.received,
            "result": self.result() if self.result is not None else None,
        }


class LanedSimulation:
    """A partitioned simulation run in conservative lookahead windows.

    Parameters
    ----------
    lanes:
        Number of partitions.
    build:
        ``build(rt: LaneRuntime) -> None`` — populates one lane.  Must
        derive all randomness from ``rt.env`` and touch no state shared
        with other lanes (the mp backend runs each lane in its own OS
        process, so sharing cannot work by construction; the serial backend
        deliberately offers nothing more).
    lookahead:
        Minimum cross-lane delay, in simulated seconds; defaults to the
        calibrated LAN latency.  Must be strictly positive — with zero
        lookahead the window degenerates and no lane could ever advance.
    seed:
        Root seed; lanes derive independent sub-seeds from it.
    """

    def __init__(
        self,
        lanes: int,
        build: Callable[[LaneRuntime], None],
        lookahead: float = DEFAULT.network_latency,
        seed: int = 0,
    ) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes!r}")
        if lookahead <= 0:
            raise ValueError("conservative execution needs lookahead > 0")
        self.lanes = lanes
        self.build = build
        self.lookahead = lookahead
        self.seed = seed

    # -- shared window protocol -------------------------------------------

    def _next_window(
        self,
        horizon: float,
        peeks: List[float],
        inboxes: List[List[Envelope]],
    ) -> Optional[float]:
        """End of the next safe window, or None when the run is over.

        The bound folds undelivered envelopes in: an inbox arrival is a
        pending event its lane just does not know about yet.
        """
        floor = float("inf")
        for peek, inbox in zip(peeks, inboxes):
            if peek < floor:
                floor = peek
            for envelope in inbox:
                if envelope[0] < floor:
                    floor = envelope[0]
        if floor == float("inf") or floor >= horizon:
            return None
        return min(floor + self.lookahead, horizon)

    @staticmethod
    def _route(
        outgoing: List[Envelope], inboxes: List[List[Envelope]]
    ) -> int:
        for envelope in outgoing:
            inboxes[envelope[3]].append(envelope)
        return len(outgoing)

    def _document(
        self,
        horizon: float,
        windows: int,
        envelopes: int,
        in_flight: int,
        summaries: List[Dict[str, Any]],
    ) -> Dict[str, Any]:
        doc = {
            "lanes": self.lanes,
            "seed": self.seed,
            "lookahead": self.lookahead,
            "horizon": horizon,
            "windows": windows,
            "envelopes": envelopes,
            "in_flight": in_flight,
            "lane_results": summaries,
        }
        doc["digest"] = canonical_digest(doc)
        return doc

    # -- serial backend ----------------------------------------------------

    def run(self, horizon: float, backend: str = "serial") -> Dict[str, Any]:
        """Run to ``horizon`` (half-open); returns the merged document.

        ``backend="serial"`` drives every lane in this process (the
        reference executor); ``backend="mp"`` forks one worker per lane and
        must produce a byte-identical document.
        """
        if backend == "serial":
            return self._run_serial(horizon)
        if backend == "mp":
            return self._run_mp(horizon)
        raise ValueError(f"unknown backend {backend!r}")

    def _run_serial(self, horizon: float) -> Dict[str, Any]:
        runtimes = [
            LaneRuntime(i, self.lanes, self.lookahead, self.seed)
            for i in range(self.lanes)
        ]
        for rt in runtimes:
            self.build(rt)
        inboxes: List[List[Envelope]] = [[] for _ in runtimes]
        peeks = [rt.env.peek() for rt in runtimes]
        windows = 0
        envelopes = 0
        while True:
            until = self._next_window(horizon, peeks, inboxes)
            if until is None:
                break
            outgoing: List[Envelope] = []
            for i, rt in enumerate(runtimes):
                if inboxes[i]:
                    inboxes[i].sort(key=lambda e: e[:3])
                    rt.inject(inboxes[i])
                    inboxes[i] = []
                rt.env.run_window(until)
                outgoing.extend(rt.drain_outgoing())
                peeks[i] = rt.env.peek()
            envelopes += self._route(outgoing, inboxes)
            windows += 1
        in_flight = sum(len(inbox) for inbox in inboxes)
        for rt in runtimes:
            if rt.env.now < horizon:
                rt.env.run_window(horizon)
        return self._document(
            horizon,
            windows,
            envelopes,
            in_flight,
            [rt.summary() for rt in runtimes],
        )

    # -- multiprocessing backend ------------------------------------------

    def _run_mp(self, horizon: float) -> Dict[str, Any]:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        pipes = []
        workers = []
        for i in range(self.lanes):
            parent_end, child_end = ctx.Pipe()
            worker = ctx.Process(
                target=self._lane_worker,
                args=(i, child_end, horizon),
                daemon=True,
            )
            worker.start()
            child_end.close()
            pipes.append(parent_end)
            workers.append(worker)
        try:
            peeks = [self._expect(conn, "ready")[0] for conn in pipes]
            inboxes: List[List[Envelope]] = [[] for _ in pipes]
            windows = 0
            envelopes = 0
            while True:
                until = self._next_window(horizon, peeks, inboxes)
                if until is None:
                    break
                for i, conn in enumerate(pipes):
                    inboxes[i].sort(key=lambda e: e[:3])
                    conn.send(("window", until, inboxes[i]))
                    inboxes[i] = []
                outgoing: List[Envelope] = []
                for i, conn in enumerate(pipes):
                    lane_out, peek = self._expect(conn, "done")
                    outgoing.extend(lane_out)
                    peeks[i] = peek
                envelopes += self._route(outgoing, inboxes)
                windows += 1
            in_flight = sum(len(inbox) for inbox in inboxes)
            summaries = []
            for conn in pipes:
                conn.send(("finish",))
            for conn in pipes:
                summaries.append(self._expect(conn, "result")[0])
            return self._document(
                horizon, windows, envelopes, in_flight, summaries
            )
        finally:
            for conn in pipes:
                conn.close()
            for worker in workers:
                worker.join(timeout=10)
                if worker.is_alive():  # pragma: no cover - hang backstop
                    worker.terminate()

    @staticmethod
    def _expect(conn, kind: str) -> tuple:
        message = conn.recv()
        if message[0] == "error":  # pragma: no cover - worker crash surface
            raise RuntimeError(f"lane worker failed: {message[1]}")
        if message[0] != kind:  # pragma: no cover - protocol bug surface
            raise RuntimeError(f"expected {kind!r}, got {message[0]!r}")
        return message[1:]

    def _lane_worker(self, lane_id: int, conn, horizon: float) -> None:
        """Runs in the forked child: one lane, driven over the pipe."""
        try:
            rt = LaneRuntime(lane_id, self.lanes, self.lookahead, self.seed)
            self.build(rt)
            conn.send(("ready", rt.env.peek()))
            while True:
                message = conn.recv()
                if message[0] == "window":
                    until, incoming = message[1], message[2]
                    rt.inject(incoming)
                    rt.env.run_window(until)
                    conn.send(("done", rt.drain_outgoing(), rt.env.peek()))
                elif message[0] == "finish":
                    if rt.env.now < horizon:
                        rt.env.run_window(horizon)
                    conn.send(("result", rt.summary()))
                    return
                else:  # pragma: no cover - protocol bug surface
                    raise RuntimeError(f"unknown command {message[0]!r}")
        except BaseException as exc:  # pragma: no cover - crash surface
            try:
                conn.send(("error", repr(exc)))
            except OSError:
                pass
            raise
        finally:
            conn.close()


# -- the ring benchmark workload -------------------------------------------


def lane_ring(
    actors: int,
    mean: float = 0.0002,
    send_every: int = 4,
) -> Callable[[LaneRuntime], None]:
    """Builder for the standard partitioned-kernel benchmark workload.

    ``actors`` simulated actors are split contiguously across lanes.  Each
    actor runs a local loop — an exponential think time of ``mean`` seconds
    drawn from its own named stream, then a counter bump — and every
    ``send_every``-th iteration messages its ring successor, which usually
    lives in the neighboring lane.  With ``mean`` on the order of the
    lookahead this produces windows holding ``~(actors/lanes) *
    lookahead/mean`` events per lane: the knob that decides whether windows
    amortize the per-barrier IPC of the mp backend.
    """

    def build(rt: LaneRuntime) -> None:
        from repro.sim.rng import SimRandom

        lo = rt.lane_id * actors // rt.nlanes
        hi = (rt.lane_id + 1) * actors // rt.nlanes
        counters = {"ticks": 0, "messages": 0}
        # Root-seeded streams: an actor draws the same think times no matter
        # which lane it is partitioned into, so runs at different lane
        # counts simulate the same world (only in-flight cutoffs differ).
        root_rng = SimRandom(rt.seed)

        def lane_of_actor(gid: int) -> int:
            return gid * rt.nlanes // actors

        def actor(gid: int):
            rng = root_rng.stream(f"actor:{gid}")
            iteration = 0
            while True:
                yield rt.env.timeout(float(rng.exponential(mean)))
                counters["ticks"] += 1
                iteration += 1
                if iteration % send_every == 0:
                    successor = (gid + 1) % actors
                    rt.post(lane_of_actor(successor), ("ping", gid))

        def handle(payload: Any) -> None:
            counters["messages"] += 1

        rt.on_message(handle)
        for gid in range(lo, hi):
            rt.env.process(actor(gid), name=f"actor-{gid}")
        rt.result = lambda: dict(counters)

    return build
