"""Generator-based simulated processes.

A :class:`Process` drives a Python generator: every value the generator yields
must be an :class:`~repro.sim.events.Event`; the process sleeps until the event
is processed and is then resumed with the event's value (or has the event's
exception thrown into it).  The process itself is an event that triggers when
the generator returns (value = ``StopIteration.value``) or raises.

Interrupts
----------
:meth:`Process.interrupt` asynchronously throws :class:`Interrupt` into the
generator at the current simulated instant.  This is the substrate for Unix
signals in :mod:`repro.os`: a simulated ``SIGTERM`` is an interrupt whose cause
carries the signal, and program bodies may catch it to clean up.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.events import NORMAL, PENDING, URGENT, Event, Timeout


def _detach_waiter(target: Event, callback: Any) -> None:
    """Detach ``callback`` from ``target``; cancel a timer left orphaned.

    When a process is interrupted or aborted mid-sleep, the timeout it was
    waiting on stays scheduled with nobody listening.  Churning processes
    (retry backoffs, heartbeat loops) would flood the heap with such dead
    timers; cancelling them lets the kernel's lazy deletion reclaim the
    entries.  Only plain timeouts are cancelled — any other event may have
    meaning to other waiters.
    """
    target.remove_callback(callback)
    if not target.callbacks and isinstance(target, Timeout):
        target.cancel()

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.environment import Environment


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Attributes
    ----------
    cause:
        Arbitrary payload supplied by the interrupter (e.g. a simulated
        signal object).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class ProcessDied(Exception):
    """Raised by waiters when a process fails with an unhandled exception."""


class _Initialize(Event):
    """Kernel event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, delay=0.0, priority=URGENT)


class _Interruption(Event):
    """Kernel event that delivers an :class:`Interrupt` to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(self._deliver)
        self.env.schedule(self, delay=0.0, priority=URGENT)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            return  # the target already finished; interrupt is a no-op
        # Detach the process from whatever it was waiting on so the original
        # event no longer resumes it, then resume with the Interrupt.
        target = process._target
        if target is not None:
            _detach_waiter(target, process._unsuspend)
        process._target = None
        process._resume(self)


class Process(Event):
    """A running simulated activity wrapping a generator.

    The process is itself an event: yield it (or add callbacks) to wait for
    completion.  ``process.value`` is the generator's return value.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: GeneratorType,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running
        #: right now or finished).
        self._target: Optional[Event] = None
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not yet finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on, if any."""
        return self._target

    def abort(self, value: Any = None) -> None:
        """Forcefully terminate the process at the current instant.

        Unlike :meth:`interrupt`, the generator gets no chance to handle
        anything except ``finally`` blocks (``GeneratorExit`` is raised at its
        current yield point, mirroring how a SIGKILLed Unix process never runs
        signal handlers).  Waiters see the process succeed with ``value``.
        """
        if not self.is_alive:
            return
        if self.env._active_process is self:
            raise RuntimeError("a process cannot abort itself")
        target = self._target
        if target is not None:
            _detach_waiter(target, self._unsuspend)
        self._target = None
        self.generator.close()
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=0.0, priority=NORMAL)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process raises ``RuntimeError`` — callers that
        race with completion should check :attr:`is_alive` first.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already terminated")
        _Interruption(self, cause)

    # -- engine ------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if self._value is not PENDING:
            # Aborted (e.g. SIGKILL from a machine crash) after this wakeup
            # was scheduled but before it was delivered — the initialize
            # event of a process killed at birth takes exactly this path.
            # The generator is closed and the completion event is already
            # scheduled; advancing would double-schedule it.
            return
        env = self.env
        env._active_process = self
        generator = self.generator
        while True:
            try:
                # Direct slot access (not the ok/value properties): this loop
                # runs once per event in the simulation.
                if event is None:
                    next_event = generator.send(None)
                elif event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The event failed: propagate into the generator.  Mark
                    # the exception as consumed so the kernel does not also
                    # treat it as unhandled.
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env.schedule(self, delay=0.0, priority=NORMAL)
                break
            except BaseException as exc:  # noqa: BLE001 - process crash path
                self._ok = False
                self._value = exc
                env.schedule(self, delay=0.0, priority=NORMAL)
                break

            if not isinstance(next_event, Event):
                # Restart the generator with an error to surface the misuse
                # at the offending yield statement.
                event = Event(env)
                event._ok = False
                event._value = TypeError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event"
                )
                event._defused = True
                continue
            if next_event.env is not env:
                event = Event(env)
                event._ok = False
                event._value = ValueError(
                    f"process {self.name!r} yielded an event from a "
                    "different environment"
                )
                event._defused = True
                continue

            if next_event._processed:
                # Already done: loop immediately with its outcome.
                event = next_event
                continue

            self._target = next_event
            # Unprocessed => callbacks is a list; skip add_callback's guard.
            next_event.callbacks.append(self._unsuspend)
            break
        env._active_process = None

    def _unsuspend(self, event: Event) -> None:
        self._target = None
        self._resume(event)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state} at {id(self):#x}>"
