"""Processor-sharing CPU model.

A machine's CPUs are modelled as an egalitarian processor-sharing (PS) server:
``n`` runnable tasks on ``c`` CPUs each progress at rate ``speed * min(1, c/n)``
CPU-seconds per second.  This captures the two effects the paper's evaluation
depends on:

* a compute-bound job (``loop``) finishes in its nominal time on an idle
  machine, and
* co-located jobs slow each other down, which is why clearing a machine of
  external processes before running a job gives "faster turnaround"
  (paper §6.1, Table 2 discussion).

The model is event-driven: task membership changes trigger a re-computation of
each task's completion horizon, so the cost is O(tasks) per change rather than
per tick.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.sim.events import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.environment import Environment


class PSDone(Event):
    """Completion event of a PS task (carries a backref for cancellation)."""

    __slots__ = ("_pstask",)

    def __init__(self, env: "Environment") -> None:
        super().__init__(env)
        self._pstask: Optional["PSTask"] = None


class PSTask:
    """One unit of CPU-bound work enqueued on a :class:`ProcessorSharingQueue`."""

    __slots__ = ("tid", "work", "remaining", "done", "tag")

    def __init__(self, tid: int, work: float, done: Event, tag: Any) -> None:
        self.tid = tid
        self.work = work
        self.remaining = work
        self.done = done
        self.tag = tag

    def __repr__(self) -> str:
        return (
            f"<PSTask #{self.tid} tag={self.tag!r} "
            f"remaining={self.remaining:.6f}/{self.work:.6f}>"
        )


class ProcessorSharingQueue:
    """Egalitarian processor sharing over ``cpus`` processors.

    Parameters
    ----------
    env:
        Owning environment.
    cpus:
        Number of processors.
    speed:
        Relative speed factor; ``work`` is expressed in CPU-seconds on a
        ``speed == 1.0`` machine.
    """

    __slots__ = (
        "env",
        "cpus",
        "speed",
        "_tasks",
        "_tids",
        "_last_update",
        "_timer",
        "_timer_deadline",
        "_drain_order",
        "_busy_integral",
        "_accounting_start",
    )

    def __init__(self, env: "Environment", cpus: int = 1, speed: float = 1.0) -> None:
        if cpus < 1:
            raise ValueError("cpus must be >= 1")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.env = env
        self.cpus = cpus
        self.speed = speed
        self._tasks: Dict[int, PSTask] = {}
        self._tids = itertools.count(1)
        self._last_update = env.now
        #: The armed wake-up timer and its absolute deadline, if any.  The
        #: timer is *cancelled* (not abandoned) when membership changes make
        #: it obsolete, so churn does not flood the event heap.
        self._timer: Optional[Timeout] = None
        self._timer_deadline = 0.0
        #: Tasks ordered by remaining work; valid between membership changes
        #: (equal PS rates preserve the order as work drains uniformly).
        self._drain_order: Optional[List[PSTask]] = None
        # Utilization accounting: integral of (busy CPUs / total CPUs) dt.
        self._busy_integral = 0.0
        self._accounting_start = env.now

    # -- public API ---------------------------------------------------------

    @property
    def load(self) -> int:
        """Number of runnable tasks right now."""
        return len(self._tasks)

    def rate(self) -> float:
        """Current progress rate (CPU-seconds per second) of each task."""
        n = len(self._tasks)
        if n == 0:
            return 0.0
        return self.speed * min(1.0, self.cpus / n)

    def execute(self, work: float, tag: Any = None) -> Event:
        """Enqueue ``work`` CPU-seconds; the returned event fires when done."""
        if work < 0:
            raise ValueError(f"negative work {work!r}")
        done = PSDone(self.env)
        if work == 0:
            done.succeed()
            return done
        self._advance()
        task = PSTask(next(self._tids), float(work), done, tag)
        self._tasks[task.tid] = task
        self._drain_order = None
        done._pstask = task
        self._reschedule()
        return done

    def cancel(self, done_event: Event) -> bool:
        """Abort the task behind ``done_event``; returns False if finished."""
        task: Optional[PSTask] = getattr(done_event, "_pstask", None)
        if task is None or task.tid not in self._tasks:
            return False
        self._advance()
        del self._tasks[task.tid]
        self._drain_order = None
        self._reschedule()
        return True

    def utilization(self) -> float:
        """Mean fraction of CPU capacity in use since accounting started."""
        self._advance()
        elapsed = self.env.now - self._accounting_start
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / elapsed

    def reset_accounting(self) -> None:
        """Restart the utilization integral at the current instant."""
        self._advance()
        self._busy_integral = 0.0
        self._accounting_start = self.env.now

    # -- engine -----------------------------------------------------------

    def _advance(self) -> None:
        """Progress all tasks from the last update instant to ``now``."""
        now = self.env._now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        tasks = self._tasks
        n = len(tasks)
        if n:
            cpus = self.cpus
            per_task = self.speed * min(1.0, cpus / n) * dt
            finished = None
            for task in tasks.values():
                task.remaining -= per_task
                if task.remaining <= 1e-12:
                    if finished is None:
                        finished = [task]
                    else:
                        finished.append(task)
            if finished is not None:
                if len(finished) > 1:
                    # Tasks whose horizons collapse into one wake-up (within
                    # float dust of each other) still complete in remaining-
                    # work order — the PS invariant policies rely on.  Equal
                    # drain preserves the weak remaining order but rounding
                    # can collapse it into ties; original work breaks them.
                    finished.sort(key=lambda t: (t.remaining, t.work, t.tid))
                immediate = self.env._immediate
                for task in finished:
                    del tasks[task.tid]
                    task.remaining = 0.0
                    # succeed() inlined onto the immediate queue: the
                    # completion is known to occur *now*, so it skips the
                    # heap round-trip (the hottest completion in the system
                    # — one per CPU burst).
                    done = task.done
                    done._ok = True
                    done._value = None
                    immediate.append(done)
                self._drain_order = None
            self._busy_integral += dt if n >= cpus else dt * n / cpus
        self._last_update = now

    def _reschedule(self) -> None:
        """Arm a wake-up for the next task completion.

        An already-armed timer whose deadline is *no later* than the new
        completion horizon is kept: firing early is harmless (``_advance``
        completes nothing and we re-arm), and keeping it avoids a cancel +
        re-arm per task arrival — arrivals slow everyone down, so the common
        case pushes the horizon later.  A timer that would fire too *late*
        is cancelled and replaced, never abandoned.
        """
        tasks = self._tasks
        if not tasks:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        n = len(tasks)
        rate = self.speed if n <= self.cpus else self.speed * self.cpus / n
        if n == 1:
            shortest = next(iter(tasks.values())).remaining
        else:
            shortest = min(task.remaining for task in tasks.values())
        horizon = shortest / rate
        # Guard against float dust: at large clock values a sub-epsilon
        # horizon would schedule the wake-up at *exactly* the current time
        # (now + h == now), making _advance see dt == 0 and re-arm forever.
        now = self.env._now
        eps = max(1e-9, abs(now) * 1e-12)
        if horizon < eps:
            horizon = eps
        deadline = now + horizon
        if self._timer is not None:
            if self._timer_deadline <= deadline:
                return  # armed timer fires no later than needed: keep it
            self._timer.cancel()
        timer = Timeout(self.env, horizon)
        self._timer = timer
        self._timer_deadline = deadline
        # Fresh timer: callbacks is a list; skip add_callback's guard.
        timer.callbacks.append(self._on_timer)

    def _on_timer(self, _event: Event) -> None:
        self._timer = None
        self._advance()
        self._reschedule()

    def drain_estimate(self) -> float:
        """Simulated seconds until all current tasks finish (no arrivals).

        PS with equal rates completes tasks in remaining-work order; this is
        used by policies to predict machine availability.  The remaining-work
        ordering is cached between membership changes (uniform drain keeps it
        sorted), so polling policies pay O(tasks), not O(tasks log tasks).
        """
        self._advance()
        order = self._drain_order
        if order is None:
            order = self._drain_order = sorted(
                self._tasks.values(), key=lambda task: task.remaining
            )
        if not order:
            return 0.0
        t = 0.0
        prev = 0.0
        n = len(order)
        for idx, task in enumerate(order):
            active = n - idx
            rate = self.speed * min(1.0, self.cpus / active)
            t += (task.remaining - prev) / rate
            prev = task.remaining
        return t

    def __repr__(self) -> str:
        return (
            f"<ProcessorSharingQueue cpus={self.cpus} speed={self.speed} "
            f"load={len(self._tasks)}>"
        )
