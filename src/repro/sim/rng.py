"""Deterministic randomness for simulations.

Every stochastic element of a run (workload arrivals, owner activity, service
time jitter) draws from streams derived from a single seed so that any
experiment is reproducible bit-for-bit.  Streams are named: two components
asking for the same name get the *same* stream, and adding a new component
with a fresh name does not perturb existing streams — this keeps regression
baselines stable as the simulator grows.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class SimRandom:
    """A root seed plus a family of named, independent random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The named sub-stream (created on first use, stable thereafter)."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    # Convenience pass-throughs on an anonymous default stream -------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform draw on the default stream."""
        return float(self.stream("default").uniform(low, high))

    def exponential(self, mean: float) -> float:
        """Exponential draw (given mean) on the default stream."""
        return float(self.stream("default").exponential(mean))

    def integers(self, low: int, high: int) -> int:
        """Integer draw in [low, high) on the default stream."""
        return int(self.stream("default").integers(low, high))

    def choice(self, seq):
        """Uniform choice from ``seq`` on the default stream."""
        idx = int(self.stream("default").integers(0, len(seq)))
        return seq[idx]

    def __repr__(self) -> str:
        return f"<SimRandom seed={self.seed} streams={sorted(self._streams)}>"
