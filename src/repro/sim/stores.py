"""Waitable containers: stores, filtered stores and counted resources.

These are the coordination primitives the simulated OS and network are built
from: a socket is a pair of :class:`Store` queues, a CPU slot is a
:class:`Resource`, a tuple space is a :class:`FilterStore`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from repro.sim.events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.environment import Environment


class StoreFull(Exception):
    """Raised by :meth:`Store.put_nowait` when the store is at capacity."""


class StorePut(Event):
    """Pending put operation; succeeds when the item is accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Pending get operation; succeeds with the retrieved item."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        # Event.__init__ inlined: one getter per received message makes this
        # the second-hottest event allocation after Timeout.
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._processed = False
        self._defused = False
        self._cancelled = False


class FilterStoreGet(StoreGet):
    """Pending filtered get; succeeds with the first matching item."""

    __slots__ = ("predicate",)

    def __init__(self, store: "Store", predicate: Callable[[Any], bool]) -> None:
        super().__init__(store)
        self.predicate = predicate


class Store:
    """An unordered-producer, FIFO-consumer buffer of Python objects.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of buffered items; ``float('inf')`` (the default)
        means unbounded.
    """

    __slots__ = ("env", "capacity", "items", "_putters", "_getters")

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    # -- operations ---------------------------------------------------------

    def put(self, item: Any) -> StorePut:
        """Event that succeeds once ``item`` has been stored."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def put_nowait(self, item: Any) -> None:
        """Store ``item`` immediately or raise :class:`StoreFull`."""
        if len(self.items) >= self.capacity:
            raise StoreFull(f"store at capacity {self.capacity}")
        self.items.append(item)
        self._dispatch()

    def get(self) -> StoreGet:
        """Event that succeeds with the oldest available item."""
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    def cancel(self, event: Event) -> None:
        """Withdraw a pending put/get (no-op if already satisfied)."""
        if isinstance(event, StorePut) and event in self._putters:
            self._putters.remove(event)
        elif isinstance(event, StoreGet) and event in self._getters:
            self._getters.remove(event)

    # -- engine ---------------------------------------------------------------

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move buffered puts in while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Satisfy getters.
            if self._getters and self.items:
                if self._match_getters():
                    progress = True

    def _match_getters(self) -> bool:
        matched = False
        remaining: Deque[StoreGet] = deque()
        while self._getters:
            get = self._getters.popleft()
            if self.items:
                item = self.items.popleft()
                get.succeed(item)
                matched = True
            else:
                remaining.append(get)
        self._getters = remaining
        return matched


class FilterStore(Store):
    """A store whose consumers may wait for items matching a predicate.

    Used for tuple spaces (:mod:`repro.systems.plinda`) and for
    tag/source-selective message receives.
    """

    __slots__ = ()

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> FilterStoreGet:  # type: ignore[override]
        """Event yielding the first buffered item matching ``predicate``."""
        event = FilterStoreGet(self, predicate or (lambda item: True))
        self._getters.append(event)
        self._dispatch()
        return event

    def peek_matching(self, predicate: Callable[[Any], bool]) -> List[Any]:
        """Snapshot of currently-buffered items matching ``predicate``."""
        return [item for item in self.items if predicate(item)]

    def _match_getters(self) -> bool:
        matched = False
        remaining: Deque[StoreGet] = deque()
        while self._getters:
            get = self._getters.popleft()
            assert isinstance(get, FilterStoreGet)
            for idx, item in enumerate(self.items):
                if get.predicate(item):
                    del self.items[idx]
                    get.succeed(item)
                    matched = True
                    break
            else:
                remaining.append(get)
        self._getters = remaining
        return matched


class ResourceRequest(Event):
    """A pending claim on one unit of a :class:`Resource`."""

    __slots__ = ()


class Resource:
    """A counted resource with FIFO queuing.

    Usage from a process generator::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    __slots__ = ("env", "capacity", "users", "queue")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self.queue: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of units currently held."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        """Event that succeeds when a unit is granted to the caller."""
        event = ResourceRequest(self.env)
        self.queue.append(event)
        self._grant()
        return event

    def release(self, request: ResourceRequest) -> None:
        """Return a previously granted unit."""
        if request in self.users:
            self.users.remove(request)
        else:
            # Releasing a never-granted (or cancelled) request withdraws it.
            if request in self.queue:
                self.queue.remove(request)
        self._grant()

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.popleft()
            self.users.append(request)
            request.succeed()
