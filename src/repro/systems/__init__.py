"""Parallel programming system substrates.

Each subpackage models one of the commodity systems the paper manages
*unmodified*:

* :mod:`repro.systems.pvm` — PVM-style virtual machine (master/slave daemons,
  console, ``pvm_addhosts``); **rejects** slave daemons from hosts it did not
  ask for, which is what forces the broker's external-module path.
* :mod:`repro.systems.lam` — LAM/MPI-style runtime (``lamboot``/``lamgrow``);
  also rejects unexpected hosts, with heavier per-host startup.
* :mod:`repro.systems.calypso` — adaptive master/worker runtime with eager
  scheduling; workers join anonymously and may be killed at any time, so it
  exercises the broker's *default* (redirection) path.
* :mod:`repro.systems.plinda` — persistent-Linda tuple space with
  transactional takes and bag-of-tasks workers; the second default-path user.

All register their executables through :func:`install_all_systems`, called by
the cluster builder for every machine's system directory.
"""

from __future__ import annotations


def install_all_systems(directory) -> None:
    """Register every parallel system's programs in ``directory``."""
    from repro.systems.calypso import install_calypso
    from repro.systems.lam import install_lam
    from repro.systems.plinda import install_plinda
    from repro.systems.pvm import install_pvm
    from repro.systems.taskfarm import install_taskfarm

    install_pvm(directory)
    install_lam(directory)
    install_calypso(directory)
    install_plinda(directory)
    install_taskfarm(directory)
