"""Calypso-style adaptive parallel runtime.

Calypso (Baratloo, Dasgupta, Kedem 1995) executes a program's *parallel
steps* on a dynamically changing worker pool with **eager scheduling** — a
step may be (re)assigned to several workers, the first completion wins, and
idempotence is guaranteed by a two-phase memoization of results (TIES).  Two
properties matter to this paper:

* adaptivity is provided *by the runtime*: workers may join anonymously and
  may be killed at any time without programmer effort, so Calypso exercises
  ResourceBroker's **default (redirection) path**;
* the runtime grows by calling ``calypso_spawnworker()``, which "ultimately
  results in a rsh command" — our master spawns ``rsh anylinux
  calypso_worker`` exactly so.

Programs:

* ``calypso <steps> <cpu_per_step> <workers>`` — a master running one
  parallel phase of ``steps`` tasks, each ``cpu_per_step`` CPU-seconds,
  keeping up to ``workers`` machines acquired just-in-time.
* ``calypso_worker <master_host> <port>`` — joins a master, computes
  assigned steps, shuts down gracefully on SIGTERM.
"""

from repro.systems.calypso.api import CalypsoRuntime, ParallelStep
from repro.systems.calypso.master import calypso_master_main
from repro.systems.calypso.worker import calypso_worker_main

__all__ = [
    "CalypsoRuntime",
    "ParallelStep",
    "calypso_master_main",
    "calypso_worker_main",
    "install_calypso",
]


def install_calypso(directory) -> None:
    """Register the Calypso programs in ``directory``."""
    directory.register("calypso", calypso_master_main)
    directory.register("calypso_worker", calypso_worker_main)
