"""Calypso as a library: write adaptive parallel programs, not CLIs.

Real Calypso programs interleave sequential code with *parallel steps*; the
runtime keeps a worker pool across steps, schedules eagerly, and survives
workers appearing and disappearing.  :class:`CalypsoRuntime` gives simulated
programs the same shape::

    def my_app(proc):
        runtime = CalypsoRuntime(proc, target_workers=4)
        runtime.start()
        # parallel phase 1: 20 steps of 2 CPU-seconds
        results = yield from runtime.run_phase(
            [ParallelStep(work=2.0, payload=i) for i in range(20)]
        )
        # ... sequential code ...
        results2 = yield from runtime.run_phase([...])
        runtime.shutdown()

Workers are acquired through ``rsh`` against the hostfile (symbolic
``anylinux`` under a broker), join anonymously, stay connected across
phases, and may be revoked at any time — a lost worker's step is simply
re-run elsewhere (eager scheduling / TIES idempotence).

A custom ``worker_program`` may be supplied to compute real results from
step payloads; the stock ``calypso_worker`` burns the CPU time and echoes
the payload back.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.os.errors import ConnectionClosed
from repro.systems.hostfile import read_hostfile


@dataclass
class ParallelStep:
    """One unit of a parallel phase."""

    work: float
    payload: Any = None


class _Phase:
    """Scheduling state of one running parallel phase."""

    def __init__(self, env, steps: List[ParallelStep]) -> None:
        self.steps = steps
        self.results: List[Any] = [None] * len(steps)
        self.done = [False] * len(steps)
        self.assignments = [0] * len(steps)
        self.completed = 0
        self.finished = env.event()
        self._dispatch = deque(range(len(steps)))
        if not steps:
            self.finished.succeed()

    def next_index(self) -> Optional[int]:
        """Eager scheduling: fewest-assigned incomplete step (duplicates
        allowed once everything is assigned)."""
        while True:
            while self._dispatch:
                index = self._dispatch.popleft()
                if not self.done[index]:
                    return index
            incomplete = [i for i in range(len(self.steps)) if not self.done[i]]
            if not incomplete:
                return None
            incomplete.sort(key=lambda i: self.assignments[i])
            self._dispatch = deque(incomplete)

    def complete(self, index: int, value: Any) -> None:
        if self.done[index]:
            return  # duplicate from eager scheduling: first result won
        self.done[index] = True
        self.results[index] = value
        self.completed += 1
        if self.completed >= len(self.steps) and not self.finished.triggered:
            self.finished.succeed()


class CalypsoRuntime:
    """An adaptive worker pool serving successive parallel phases."""

    def __init__(
        self,
        proc,
        target_workers: int,
        worker_program: str = "calypso_worker",
    ) -> None:
        if target_workers < 1:
            raise ValueError("target_workers must be >= 1")
        self.proc = proc
        self.env = proc.env
        self.target_workers = target_workers
        self.worker_program = worker_program
        self.current: Optional[_Phase] = None
        self.stopped = False
        self._phase_opened = self.env.event()  # re-armed per phase
        self._listener = None
        self._port = None
        self.workers_seen = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Open the pool: listener, grow slots, accept loop."""
        proc = self.proc
        self._port = proc.machine.network.ephemeral_port(proc.machine)
        self._listener = proc.listen(self._port)
        hosts = read_hostfile(proc)
        for slot in range(self.target_workers):
            proc.thread(
                self._grow_slot(hosts[slot % len(hosts)]),
                name=f"calypso-grow{slot}",
            )
        proc.thread(self._accept_loop(), name="calypso-accept")

    def run_phase(self, steps: List[ParallelStep]):
        """Generator: run one parallel phase to completion, return results
        (ordered by step index)."""
        if self.stopped:
            raise RuntimeError("runtime already shut down")
        if self.current is not None and not self.current.finished.triggered:
            raise RuntimeError("a phase is already running")
        phase = _Phase(self.env, list(steps))
        self.current = phase
        # Wake the sessions idling between phases.
        opened, self._phase_opened = self._phase_opened, self.env.event()
        if not opened.triggered:
            opened.succeed()
        yield phase.finished
        self.current = None
        return list(phase.results)

    def shutdown(self) -> None:
        """Dismiss the pool (workers see EOF and exit)."""
        self.stopped = True
        if not self._phase_opened.triggered:
            self._phase_opened.succeed()
        if self._listener is not None:
            self._listener.close()

    # -- internals ---------------------------------------------------------

    def _grow_slot(self, target_host):
        proc = self.proc
        while not self.stopped:
            rsh = proc.spawn(
                [
                    "rsh",
                    target_host,
                    self.worker_program,
                    proc.machine.name,
                    str(self._port),
                ]
            )
            yield proc.wait(rsh)
            if self.stopped:
                return
            yield proc.sleep(0.25)

    def _accept_loop(self):
        proc = self.proc
        while True:
            try:
                conn = yield self._listener.accept()
            except ConnectionClosed:
                return
            self.workers_seen += 1
            proc.thread(
                self._session(conn), name=f"calypso-w{self.workers_seen}"
            )

    def _session(self, conn):
        from repro.obs import context_from_environ, tracer_of

        try:
            hello = yield conn.recv()
        except ConnectionClosed:
            conn.close()
            return
        if hello.get("type") != "worker_hello":
            conn.close()
            return
        # One span per worker lifetime (join -> loss/shutdown), parented
        # under the master program's context.
        span = tracer_of(self.proc).start(
            "calypso.worker",
            parent=context_from_environ(self.proc.environ),
            actor=f"calypso:{self.proc.machine.name}",
            host=hello.get("host"),
        )
        steps_done = 0
        assigned: Optional[int] = None
        phase: Optional[_Phase] = None
        try:
            while not self.stopped:
                phase = self.current
                if phase is None or phase.finished.triggered:
                    yield self._phase_opened  # idle between phases
                    continue
                index = phase.next_index()
                if index is None:
                    yield self._phase_opened
                    continue
                phase.assignments[index] += 1
                assigned = index
                step = phase.steps[index]
                conn.send(
                    {
                        "type": "assign",
                        "step": index,
                        "work": step.work,
                        "payload": step.payload,
                    }
                )
                reply = yield conn.recv()
                assigned = None
                if reply.get("type") == "result":
                    phase.complete(int(reply["step"]), reply.get("value"))
                    steps_done += 1
                elif reply.get("type") == "worker_bye":
                    break
        except ConnectionClosed:
            # Worker lost mid-step: back out the assignment; eager
            # scheduling re-runs the step on another worker.
            if assigned is not None and phase is not None:
                phase.assignments[assigned] = max(
                    0, phase.assignments[assigned] - 1
                )
                phase._dispatch.append(assigned)
            span.end(steps=steps_done, outcome="lost")
        if not span.finished:
            span.end(steps=steps_done, outcome="dismissed")
        conn.close()
