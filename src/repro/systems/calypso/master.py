"""The ``calypso`` CLI program: one parallel phase over a volatile pool.

``calypso <steps> <cpu_per_step> <workers>`` runs a single parallel phase of
uniform steps — the shape the paper's experiments need (a long-running
adaptive computation soaking up machines).  It is a thin wrapper over the
:class:`~repro.systems.calypso.api.CalypsoRuntime` library, which richer
applications use directly (see ``examples/calypso_application.py``).
"""

from __future__ import annotations

from repro.systems.calypso.api import CalypsoRuntime, ParallelStep


def calypso_master_main(proc):
    """``calypso <steps> <cpu_per_step> <workers>``."""
    if len(proc.argv) < 4:
        return 1
    n_steps = int(proc.argv[1])
    cpu_per_step = float(proc.argv[2])
    target_workers = int(proc.argv[3])
    if n_steps <= 0 or target_workers <= 0:
        return 1

    runtime = CalypsoRuntime(proc, target_workers=target_workers)
    runtime.start()
    yield from runtime.run_phase(
        [ParallelStep(work=cpu_per_step, payload=i) for i in range(n_steps)]
    )
    runtime.shutdown()
    return 0
