"""The Calypso worker: computes assigned steps until told (or made) to stop.

Adaptivity contract (paper §1: "for Calypso, this service is provided by the
runtime layer"): the worker may be terminated at any time without hurting the
computation.  On SIGTERM it performs an orderly shutdown — finishing its
bookkeeping and flushing runtime state, modelled as the calibrated
``adaptive_shutdown`` delay — and exits 0; eager scheduling at the master
redoes whatever step it was holding.
"""

from __future__ import annotations

from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.sim.process import Interrupt


def calypso_worker_main(proc):
    """``calypso_worker <master_host> <master_port>``."""
    if len(proc.argv) < 3:
        return 1
    master_host, master_port = proc.argv[1], int(proc.argv[2])
    cal = proc.machine.network.calibration
    try:
        yield proc.sleep(cal.calypso_worker_startup)
        conn = yield proc.connect(master_host, master_port)
    except (ConnectionRefused, NoSuchHost):
        return 1
    except Interrupt:
        return 0
    conn.send({"type": "worker_hello", "host": proc.machine.name})
    try:
        while True:
            msg = yield conn.recv()
            if msg.get("type") != "assign":
                break
            yield proc.compute(float(msg["work"]), tag="calypso-step")
            # The stock worker has no application code: it burns the CPU
            # time and echoes the payload (custom worker programs compute
            # real results from it — see CalypsoRuntime's worker_program).
            conn.send(
                {
                    "type": "result",
                    "step": msg["step"],
                    "value": msg.get("payload", ("done", msg["step"])),
                }
            )
    except ConnectionClosed:
        return 0  # master finished or died; nothing to clean up
    except Interrupt:
        # Revocation: orderly runtime shutdown, then leave quietly.  The
        # master sees our connection drop and reschedules the step.
        try:
            conn.send({"type": "worker_bye"})
        except ConnectionClosed:
            pass
        yield proc.sleep(cal.adaptive_shutdown)
        return 0
    conn.close()
    return 0
