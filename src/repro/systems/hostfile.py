"""Hostfile (``~/.hosts``) handling shared by the adaptive runtimes.

The paper's usage scenario (§5): a user who wants a computation to grow to
``node07`` "prepares a hostfile, named .hosts, containing node07"; a user who
wants broker-chosen machines instead writes the symbolic name ``anylinux``.
The runtime consults the hostfile every time it spawns a worker and cycles
through its entries.
"""

from __future__ import annotations

from typing import List

HOSTFILE = "~/.hosts"


def read_hostfile(proc, default: str = "anylinux") -> List[str]:
    """Host entries from ``~/.hosts``, or ``[default]`` when absent/empty."""
    if proc.file_exists(HOSTFILE):
        lines = proc.machine.fs.read_lines(proc.expand(HOSTFILE))
        if lines:
            return lines
    return [default]
