"""LAM/MPI-style runtime.

LAM 6 boots a daemon (``lamd``) on every node of the "LAM universe" and runs
MPI programs over them.  Like PVM it refuses daemons from machines it did not
start itself, so it needs ResourceBroker's external-module path; unlike PVM
it is driven by separate command-line tools rather than an interactive
console:

* ``lamboot [host...]`` — start the origin lamd (advertised in ``~/.lamd``)
  and boot remote lamds on the listed hosts via rsh;
* ``lamgrow <host>`` / ``lamshrink <host>`` — grow/shrink the running
  universe (the paper's required condition 3: a command-line interface for
  users to grow the pool, tolerant of failed attempts);
* ``lamhalt`` — tear the universe down;
* ``lamnodes`` — list it;
* ``lam`` — attach to the universe until it halts (our stand-in for a
  long-running MPI application; keeps a broker-submitted job alive).

Per-host startup is deliberately heavier than PVM's (paper Table 3: ~1.4 s
vs ~1.2 s of per-host ``anylinux`` overhead).
"""

from repro.systems.lam.daemon import lamd_main
from repro.systems.lam.tools import (
    lam_attach_main,
    lamboot_main,
    lamgrow_main,
    lamhalt_main,
    lamnodes_main,
    lamshrink_main,
)
from repro.systems.lam.modules import (
    lam_grow_module_main,
    lam_halt_module_main,
    lam_shrink_module_main,
)

__all__ = [
    "install_lam",
    "lam_attach_main",
    "lamboot_main",
    "lamd_main",
    "lamgrow_main",
    "lamhalt_main",
    "lamnodes_main",
    "lamshrink_main",
    "lam_grow_module_main",
    "lam_halt_module_main",
    "lam_shrink_module_main",
]


def install_lam(directory) -> None:
    """Register every LAM program (daemon, tools, broker modules)."""
    directory.register("lamd", lamd_main)
    directory.register("lamboot", lamboot_main)
    directory.register("lamgrow", lamgrow_main)
    directory.register("lamshrink", lamshrink_main)
    directory.register("lamhalt", lamhalt_main)
    directory.register("lamnodes", lamnodes_main)
    directory.register("lam", lam_attach_main)
    directory.register("lam_grow", lam_grow_module_main)
    directory.register("lam_shrink", lam_shrink_module_main)
    directory.register("lam_halt", lam_halt_module_main)
