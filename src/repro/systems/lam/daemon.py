"""``lamd`` — the LAM daemon (origin and remote modes).

The origin lamd is the universe's coordinator: it owns the node table,
boots remote lamds via rsh, and serves the command-line tools.  Remote lamds
register back with the origin and are **rejected if the origin did not boot
them** — like PVM, LAM does not let unexpected machines join.
"""

from __future__ import annotations

from repro.os.errors import (
    ConnectionClosed,
    ConnectionRefused,
    NoSuchHost,
    NoSuchProgram,
)
from repro.os.signals import SIGKILL

#: Home-relative path of the origin advertisement (cf. LAM's kill file).
LAMD_FILE = "~/.lamd"

#: Home-relative status file listing universe membership (for harnesses).
LAM_NODES_FILE = "~/.lam_nodes"

#: Startup lock closing the double-boot window (see PVM's equivalent).
LAMD_LOCK = "~/.lamd.lock"


def lamd_main(proc):
    """Program body: origin mode, or ``lamd -remote <origin> <port>``."""
    if len(proc.argv) >= 2 and proc.argv[1] == "-remote":
        return (yield from _remote_main(proc))
    return (yield from _origin_main(proc))


# ---------------------------------------------------------------------------
# origin
# ---------------------------------------------------------------------------


class _Universe:
    def __init__(self, proc, port):
        self.proc = proc
        self.origin = proc.machine.name
        self.port = port
        self.nodes = {self.origin: None}  # host -> remote lamd conn
        self.expected = set()
        #: reply routing for in-flight remote task spawns: host -> Event
        self.spawn_waiters = {}
        self.halted = proc.env.event()

    def publish_nodes(self) -> None:
        self.proc.write_file(
            LAM_NODES_FILE, "".join(h + "\n" for h in sorted(self.nodes))
        )


def _origin_main(proc):
    port = proc.machine.network.ephemeral_port(proc.machine)
    listener = proc.listen(port)
    universe = _Universe(proc, port)
    proc.write_file(LAMD_FILE, f"{universe.origin} {port}\n")
    proc.unlink_file(LAMD_LOCK)
    universe.publish_nodes()
    while True:
        accept_ev = listener.accept()
        outcome = yield proc.env.any_of([accept_ev, universe.halted])
        if universe.halted in outcome:
            break
        proc.thread(
            _origin_serve(proc, universe, accept_ev.value),
            name="lamd-session",
        )
    proc.unlink_file(LAMD_FILE)
    proc.unlink_file(LAM_NODES_FILE)
    proc.unlink_file(LAMD_LOCK)
    return 0


def _origin_serve(proc, universe, conn):
    try:
        first = yield conn.recv()
    except ConnectionClosed:
        conn.close()
        return
    kind = first.get("type")
    if kind == "lamd_hello":
        yield from _remote_session(proc, universe, conn, first)
    elif kind == "lam_tool":
        yield from _tool_session(proc, universe, conn, first)
    else:
        conn.close()


def _remote_session(proc, universe, conn, hello):
    host = hello.get("host")
    if host not in universe.expected:
        conn.send({"type": "lamd_reject", "reason": "not booted by origin"})
        conn.close()
        return
    universe.expected.discard(host)
    universe.nodes[host] = conn
    universe.publish_nodes()
    conn.send({"type": "lamd_ack"})
    try:
        while True:
            msg = yield conn.recv()
            if msg.get("type") == "lamd_spawned":
                waiter = universe.spawn_waiters.pop(host, None)
                if waiter is not None:
                    waiter.succeed(msg.get("pid"))
    except ConnectionClosed:
        pass
    if universe.nodes.get(host) is conn:
        del universe.nodes[host]
        universe.publish_nodes()
    conn.close()


def _tool_session(proc, universe, conn, first):
    msg = first
    while True:
        reply = yield from _tool_command(proc, universe, msg)
        try:
            conn.send(reply)
        except ConnectionClosed:
            pass
        if msg.get("cmd") == "halt":
            conn.close()
            if not universe.halted.triggered:
                universe.halted.succeed()
            return
        try:
            msg = yield conn.recv()
        except ConnectionClosed:
            conn.close()
            return


def _tool_command(proc, universe, msg):
    cmd = msg.get("cmd")
    if cmd == "nodes":
        return {"type": "lam_reply", "nodes": sorted(universe.nodes)}
    if cmd == "grow":
        host = msg.get("host")
        outcome = yield from _boot_node(
            proc, universe, host, ctx=msg.get("trace")
        )
        return {"type": "lam_reply", "result": outcome}
    if cmd == "shrink":
        host = msg.get("host")
        outcome = yield from _drop_node(proc, universe, host)
        return {"type": "lam_reply", "result": outcome}
    if cmd == "spawn":
        placed = yield from _spawn_tasks(
            proc, universe, msg.get("argv", []), int(msg.get("count", 1))
        )
        return {"type": "lam_reply", "tasks": placed}
    if cmd == "halt":
        for host in [h for h in list(universe.nodes) if h != universe.origin]:
            yield from _drop_node(proc, universe, host)
        return {"type": "lam_reply", "halted": True}
    return {"type": "lam_reply", "error": f"unknown command {cmd!r}"}


def _spawn_tasks(proc, universe, argv, count):
    """Round-robin ``count`` MPI task processes across the universe."""
    if not argv:
        return []
    placed = []
    nodes = sorted(universe.nodes)
    for index in range(count):
        host = nodes[index % len(nodes)]
        if host == universe.origin:
            try:
                task = proc.spawn(list(argv))
                placed.append({"host": host, "pid": task.pid})
            except NoSuchProgram:
                placed.append({"host": host, "pid": None})
            continue
        conn = universe.nodes[host]
        waiter = proc.env.event()
        universe.spawn_waiters[host] = waiter
        try:
            conn.send({"type": "lamd_spawn", "argv": list(argv)})
        except ConnectionClosed:
            universe.spawn_waiters.pop(host, None)
            placed.append({"host": host, "pid": None})
            continue
        outcome = yield proc.env.any_of([waiter, proc.env.timeout(5.0)])
        if waiter in outcome:
            placed.append({"host": host, "pid": waiter.value})
        else:
            universe.spawn_waiters.pop(host, None)
            placed.append({"host": host, "pid": None})
    return placed


def _boot_node(proc, universe, host, ctx=None):
    from repro.obs import context_from_environ, tracer_of

    if host in universe.nodes:
        return "already"
    span = tracer_of(proc).start(
        "lam.boot_node",
        parent=ctx or context_from_environ(proc.environ),
        actor=f"lamd:{universe.origin}",
        host=host,
    )
    universe.expected.add(host)
    rsh = proc.spawn(
        ["rsh", host, "lamd", "-remote", universe.origin, str(universe.port)],
        environ=span.environ(),
    )
    code = yield proc.wait(rsh)
    if code != 0:
        universe.expected.discard(host)
        span.end(result="failed")
        return "failed"
    result = "ok" if host in universe.nodes else "failed"
    span.end(result=result)
    return result


def _drop_node(proc, universe, host):
    conn = universe.nodes.get(host)
    if host not in universe.nodes or conn is None:
        return "no-such-node"
    try:
        conn.send({"type": "lamd_halt"})
    except ConnectionClosed:
        pass
    deadline = proc.env.timeout(5.0)
    while host in universe.nodes and not deadline.processed:
        yield proc.env.any_of([proc.env.timeout(0.01), deadline])
    return "ok" if host not in universe.nodes else "timeout"


# ---------------------------------------------------------------------------
# remote
# ---------------------------------------------------------------------------


def _remote_main(proc):
    if len(proc.argv) < 4:
        return 1
    origin_host, origin_port = proc.argv[2], int(proc.argv[3])
    cal = proc.machine.network.calibration
    yield proc.sleep(cal.lamd_slave_startup)
    try:
        conn = yield proc.connect(origin_host, origin_port)
    except (ConnectionRefused, NoSuchHost):
        return 1
    conn.send({"type": "lamd_hello", "host": proc.machine.name})
    try:
        ack = yield conn.recv()
    except ConnectionClosed:
        return 1
    if ack.get("type") != "lamd_ack":
        return 1
    proc.daemonize()

    # Fencing (DESIGN.md §16): same rule as the PVM slave — if this
    # machine's witnessed broker epoch rises past the one we joined under,
    # the universe holding us is stale; stop taking work and drop out.
    # Inert (witness 0) outside warm-standby runs.
    from repro.broker.daemon import witnessed_epoch

    session_epoch = witnessed_epoch(proc.machine)

    tasks = []
    try:
        while True:
            msg = yield conn.recv()
            kind = msg.get("type")
            if session_epoch and witnessed_epoch(proc.machine) > session_epoch:
                from repro.obs import metrics_of

                metrics_of(proc).counter("lam.slaves_fenced").inc()
                break
            if kind == "lamd_spawn":
                try:
                    task = proc.spawn(list(msg["argv"]))
                    tasks.append(task)
                    conn.send({"type": "lamd_spawned", "pid": task.pid})
                except NoSuchProgram:
                    conn.send({"type": "lamd_spawned", "pid": None})
            elif kind == "lamd_halt":
                break
    except ConnectionClosed:
        pass
    for task in tasks:
        if task.is_alive:
            task.kill_tree(SIGKILL, sender=proc)
    conn.close()
    return 0
