"""The LAM external modules (``lam_grow`` / ``lam_shrink`` / ``lam_halt``).

"A similar mechanism is used for both PVM and LAM programs" (paper §5.3),
but LAM's own tools already take a host argument, so these scripts are even
simpler than PVM's console-driving ones — each just invokes the matching LAM
tool, simulating the user's actions.
"""

from __future__ import annotations


def lam_grow_module_main(proc):
    """``lam_grow <host>``."""
    if len(proc.argv) < 2:
        return 1
    tool = proc.spawn(["lamgrow", proc.argv[1]])
    code = yield proc.wait(tool)
    return code


def lam_shrink_module_main(proc):
    """``lam_shrink <host>``."""
    if len(proc.argv) < 2:
        return 1
    tool = proc.spawn(["lamshrink", proc.argv[1]])
    code = yield proc.wait(tool)
    return code


def lam_halt_module_main(proc):
    """``lam_halt``."""
    tool = proc.spawn(["lamhalt"])
    code = yield proc.wait(tool)
    return code
