"""LAM command-line tools: lamboot, lamgrow, lamshrink, lamhalt, lamnodes, lam."""

from __future__ import annotations

from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.systems.lam.daemon import LAMD_FILE, LAMD_LOCK


class LamError(Exception):
    """No origin daemon or protocol failure."""


def _connect_origin(proc, retries: int = 40, retry_delay: float = 0.05):
    """Connect to the origin lamd advertised in ``~/.lamd``."""
    for _ in range(retries):
        if proc.file_exists(LAMD_FILE):
            host, port = proc.read_file(LAMD_FILE).split()
            try:
                conn = yield proc.connect(host, int(port))
                return conn
            except (ConnectionRefused, NoSuchHost):
                pass
        yield proc.sleep(retry_delay)
    raise LamError("no lamd running (missing ~/.lamd)")


def _tool(conn, payload, ctx=None):
    if ctx:
        payload = {**payload, "trace": dict(ctx)}
    conn.send({"type": "lam_tool", **payload})
    try:
        reply = yield conn.recv()
    except ConnectionClosed:
        raise LamError("lamd connection lost") from None
    if reply.get("type") != "lam_reply":
        raise LamError(f"unexpected reply {reply!r}")
    return reply


def _tool_startup(proc):
    """Every LAM tool pays the (heavier-than-PVM) tool startup cost."""
    cal = proc.machine.network.calibration
    yield proc.sleep(cal.lam_console)


def lamboot_main(proc):
    """``lamboot [host...]``: start the origin lamd, boot listed hosts."""
    from repro.obs import context_from_environ

    yield from _tool_startup(proc)
    if not proc.file_exists(LAMD_FILE) and not proc.file_exists(LAMD_LOCK):
        proc.write_file(LAMD_LOCK, "starting\n")
        proc.spawn(["lamd"])
    try:
        conn = yield from _connect_origin(proc)
    except LamError:
        return 1
    status = 0
    ctx = context_from_environ(proc.environ)
    for host in proc.argv[1:]:
        reply = yield from _tool(conn, {"cmd": "grow", "host": host}, ctx=ctx)
        if reply.get("result") == "failed":
            status = 1
    conn.close()
    return status


def lamgrow_main(proc):
    """``lamgrow <host>``: add one node to the running universe."""
    from repro.obs import context_from_environ

    if len(proc.argv) < 2:
        return 1
    yield from _tool_startup(proc)
    try:
        conn = yield from _connect_origin(proc)
        reply = yield from _tool(
            conn,
            {"cmd": "grow", "host": proc.argv[1]},
            ctx=context_from_environ(proc.environ),
        )
    except LamError:
        return 1
    conn.close()
    return 0 if reply.get("result") in ("ok", "already") else 1


def lamshrink_main(proc):
    """``lamshrink <host>``: gracefully remove one node."""
    if len(proc.argv) < 2:
        return 1
    yield from _tool_startup(proc)
    try:
        conn = yield from _connect_origin(proc)
        reply = yield from _tool(conn, {"cmd": "shrink", "host": proc.argv[1]})
    except LamError:
        return 1
    conn.close()
    return 0 if reply.get("result") == "ok" else 1


def lamhalt_main(proc):
    """``lamhalt``: tear the universe down."""
    yield from _tool_startup(proc)
    try:
        conn = yield from _connect_origin(proc)
        yield from _tool(conn, {"cmd": "halt"})
    except LamError:
        return 1
    conn.close()
    return 0


def lamnodes_main(proc):
    """``lamnodes``: exit 0 and report the node list (via exit status only)."""
    yield from _tool_startup(proc)
    try:
        conn = yield from _connect_origin(proc)
        reply = yield from _tool(conn, {"cmd": "nodes"})
    except LamError:
        return 1
    conn.close()
    return 0 if reply.get("nodes") else 1


def lam_attach_main(proc):
    """``lam``: boot (if needed) and stay attached until the universe halts.

    This is the form submitted through the broker — it stands in for a
    long-running MPI application and keeps the job alive.
    """
    yield from _tool_startup(proc)
    if not proc.file_exists(LAMD_FILE) and not proc.file_exists(LAMD_LOCK):
        proc.write_file(LAMD_LOCK, "starting\n")
        proc.spawn(["lamd"])
    try:
        conn = yield from _connect_origin(proc)
    except LamError:
        return 1
    try:
        yield conn.recv()  # blocks until the origin lamd goes away
    except ConnectionClosed:
        pass
    return 0
