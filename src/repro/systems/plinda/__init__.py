"""PLinda-style persistent tuple space with transactional takes.

PLinda (Persistent Linda, NYU) extends Linda's ``out``/``in``/``rd``
coordination with transactions so that *bag-of-tasks* programs tolerate
worker loss: a worker takes a task tuple inside a transaction; if it dies
before committing, the server rolls the take back and another worker picks
the task up.  That is exactly the adaptivity contract ResourceBroker's
default path needs — PLinda workers join anonymously and may be revoked at
any time.

Programs:

* ``plinda_server`` — the tuple-space server;
* ``plinda <tasks> <cpu_per_task> <workers>`` — a bag-of-tasks master that
  seeds task tuples, acquires workers via ``rsh anylinux plinda_worker``
  (the interception point) and collects results;
* ``plinda_worker <server_host> <port>`` — the generic transactional worker.
"""

from repro.systems.plinda.server import plinda_server_main
from repro.systems.plinda.space import TupleSpace, tuple_matches
from repro.systems.plinda.client import (
    PlindaError,
    plinda_master_main,
    plinda_worker_main,
)

__all__ = [
    "PlindaError",
    "TupleSpace",
    "install_plinda",
    "plinda_master_main",
    "plinda_server_main",
    "plinda_worker_main",
    "tuple_matches",
]


def install_plinda(directory) -> None:
    """Register the PLinda programs in ``directory``."""
    directory.register("plinda_server", plinda_server_main)
    directory.register("plinda", plinda_master_main)
    directory.register("plinda_worker", plinda_worker_main)
