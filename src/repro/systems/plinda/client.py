"""PLinda client library, bag-of-tasks master and transactional worker."""

from __future__ import annotations

from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.sim.process import Interrupt
from repro.systems.hostfile import read_hostfile
from repro.systems.plinda.server import PLINDA_FILE


class PlindaError(Exception):
    """Server unavailable or protocol failure."""


def plinda_connect(proc, retries: int = 40, retry_delay: float = 0.05):
    """Connect to the tuple-space server advertised in ``~/.plinda``."""
    for _ in range(retries):
        if proc.file_exists(PLINDA_FILE):
            host, port = proc.read_file(PLINDA_FILE).split()
            try:
                conn = yield proc.connect(host, int(port))
                return conn
            except (ConnectionRefused, NoSuchHost):
                pass
        yield proc.sleep(retry_delay)
    raise PlindaError("no plinda_server running")


def _call(conn, payload):
    conn.send(payload)
    try:
        reply = yield conn.recv()
    except ConnectionClosed:
        raise PlindaError("server connection lost") from None
    if not reply.get("ok"):
        raise PlindaError(reply.get("error", "operation failed"))
    return reply


def ts_out(conn, tup):
    """Linda ``out``: deposit a tuple."""
    yield from _call(conn, {"op": "out", "tuple": list(tup)})


def ts_in(conn, pattern):
    """Linda ``in``: blocking destructive match."""
    reply = yield from _call(conn, {"op": "in", "pattern": list(pattern)})
    return tuple(reply["tuple"])


def ts_rd(conn, pattern):
    """Linda ``rd``: blocking non-destructive match."""
    reply = yield from _call(conn, {"op": "rd", "pattern": list(pattern)})
    return tuple(reply["tuple"])


def ts_count(conn, pattern):
    """Count currently-matching tuples."""
    reply = yield from _call(conn, {"op": "count", "pattern": list(pattern)})
    return int(reply["count"])


def txn_begin(conn):
    """Open a transaction on this connection."""
    yield from _call(conn, {"op": "txn_begin"})


def txn_commit(conn):
    """Commit the open transaction."""
    yield from _call(conn, {"op": "txn_commit"})


def txn_abort(conn):
    """Abort the open transaction (takes are restored)."""
    yield from _call(conn, {"op": "txn_abort"})


def ts_halt(conn):
    """Stop the tuple-space server."""
    yield from _call(conn, {"op": "halt"})


# ---------------------------------------------------------------------------
# bag-of-tasks master
# ---------------------------------------------------------------------------


def plinda_master_main(proc):
    """``plinda <tasks> <cpu_per_task> <workers>``.

    Resilient to server loss: if the tuple-space server dies mid-run, the
    master restarts it; the new server recovers the committed task/result
    tuples from its checkpoint and the computation continues — the
    *persistent* half of PLinda.
    """
    if len(proc.argv) < 4:
        return 1
    n_tasks = int(proc.argv[1])
    cpu_per_task = float(proc.argv[2])
    target_workers = int(proc.argv[3])
    if n_tasks <= 0 or target_workers <= 0:
        return 1

    proc.spawn(["plinda_server"])
    try:
        conn = yield from plinda_connect(proc)
    except PlindaError:
        return 1

    for index in range(n_tasks):
        yield from ts_out(conn, ("task", index, cpu_per_task))

    done = proc.env.event()
    hosts = read_hostfile(proc)
    for slot in range(target_workers):
        proc.thread(
            _grow_slot(proc, done, hosts[slot % len(hosts)]),
            name=f"plinda-grow{slot}",
        )

    # Collect one result tuple per task (order irrelevant), restarting the
    # server from its checkpoint whenever it goes away.
    collected = 0
    while collected < n_tasks:
        try:
            yield from ts_in(conn, ("result", None))
            collected += 1
        except PlindaError:
            conn.close()
            proc.spawn(["plinda_server"])
            try:
                conn = yield from plinda_connect(proc)
            except PlindaError:
                if not done.triggered:
                    done.succeed()
                return 1
    if not done.triggered:
        done.succeed()
    try:
        yield from ts_halt(conn)
    except PlindaError:
        pass
    conn.close()
    return 0


def _grow_slot(proc, done, target_host):
    """Keep one worker slot filled, re-reading the server advertisement on
    every (re)spawn so workers always target the *current* server."""
    while not done.triggered:
        if proc.file_exists(PLINDA_FILE):
            server_host, server_port = proc.read_file(PLINDA_FILE).split()
            rsh = proc.spawn(
                [
                    "rsh",
                    target_host,
                    "plinda_worker",
                    server_host,
                    server_port,
                ]
            )
            yield proc.wait(rsh)
            if done.triggered:
                return
        yield proc.sleep(0.25)


# ---------------------------------------------------------------------------
# transactional worker
# ---------------------------------------------------------------------------


def plinda_worker_main(proc):
    """``plinda_worker <server_host> <server_port>``.

    Repeatedly: begin transaction, take a task, compute, emit the result,
    commit.  Dying (or being revoked) mid-transaction loses nothing: the
    server aborts the open transaction and the task tuple reappears.
    """
    if len(proc.argv) < 3:
        return 1
    cal = proc.machine.network.calibration
    try:
        yield proc.sleep(cal.plinda_worker_startup)
        conn = yield proc.connect(proc.argv[1], int(proc.argv[2]))
    except (ConnectionRefused, NoSuchHost):
        return 1
    except Interrupt:
        return 0
    try:
        while True:
            yield from txn_begin(conn)
            _tag, index, work = yield from ts_in(conn, ("task", None, None))
            yield proc.compute(float(work), tag="plinda-task")
            yield from ts_out(conn, ("result", index))
            yield from txn_commit(conn)
    except (ConnectionClosed, PlindaError):
        return 0  # server finished or died
    except Interrupt:
        # Revocation: orderly shutdown; the open transaction (if any) is
        # rolled back by the server when our connection drops.
        yield proc.sleep(cal.adaptive_shutdown)
        return 0
