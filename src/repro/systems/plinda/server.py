"""``plinda_server`` — the *persistent* tuple-space server.

One connection per client; each connection may hold at most one open
transaction.  A connection dropping with an open transaction aborts it,
restoring every tuple the client had taken — the fault-tolerance half of
PLinda that makes its workers safely revocable.

Persistence (the P in PLinda): the server continuously checkpoints the
*committed* state of the space to ``~/.plinda_ckpt`` — the current tuples
plus everything held by still-open transactions (whose takes must roll back
on recovery), minus uncommitted writes.  A freshly started server finding a
checkpoint resumes from it, so a server crash costs at most the work of the
transactions that were open — never a committed task or result.
"""

from __future__ import annotations

import itertools
import json

from repro.os.errors import ConnectionClosed
from repro.systems.plinda.space import TupleSpace

#: Home-relative advertisement file (host + port of the server).
PLINDA_FILE = "~/.plinda"

#: Home-relative checkpoint of the committed tuple-space state.
PLINDA_CKPT = "~/.plinda_ckpt"


def _committed_tuples(space: TupleSpace):
    """Committed state: buffered tuples + open-transaction takes − their
    uncommitted outs (exactly what recovery must restore)."""
    tuples = list(space._store.items)
    uncommitted_outs = []
    for txn in space.open_transactions():
        tuples.extend(space._txn_takes.get(txn, []))
        uncommitted_outs.extend(space._txn_outs.get(txn, []))
    for out in uncommitted_outs:
        try:
            tuples.remove(out)
        except ValueError:
            pass
    return tuples


def checkpoint(proc, space: TupleSpace) -> None:
    """Write the committed state to the checkpoint file."""
    payload = json.dumps([list(t) for t in _committed_tuples(space)])
    proc.write_file(PLINDA_CKPT, payload)


def restore(proc, space: TupleSpace) -> int:
    """Load a checkpoint into an empty space; returns the tuple count."""
    if not proc.file_exists(PLINDA_CKPT):
        return 0
    tuples = json.loads(proc.read_file(PLINDA_CKPT))
    for tup in tuples:
        space.out(tuple(tup))
    return len(tuples)


def plinda_server_main(proc):
    """Program body of the tuple-space server (see module docstring)."""
    space = TupleSpace(proc.env)
    recovered = restore(proc, space)
    del recovered  # informational only; nothing to print in a daemon
    port = proc.machine.network.ephemeral_port(proc.machine)
    listener = proc.listen(port)
    proc.write_file(PLINDA_FILE, f"{proc.machine.name} {port}\n")
    checkpoint(proc, space)
    txn_ids = itertools.count(1)
    halted = proc.env.event()
    while True:
        accept_ev = listener.accept()
        outcome = yield proc.env.any_of([accept_ev, halted])
        if halted in outcome:
            break
        proc.thread(
            _session(proc, space, accept_ev.value, txn_ids, halted),
            name="plinda-session",
        )
    proc.unlink_file(PLINDA_FILE)
    proc.unlink_file(PLINDA_CKPT)
    return 0


def _session(proc, space, conn, txn_ids, halted):
    txn = None
    try:
        while True:
            msg = yield conn.recv()
            op = msg.get("op")
            if op == "out":
                space.out(msg["tuple"], txn_id=txn)
                checkpoint(proc, space)
                conn.send({"ok": True})
            elif op == "in":
                tup = yield space.take(msg["pattern"], txn_id=txn)
                checkpoint(proc, space)
                conn.send({"ok": True, "tuple": list(tup)})
            elif op == "rd":
                tup = yield space.read(msg["pattern"])
                conn.send({"ok": True, "tuple": list(tup)})
            elif op == "rdp":
                tup = space.try_read(msg["pattern"])
                conn.send(
                    {"ok": True, "tuple": list(tup) if tup else None}
                )
            elif op == "count":
                conn.send({"ok": True, "count": space.count(msg["pattern"])})
            elif op == "txn_begin":
                if txn is not None:
                    conn.send({"ok": False, "error": "transaction open"})
                else:
                    txn = next(txn_ids)
                    space.begin(txn)
                    conn.send({"ok": True, "txn": txn})
            elif op == "txn_commit":
                if txn is None:
                    conn.send({"ok": False, "error": "no transaction"})
                else:
                    space.commit(txn)
                    txn = None
                    checkpoint(proc, space)
                    conn.send({"ok": True})
            elif op == "txn_abort":
                if txn is None:
                    conn.send({"ok": False, "error": "no transaction"})
                else:
                    space.abort(txn)
                    txn = None
                    checkpoint(proc, space)
                    conn.send({"ok": True})
            elif op == "halt":
                conn.send({"ok": True})
                if not halted.triggered:
                    halted.succeed()
                break
            else:
                conn.send({"ok": False, "error": f"unknown op {op!r}"})
    except ConnectionClosed:
        pass
    finally:
        if txn is not None:
            # Client died mid-transaction: roll back its takes so another
            # worker can redo the task.  (Not re-checkpointed during halt:
            # the main loop is deleting the files right now.)
            space.abort(txn)
            if not halted.triggered:
                checkpoint(proc, space)
        conn.close()
