"""The tuple space data structure (pure, no I/O — unit-testable directly)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.stores import FilterStore


def tuple_matches(pattern: Sequence[Any], candidate: Sequence[Any]) -> bool:
    """Linda matching: equal arity; ``None`` in the pattern is a wildcard."""
    if len(pattern) != len(candidate):
        return False
    return all(
        want is None or want == have
        for want, have in zip(pattern, candidate)
    )


class TupleSpace:
    """Tuples plus per-transaction undo logs.

    ``take`` removes a matching tuple and records it under the transaction;
    ``commit`` forgets the log, ``abort`` restores every taken tuple.  Writes
    (``out``) inside a transaction are also logged and withdrawn on abort —
    full PLinda would delay their visibility until commit, but no workload in
    this reproduction reads a sibling's uncommitted output, so early
    visibility with rollback preserves the observable behaviour we need
    (tasks lost mid-flight reappear).
    """

    def __init__(self, env) -> None:
        self.env = env
        self._store = FilterStore(env)
        self._txn_takes: Dict[int, List[Tuple[Any, ...]]] = {}
        self._txn_outs: Dict[int, List[Tuple[Any, ...]]] = {}

    def __len__(self) -> int:
        return len(self._store)

    # -- operations (txn_id None = non-transactional) ------------------------

    def out(self, tup: Sequence[Any], txn_id: Optional[int] = None) -> None:
        """Deposit a tuple (logged under ``txn_id`` if given)."""
        tup = tuple(tup)
        self._store.put_nowait(tup)
        if txn_id is not None:
            self._txn_outs.setdefault(txn_id, []).append(tup)

    def take(self, pattern: Sequence[Any], txn_id: Optional[int] = None):
        """Event yielding a matching tuple (blocking ``in``)."""
        pattern = tuple(pattern)
        event = self._store.get(lambda t: tuple_matches(pattern, t))
        if txn_id is not None:
            event.add_callback(
                lambda ev: self._txn_takes.setdefault(txn_id, []).append(
                    ev.value
                )
                if ev.ok
                else None
            )
        return event

    def read(self, pattern: Sequence[Any]):
        """Event yielding a *copy* of a matching tuple (blocking ``rd``)."""
        pattern = tuple(pattern)
        event = self._store.get(lambda t: tuple_matches(pattern, t))
        # Non-destructive: put the tuple straight back on completion.
        event.add_callback(
            lambda ev: self._store.put_nowait(ev.value) if ev.ok else None
        )
        return event

    def try_read(self, pattern: Sequence[Any]):
        """Non-blocking ``rdp``: a matching tuple or None."""
        pattern = tuple(pattern)
        matches = self._store.peek_matching(
            lambda t: tuple_matches(pattern, t)
        )
        return matches[0] if matches else None

    def count(self, pattern: Sequence[Any]) -> int:
        """How many buffered tuples match ``pattern``."""
        pattern = tuple(pattern)
        return len(
            self._store.peek_matching(lambda t: tuple_matches(pattern, t))
        )

    # -- transactions -----------------------------------------------------

    def begin(self, txn_id: int) -> None:
        """Open transaction ``txn_id``."""
        self._txn_takes.setdefault(txn_id, [])
        self._txn_outs.setdefault(txn_id, [])

    def commit(self, txn_id: int) -> None:
        """Commit ``txn_id``: its takes become permanent."""
        self._txn_takes.pop(txn_id, None)
        self._txn_outs.pop(txn_id, None)

    def abort(self, txn_id: int) -> None:
        """Restore taken tuples; withdraw this transaction's outs."""
        for tup in self._txn_takes.pop(txn_id, []):
            self._store.put_nowait(tup)
        for tup in self._txn_outs.pop(txn_id, []):
            try:
                self._store.items.remove(tup)
            except ValueError:
                pass  # already consumed by someone; genuine PLinda would
                # cascade, but no reproduction workload creates this case

    def open_transactions(self) -> List[int]:
        """Ids of transactions with an undo log."""
        return sorted(set(self._txn_takes) | set(self._txn_outs))
