"""PVM-style parallel virtual machine.

Models the PVM 3 behaviours the paper's mechanisms interact with:

* a **master pvmd** started on the user's machine (by the first console),
  advertising itself in ``~/.pvmd``;
* **slave pvmds** started on other machines *via rsh* — the interception
  point — that register back with the master;
* the master **refuses slave daemons from hosts it did not ask for** (the
  property that forces ResourceBroker's external-module protocol, paper
  §5.3);
* a **console** (``pvm``) that executes ``add``/``delete``/``conf``/``spawn``/
  ``halt`` commands from argv or from ``~/.pvmrc`` — which is exactly how the
  five-line ``pvm_grow`` module script drives it (paper Figure 4);
* a task layer (``spawn``) good enough for self-scheduling master/worker
  demo applications.
"""

from repro.systems.pvm.daemon import pvmd_main
from repro.systems.pvm.console import pvm_console_main
from repro.systems.pvm.lib import (
    PvmError,
    pvm_addhosts,
    pvm_conf,
    pvm_connect,
    pvm_delhosts,
    pvm_halt,
    pvm_spawn,
)
from repro.systems.pvm.modules import (
    pvm_grow_main,
    pvm_halt_module_main,
    pvm_shrink_main,
)

__all__ = [
    "PvmError",
    "install_pvm",
    "pvm_addhosts",
    "pvm_conf",
    "pvm_connect",
    "pvm_console_main",
    "pvm_delhosts",
    "pvm_grow_main",
    "pvm_halt",
    "pvm_halt_module_main",
    "pvm_shrink_main",
    "pvm_spawn",
    "pvmd_main",
]


def install_pvm(directory) -> None:
    """Register every PVM program (daemon, console, broker modules)."""
    directory.register("pvmd", pvmd_main)
    directory.register("pvm", pvm_console_main)
    directory.register("pvm_grow", pvm_grow_main)
    directory.register("pvm_shrink", pvm_shrink_main)
    directory.register("pvm_halt", pvm_halt_module_main)
