"""``pvm`` — the PVM console.

Usage patterns (all exercised by the paper):

* ``pvm``                — start (if needed) the master pvmd, then attach and
  stay until the virtual machine halts.  This is the form submitted through
  the broker: ``app --(module="pvm") pvm`` keeps the job alive for the VM's
  lifetime.
* ``pvm add <host>...``  — the user typing ``pvm> add anylinux``.
* ``pvm delete <host>...`` / ``pvm conf`` / ``pvm halt``.
* a ``~/.pvmrc`` file, executed line-by-line at startup — the hook the
  five-line ``pvm_grow`` module script uses (paper Figure 4).
"""

from __future__ import annotations

from repro.os.errors import ConnectionClosed
from repro.systems.pvm.daemon import PVMD_FILE, PVMD_LOCK
from repro.systems.pvm.lib import (
    PvmError,
    pvm_addhosts,
    pvm_conf,
    pvm_connect,
    pvm_delhosts,
    pvm_halt,
    pvm_spawn,
)

PVMRC = "~/.pvmrc"


def _gather_commands(proc):
    """Commands from argv, then from ~/.pvmrc."""
    commands = []
    if len(proc.argv) > 1:
        commands.append(proc.argv[1:])
    if proc.file_exists(PVMRC):
        for line in proc.machine.fs.read_lines(proc.expand(PVMRC)):
            commands.append(line.split())
    return commands


def pvm_console_main(proc):
    """Program body of the ``pvm`` console (see module docstring)."""
    from repro.obs import context_from_environ

    cal = proc.machine.network.calibration
    ctx = context_from_environ(proc.environ)
    yield proc.sleep(cal.pvm_console)

    # Start the master daemon if there is none (paper: the console
    # "in turn starts the master PVM daemon").  The lock file closes the
    # window in which two concurrent consoles would both boot a master.
    if not proc.file_exists(PVMD_FILE) and not proc.file_exists(PVMD_LOCK):
        proc.write_file(PVMD_LOCK, "starting\n")
        proc.spawn(["pvmd"])
    try:
        conn = yield from pvm_connect(proc)
    except PvmError:
        return 1

    commands = _gather_commands(proc)
    status = 0
    for command in commands:
        verb, args = command[0], command[1:]
        try:
            if verb == "add":
                results = yield from pvm_addhosts(conn, args, ctx=ctx)
                if any(r == "failed" for r in results.values()):
                    status = 1
            elif verb == "delete":
                yield from pvm_delhosts(conn, args)
            elif verb == "conf":
                yield from pvm_conf(conn)
            elif verb == "spawn":
                # spawn <count> <prog> <args...>
                yield from pvm_spawn(conn, args[1:], int(args[0]))
            elif verb == "halt":
                yield from pvm_halt(conn)
                break
            elif verb == "quit":
                break
            else:
                status = 1
        except PvmError:
            return 1

    if commands:
        # Scripted invocation: detach, leaving the daemon running (unless
        # a halt was executed above).
        conn.close()
        return status

    # Interactive/attached form: stay until the virtual machine goes away.
    try:
        yield conn.recv()
    except ConnectionClosed:
        pass
    return 0
