"""``pvmd`` — the PVM daemon (master and slave modes).

Master mode (``pvmd``)
    Listens on an ephemeral port, advertises ``"<host> <port>"`` in
    ``~/.pvmd`` (the simulated analogue of ``/tmp/pvmd.<uid>``), and serves
    console commands and slave registrations.  **A slave daemon connecting
    from a host the master did not explicitly ask for is rejected** — the
    behaviour that makes redirecting PVM's rsh insufficient and forces the
    broker's external-module protocol.

Slave mode (``pvmd -slave <master_host> <master_port>``)
    Started on a remote machine via rsh (by the master during an ``add``).
    Registers with the master, then daemonizes so the rsh returns.  Runs
    tasks on request; halts on master order or master loss.
"""

from __future__ import annotations

from repro.os.errors import (
    ConnectionClosed,
    ConnectionRefused,
    NoSuchHost,
    NoSuchProgram,
)
from repro.os.signals import SIGKILL

#: Home-relative path of the master advertisement file.
PVMD_FILE = "~/.pvmd"

#: Home-relative status file: current virtual-machine membership, one host
#: per line (observable without a console round trip; experiment harnesses
#: poll it to time asynchronous growth).
PVM_HOSTS_FILE = "~/.pvm_hosts"

#: Startup lock: a console that decides to boot the master writes this, the
#: master removes it once its advertisement is up (or on exit).
PVMD_LOCK = "~/.pvmd.lock"


def pvmd_main(proc):
    """Program body: master mode, or ``pvmd -slave <master> <port>``."""
    if len(proc.argv) >= 2 and proc.argv[1] == "-slave":
        return (yield from _slave_main(proc))
    return (yield from _master_main(proc))


# ---------------------------------------------------------------------------
# master
# ---------------------------------------------------------------------------


class _MasterState:
    def __init__(self, proc):
        self.proc = proc
        self.myhost = proc.machine.name
        self.port = 0
        #: hostname -> slave connection (None for the master host itself).
        self.hosts = {self.myhost: None}
        #: hosts we have asked rshd to start a slave on and not yet heard from.
        self.expected = set()
        #: reply routing for in-flight slave spawn requests: host -> Event
        self.spawn_waiters = {}
        self.halted = proc.env.event()

    def publish_hosts(self) -> None:
        self.proc.write_file(
            PVM_HOSTS_FILE, "".join(h + "\n" for h in sorted(self.hosts))
        )


def _master_main(proc):
    state = _MasterState(proc)
    port = proc.machine.network.ephemeral_port(proc.machine)
    listener = proc.listen(port)
    proc.write_file(PVMD_FILE, f"{state.myhost} {port}\n")
    proc.unlink_file(PVMD_LOCK)
    state.port = port
    state.publish_hosts()
    while True:
        accept_ev = listener.accept()
        outcome = yield proc.env.any_of([accept_ev, state.halted])
        if state.halted in outcome:
            break
        conn = accept_ev.value
        proc.thread(_master_serve(proc, state, conn), name="pvmd-session")
    proc.unlink_file(PVMD_FILE)
    proc.unlink_file(PVM_HOSTS_FILE)
    proc.unlink_file(PVMD_LOCK)
    return 0


def _master_serve(proc, state, conn):
    """Dispatch one incoming connection: console or slave."""
    try:
        first = yield conn.recv()
    except ConnectionClosed:
        conn.close()
        return
    kind = first.get("type")
    if kind == "pvmd_hello":
        yield from _master_slave_session(proc, state, conn, first)
    elif kind == "console":
        yield from _master_console_session(proc, state, conn, first)
    else:
        conn.close()


def _master_slave_session(proc, state, conn, hello):
    host = hello.get("host")
    if host not in state.expected:
        # PVM semantics: an unexpected machine may not join the virtual
        # machine.  (Paper: "PVM and LAM programs will refuse to accept
        # processes from machines other than those they attempted to spawn.")
        conn.send({"type": "pvmd_reject", "reason": "unexpected host"})
        conn.close()
        return
    state.expected.discard(host)
    state.hosts[host] = conn
    state.publish_hosts()
    conn.send({"type": "pvmd_ack"})
    try:
        while True:
            msg = yield conn.recv()
            kind = msg.get("type")
            if kind == "pvmd_spawned":
                waiter = state.spawn_waiters.pop(host, None)
                if waiter is not None:
                    waiter.succeed(msg.get("pids", []))
    except ConnectionClosed:
        pass
    # Slave lost (machine revoked, daemon killed, network gone): PVM drops
    # the host from the virtual machine and carries on.
    if state.hosts.get(host) is conn:
        del state.hosts[host]
        state.publish_hosts()
    conn.close()


def _master_console_session(proc, state, conn, first):
    msg = first
    while True:
        if msg.get("type") == "console":
            reply = yield from _console_command(proc, state, msg)
            try:
                conn.send(reply)
            except ConnectionClosed:
                pass
            if msg.get("cmd") == "halt":
                conn.close()
                if not state.halted.triggered:
                    state.halted.succeed()
                return
        try:
            msg = yield conn.recv()
        except ConnectionClosed:
            conn.close()
            return


def _console_command(proc, state, msg):
    cmd = msg.get("cmd")
    if cmd == "conf":
        return {"type": "console_reply", "hosts": sorted(state.hosts)}
    if cmd == "add":
        results = {}
        for host in msg.get("hosts", []):
            results[host] = yield from _add_host(
                proc, state, host, ctx=msg.get("trace")
            )
        return {"type": "console_reply", "results": results}
    if cmd == "delete":
        results = {}
        for host in msg.get("hosts", []):
            results[host] = yield from _delete_host(proc, state, host)
        return {"type": "console_reply", "results": results}
    if cmd == "spawn":
        placed = yield from _spawn_tasks(
            proc, state, msg.get("argv", []), int(msg.get("count", 1))
        )
        return {"type": "console_reply", "tasks": placed}
    if cmd == "halt":
        for host in [h for h in list(state.hosts) if h != state.myhost]:
            yield from _delete_host(proc, state, host)
        return {"type": "console_reply", "halted": True}
    return {"type": "console_reply", "error": f"unknown command {cmd!r}"}


def _add_host(proc, state, host, ctx=None):
    """One ``add <host>``: rsh a slave pvmd onto the target."""
    from repro.obs import context_from_environ, tracer_of

    if host in state.hosts:
        return "already"
    span = tracer_of(proc).start(
        "pvm.add_host",
        parent=ctx or context_from_environ(proc.environ),
        actor=f"pvmd:{state.myhost}",
        host=host,
    )
    state.expected.add(host)
    rsh = proc.spawn(
        ["rsh", host, "pvmd", "-slave", state.myhost, str(state.port)],
        environ=span.environ(),
    )
    code = yield proc.wait(rsh)
    if code != 0:
        state.expected.discard(host)
        span.end(result="failed")
        return "failed"
    # The slave registered (it daemonizes only after our ack).
    result = "ok" if host in state.hosts else "failed"
    span.end(result=result)
    return result


def _delete_host(proc, state, host):
    conn = state.hosts.get(host)
    if host not in state.hosts or conn is None:
        return "no-such-host"
    try:
        conn.send({"type": "pvmd_halt"})
    except ConnectionClosed:
        pass
    # The slave session thread removes the host when the connection drops;
    # wait for that so deletes are observable when we reply.
    deadline = proc.env.timeout(5.0)
    while host in state.hosts and not deadline.processed:
        yield proc.env.any_of([proc.env.timeout(0.01), deadline])
    return "ok" if host not in state.hosts else "timeout"


def _spawn_tasks(proc, state, argv, count):
    """Round-robin ``count`` task processes across the virtual machine."""
    if not argv:
        return []
    placed = []
    hosts = sorted(state.hosts)
    for index in range(count):
        host = hosts[index % len(hosts)]
        if host == state.myhost:
            try:
                task = proc.spawn(list(argv))
                placed.append({"host": host, "pid": task.pid})
            except NoSuchProgram:
                placed.append({"host": host, "pid": None})
            continue
        conn = state.hosts[host]
        waiter = proc.env.event()
        state.spawn_waiters[host] = waiter
        try:
            conn.send({"type": "pvmd_spawn", "argv": list(argv), "count": 1})
        except ConnectionClosed:
            state.spawn_waiters.pop(host, None)
            placed.append({"host": host, "pid": None})
            continue
        outcome = yield proc.env.any_of([waiter, proc.env.timeout(5.0)])
        if waiter in outcome:
            for pid in waiter.value:
                placed.append({"host": host, "pid": pid})
        else:
            state.spawn_waiters.pop(host, None)
            placed.append({"host": host, "pid": None})
    return placed


# ---------------------------------------------------------------------------
# slave
# ---------------------------------------------------------------------------


def _slave_main(proc):
    if len(proc.argv) < 4:
        return 1
    master_host, master_port = proc.argv[2], int(proc.argv[3])
    cal = proc.machine.network.calibration
    yield proc.sleep(cal.pvmd_slave_startup)
    try:
        conn = yield proc.connect(master_host, master_port)
    except (ConnectionRefused, NoSuchHost):
        return 1
    conn.send({"type": "pvmd_hello", "host": proc.machine.name})
    try:
        ack = yield conn.recv()
    except ConnectionClosed:
        return 1
    if ack.get("type") != "pvmd_ack":
        return 1  # rejected: we were not expected
    # Registered; detach so the master's rsh invocation returns.
    proc.daemonize()

    # Fencing (DESIGN.md §16): on a broker-managed machine the slave joins
    # under whatever broker epoch the machine has witnessed.  If the witness
    # rises while we serve — the machine was re-granted under a *newer*
    # broker — this universe's claim on the host is stale: stop accepting
    # work and drop out, exactly as the broker's own daemons fence stale
    # grants.  Zero when no epoch was ever witnessed (no warm standby
    # configured), so the check is inert outside fencing runs.
    from repro.broker.daemon import witnessed_epoch

    session_epoch = witnessed_epoch(proc.machine)

    tasks = []
    try:
        while True:
            msg = yield conn.recv()
            kind = msg.get("type")
            if session_epoch and witnessed_epoch(proc.machine) > session_epoch:
                from repro.obs import metrics_of

                metrics_of(proc).counter("pvm.slaves_fenced").inc()
                break
            if kind == "pvmd_spawn":
                pids = []
                for _ in range(int(msg.get("count", 1))):
                    try:
                        task = proc.spawn(list(msg["argv"]))
                        tasks.append(task)
                        pids.append(task.pid)
                    except NoSuchProgram:
                        pids.append(None)
                conn.send({"type": "pvmd_spawned", "pids": pids})
            elif kind == "pvmd_halt":
                break
    except ConnectionClosed:
        pass
    for task in tasks:
        if task.is_alive:
            task.kill_tree(SIGKILL, sender=proc)
    conn.close()
    return 0
