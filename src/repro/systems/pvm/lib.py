"""libpvm — helpers for program bodies that talk to the local master pvmd.

These are generator helpers (``yield from`` them inside a program body); they
model the subset of the PVM library the paper mentions: ``pvm_addhosts()``
(the call that "ultimately results in a rsh command"), plus configuration,
deletion, spawning and halting.
"""

from __future__ import annotations

from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.systems.pvm.daemon import PVMD_FILE


class PvmError(Exception):
    """No master daemon, protocol failure, or command error."""


def pvm_connect(proc, retries: int = 40, retry_delay: float = 0.05):
    """Connect to the local master pvmd (waiting briefly for it to boot).

    Returns the console connection; raises :class:`PvmError` if no daemon
    advertisement appears.
    """
    for _ in range(retries):
        if proc.file_exists(PVMD_FILE):
            host, port = proc.read_file(PVMD_FILE).split()
            try:
                conn = yield proc.connect(host, int(port))
                return conn
            except (ConnectionRefused, NoSuchHost):
                pass  # stale advertisement; keep waiting
        yield proc.sleep(retry_delay)
    raise PvmError("no pvmd running (missing ~/.pvmd)")


def _command(conn, payload):
    conn.send({"type": "console", **payload})
    try:
        reply = yield conn.recv()
    except ConnectionClosed:
        raise PvmError("pvmd connection lost") from None
    if reply.get("type") != "console_reply":
        raise PvmError(f"unexpected reply {reply!r}")
    return reply


def pvm_addhosts(conn, hosts, ctx=None):
    """``pvm_addhosts()``: returns {host: "ok"|"failed"|"already"}.

    ``ctx`` is an optional span context (see :mod:`repro.obs.spans`) that
    rides the console command so the daemon's per-host add spans stay in the
    caller's trace.
    """
    payload = {"cmd": "add", "hosts": list(hosts)}
    if ctx:
        payload["trace"] = dict(ctx)
    reply = yield from _command(conn, payload)
    return reply.get("results", {})


def pvm_delhosts(conn, hosts):
    """``pvm_delhosts()``: gracefully remove hosts from the VM."""
    reply = yield from _command(conn, {"cmd": "delete", "hosts": list(hosts)})
    return reply.get("results", {})


def pvm_conf(conn):
    """Current virtual-machine host list."""
    reply = yield from _command(conn, {"cmd": "conf"})
    return reply.get("hosts", [])


def pvm_spawn(conn, argv, count):
    """Start ``count`` task processes round-robin across the VM."""
    reply = yield from _command(
        conn, {"cmd": "spawn", "argv": list(argv), "count": count}
    )
    return reply.get("tasks", [])


def pvm_halt(conn):
    """Stop the whole virtual machine."""
    reply = yield from _command(conn, {"cmd": "halt"})
    return bool(reply.get("halted"))
