"""The PVM external modules — user scripts, not broker code (paper Fig. 4).

``pvm_grow`` is a direct transliteration of the paper's five-line shell
script::

    #!/bin/bash
    echo add $1  >> $HOME/.pvmrc
    echo quit    >> $HOME/.pvmrc
    pvm > /dev/null
    rm $HOME/.pvmrc

"Notice how this is a simple script that simulates users' actions."  The
console executes the ``.pvmrc``, asking the master daemon to add the real
host the broker chose; the master's resulting rsh carries a real, expected
name, so phase II proceeds like the default case.
"""

from __future__ import annotations

from repro.systems.pvm.console import PVMRC


def pvm_grow_main(proc):
    """``pvm_grow <host>``."""
    if len(proc.argv) < 2:
        return 1
    host = proc.argv[1]
    proc.append_file(PVMRC, f"add {host}\n")
    proc.append_file(PVMRC, "quit\n")
    console = proc.spawn(["pvm"])
    code = yield proc.wait(console)
    proc.unlink_file(PVMRC)
    return code


def pvm_shrink_main(proc):
    """``pvm_shrink <host>``: console-driven graceful delete."""
    if len(proc.argv) < 2:
        return 1
    host = proc.argv[1]
    proc.append_file(PVMRC, f"delete {host}\n")
    proc.append_file(PVMRC, "quit\n")
    console = proc.spawn(["pvm"])
    code = yield proc.wait(console)
    proc.unlink_file(PVMRC)
    return code


def pvm_halt_module_main(proc):
    """``pvm_halt``: stop the whole virtual machine."""
    console = proc.spawn(["pvm", "halt"])
    code = yield proc.wait(console)
    return code
