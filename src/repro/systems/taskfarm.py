"""Self-scheduling master/worker applications over PVM and LAM.

The paper's opening sentence grounds "adaptive" in exactly this application
class: "Most master-slave PVM programs [and] self-scheduling MPI programs
... are adaptive."  This module provides that workload:

* ``pvm_farm <tasks> <cpu_per_task>`` — a PVM application: spawns one
  ``farmworker`` task per virtual-machine host (via the pvmd task layer) and
  self-schedules the task bag over them;
* ``mpi_farm <tasks> <cpu_per_task>`` — the same program shaped as an MPI
  job on a LAM universe (spawned through ``mpirun``);
* ``mpirun <count> <prog> [args...]`` — the LAM launcher: places ``count``
  processes round-robin over the universe;
* ``farmworker <master_host> <port>`` — the system-agnostic worker: asks
  for work, computes, repeats; dies without ceremony.

Adaptivity contract: a worker lost mid-task (machine revoked, daemon
killed) simply causes the master to requeue the task — the farm finishes on
whatever workers remain.
"""

from __future__ import annotations

from collections import deque

from repro.os.errors import ConnectionClosed, ConnectionRefused, NoSuchHost
from repro.sim.process import Interrupt
from repro.systems.pvm.lib import PvmError, pvm_conf, pvm_connect, pvm_spawn


# ---------------------------------------------------------------------------
# the shared farm master
# ---------------------------------------------------------------------------


class _Farm:
    def __init__(self, n_tasks: int, cpu_per_task: float) -> None:
        self.cpu_per_task = cpu_per_task
        self.bag = deque(range(n_tasks))
        self.done = set()
        self.n_tasks = n_tasks
        self.finished = None  # Event, set by the master body

    def next_task(self):
        return self.bag.popleft() if self.bag else None

    def complete(self, task: int) -> None:
        self.done.add(task)
        if len(self.done) >= self.n_tasks and not self.finished.triggered:
            self.finished.succeed()

    def requeue(self, task: int) -> None:
        if task not in self.done:
            self.bag.append(task)


def _farm_master(proc, spawner):
    """Common master body; ``spawner(proc, worker_argv)`` places workers."""
    if len(proc.argv) < 3:
        return 1
    n_tasks = int(proc.argv[1])
    cpu_per_task = float(proc.argv[2])
    if n_tasks <= 0:
        return 1

    farm = _Farm(n_tasks, cpu_per_task)
    farm.finished = proc.env.event()
    port = proc.machine.network.ephemeral_port(proc.machine)
    listener = proc.listen(port)

    worker_argv = ["farmworker", proc.machine.name, str(port)]
    placed = yield from spawner(proc, worker_argv)
    if placed <= 0:
        return 1

    def accept_loop():
        while True:
            try:
                conn = yield listener.accept()
            except ConnectionClosed:
                return
            proc.thread(session(conn), name="farm-session")

    def session(conn):
        current = None
        try:
            while True:
                msg = yield conn.recv()
                if msg.get("type") != "ready":
                    break
                if current is not None:
                    farm.complete(current)
                    current = None
                task = farm.next_task()
                if task is None:
                    if farm.finished.triggered or not _outstanding():
                        conn.send({"type": "done"})
                        break
                    # The bag is empty but peers may still fail; stall this
                    # worker briefly rather than dismissing it.
                    yield proc.sleep(0.2)
                    conn.send({"type": "task", "id": -1, "work": 0.0})
                    continue
                current = task
                conn.send(
                    {"type": "task", "id": task, "work": farm.cpu_per_task}
                )
        except ConnectionClosed:
            pass
        if current is not None:
            farm.requeue(current)  # worker died mid-task: redo elsewhere
        conn.close()

    def _outstanding():
        return len(farm.done) < farm.n_tasks

    proc.thread(accept_loop(), name="farm-accept")
    yield farm.finished
    return 0


def farmworker_main(proc):
    """``farmworker <master_host> <port>``: ask, compute, repeat."""
    if len(proc.argv) < 3:
        return 1
    try:
        conn = yield proc.connect(proc.argv[1], int(proc.argv[2]))
    except (ConnectionRefused, NoSuchHost):
        return 1
    except Interrupt:
        return 0
    try:
        while True:
            conn.send({"type": "ready"})
            msg = yield conn.recv()
            if msg.get("type") != "task":
                break
            work = float(msg.get("work", 0.0))
            if work > 0:
                yield proc.compute(work, tag="farm-task")
    except (ConnectionClosed, Interrupt):
        return 0
    conn.close()
    return 0


# ---------------------------------------------------------------------------
# PVM flavour
# ---------------------------------------------------------------------------


def _pvm_spawner(proc, worker_argv):
    """One worker task per current virtual-machine host."""
    try:
        conn = yield from pvm_connect(proc)
        hosts = yield from pvm_conf(conn)
        placed = yield from pvm_spawn(conn, worker_argv, count=len(hosts))
    except PvmError:
        return 0
    conn.close()
    return sum(1 for p in placed if p.get("pid") is not None)


def pvm_farm_main(proc):
    """``pvm_farm <tasks> <cpu_per_task>`` over the running PVM."""
    code = yield from _farm_master(proc, _pvm_spawner)
    return code


# ---------------------------------------------------------------------------
# LAM / MPI flavour
# ---------------------------------------------------------------------------


def _lam_universe(proc):
    """(origin_conn, node list) of the running universe."""
    from repro.systems.lam.tools import LamError, _connect_origin, _tool

    conn = yield from _connect_origin(proc)
    reply = yield from _tool(conn, {"cmd": "nodes"})
    return conn, reply.get("nodes", [])


def mpirun_main(proc):
    """``mpirun <count> <prog> [args...]``: place tasks over the universe."""
    if len(proc.argv) < 3:
        return 1
    count = int(proc.argv[1])
    task_argv = proc.argv[2:]
    from repro.systems.lam.tools import LamError

    try:
        conn, _nodes = yield from _lam_universe(proc)
        from repro.systems.lam.tools import _tool

        reply = yield from _tool(
            conn, {"cmd": "spawn", "argv": task_argv, "count": count}
        )
    except LamError:
        return 1
    conn.close()
    placed = reply.get("tasks", [])
    return 0 if sum(1 for p in placed if p.get("pid")) == count else 1


def _lam_spawner(proc, worker_argv):
    """One worker per universe node, via the mpirun machinery."""
    from repro.systems.lam.tools import LamError, _tool

    try:
        conn, nodes = yield from _lam_universe(proc)
        reply = yield from _tool(
            conn,
            {"cmd": "spawn", "argv": worker_argv, "count": len(nodes)},
        )
    except LamError:
        return 0
    conn.close()
    placed = reply.get("tasks", [])
    return sum(1 for p in placed if p.get("pid") is not None)


def mpi_farm_main(proc):
    """``mpi_farm <tasks> <cpu_per_task>`` over the running LAM universe."""
    code = yield from _farm_master(proc, _lam_spawner)
    return code


def install_taskfarm(directory) -> None:
    """Register the farm programs and mpirun in ``directory``."""
    directory.register("farmworker", farmworker_main)
    directory.register("pvm_farm", pvm_farm_main)
    directory.register("mpi_farm", mpi_farm_main)
    directory.register("mpirun", mpirun_main)
