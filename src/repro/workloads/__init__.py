"""Workload programs and arrival generators used by the experiments."""

from repro.workloads.programs import (
    compute_main,
    gracespin_main,
    greedy_main,
    install_churn,
    install_workloads,
    loop_main,
    null_main,
    spin_main,
)
from repro.workloads.arrivals import (
    ArrivalTrace,
    SequentialJobTrace,
    diurnal_owner_windows,
    diurnal_rate,
    periodic_sequential_jobs,
    replay_owner_windows,
    trace_arrivals,
)

__all__ = [
    "ArrivalTrace",
    "SequentialJobTrace",
    "compute_main",
    "diurnal_owner_windows",
    "diurnal_rate",
    "gracespin_main",
    "greedy_main",
    "install_churn",
    "install_workloads",
    "loop_main",
    "null_main",
    "periodic_sequential_jobs",
    "replay_owner_windows",
    "spin_main",
    "trace_arrivals",
]
