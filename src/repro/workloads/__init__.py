"""Workload programs and arrival generators used by the experiments."""

from repro.workloads.programs import (
    compute_main,
    gracespin_main,
    greedy_main,
    install_churn,
    install_workloads,
    loop_main,
    null_main,
    spin_main,
)
from repro.workloads.arrivals import SequentialJobTrace, periodic_sequential_jobs

__all__ = [
    "SequentialJobTrace",
    "compute_main",
    "gracespin_main",
    "greedy_main",
    "install_churn",
    "install_workloads",
    "loop_main",
    "null_main",
    "periodic_sequential_jobs",
    "spin_main",
]
