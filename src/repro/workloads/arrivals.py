"""Arrival traces for the utilization experiment (paper §6.2, final).

The paper's setting: "Every 100 seconds, a script started a sequential
program that ran for t minutes, where t was chosen uniformly from the
interval [1,10]."  :func:`periodic_sequential_jobs` reproduces exactly that
trace; durations come from a named RNG stream so the trace is stable across
simulator changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class SequentialJobTrace:
    """A generated arrival trace: one (arrival_time, cpu_seconds) per job."""

    period: float
    horizon: float
    arrivals: List[float] = field(default_factory=list)
    durations: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)

    def jobs(self):
        """Iterate (arrival_time, cpu_seconds) pairs."""
        return zip(self.arrivals, self.durations)


def periodic_sequential_jobs(
    env,
    period: float = 100.0,
    horizon: float = 5 * 3600.0,
    min_minutes: float = 1.0,
    max_minutes: float = 10.0,
    stream: str = "utilization-arrivals",
) -> SequentialJobTrace:
    """Build the paper's §6.2 trace: arrivals every ``period`` seconds over
    ``horizon``, each with duration uniform in [min, max] minutes."""
    if period <= 0:
        raise ValueError("period must be positive")
    if max_minutes < min_minutes:
        raise ValueError("max_minutes < min_minutes")
    rng = env.rng.stream(stream)
    trace = SequentialJobTrace(period=period, horizon=horizon)
    t = period
    while t < horizon:
        trace.arrivals.append(t)
        trace.durations.append(
            60.0 * float(rng.uniform(min_minutes, max_minutes))
        )
        t += period
    return trace
