"""Arrival traces for the utilization and soak experiments.

Two families of generators:

* :func:`periodic_sequential_jobs` — the paper's §6.2 setting, verbatim:
  "Every 100 seconds, a script started a sequential program that ran for t
  minutes, where t was chosen uniformly from the interval [1,10]."
* :func:`trace_arrivals` / :func:`diurnal_owner_windows` — the service-mode
  soak workload: a large Poisson arrival trace whose rate follows a diurnal
  cosine curve (quiet nights, busy days compressed to a simulated "day"),
  plus per-owner console-activity windows on private machines so supply
  breathes against demand the way the paper's department network does.

Every random draw comes from a named RNG stream of the simulation's
:class:`~repro.sim.rng.SimRandom`, so a trace is a pure function of the run
seed — stable across simulator changes and byte-identical across replays.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass
class SequentialJobTrace:
    """A generated arrival trace: one (arrival_time, cpu_seconds) per job."""

    period: float
    horizon: float
    arrivals: List[float] = field(default_factory=list)
    durations: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)

    def jobs(self):
        """Iterate (arrival_time, cpu_seconds) pairs."""
        return zip(self.arrivals, self.durations)


def periodic_sequential_jobs(
    env,
    period: float = 100.0,
    horizon: float = 5 * 3600.0,
    min_minutes: float = 1.0,
    max_minutes: float = 10.0,
    stream: str = "utilization-arrivals",
) -> SequentialJobTrace:
    """Build the paper's §6.2 trace: arrivals every ``period`` seconds over
    ``horizon``, each with duration uniform in [min, max] minutes."""
    if period <= 0:
        raise ValueError("period must be positive")
    if max_minutes < min_minutes:
        raise ValueError("max_minutes < min_minutes")
    rng = env.rng.stream(stream)
    trace = SequentialJobTrace(period=period, horizon=horizon)
    t = period
    while t < horizon:
        trace.arrivals.append(t)
        trace.durations.append(
            60.0 * float(rng.uniform(min_minutes, max_minutes))
        )
        t += period
    return trace


@dataclass
class ArrivalTrace:
    """A soak arrival trace: one (arrival_time, cpu_seconds) per submission.

    ``rate(t)`` is recorded so post-mortems can plot demand against the
    grants the broker actually made."""

    horizon: float
    day: float
    arrivals: List[float] = field(default_factory=list)
    durations: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)

    def jobs(self):
        """Iterate (arrival_time, cpu_seconds) pairs."""
        return zip(self.arrivals, self.durations)


def diurnal_rate(t: float, base_rate: float, peak_rate: float, day: float) -> float:
    """Instantaneous arrival rate (jobs/second) at simulated time ``t``.

    A raised cosine over one ``day``: the trough (``base_rate``) at t=0 —
    "midnight" — rising to ``peak_rate`` at midday.  Deliberately smooth:
    the soak is probing sustained churn, not step responses."""
    phase = (t % day) / day  # 0 at midnight, 0.5 at midday
    blend = 0.5 - 0.5 * math.cos(2.0 * math.pi * phase)
    return base_rate + (peak_rate - base_rate) * blend


def trace_arrivals(
    env,
    horizon: float,
    base_rate: float = 0.2,
    peak_rate: float = 2.0,
    day: float = 600.0,
    min_seconds: float = 0.5,
    max_seconds: float = 6.0,
    max_jobs: int = 0,
    stream: str = "soak-arrivals",
) -> ArrivalTrace:
    """Draw a Poisson arrival trace whose rate follows the diurnal curve.

    Standard thinning: candidate arrivals are drawn from a homogeneous
    Poisson process at ``peak_rate`` and each is kept with probability
    ``rate(t) / peak_rate``.  Durations are uniform in
    [``min_seconds``, ``max_seconds``].  ``max_jobs`` (when positive) caps
    the trace length — the soak uses it to hit an exact submission count
    regardless of horizon rounding."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if peak_rate <= 0 or base_rate < 0 or base_rate > peak_rate:
        raise ValueError("need 0 <= base_rate <= peak_rate, peak_rate > 0")
    if max_seconds < min_seconds:
        raise ValueError("max_seconds < min_seconds")
    rng = env.rng.stream(stream)
    trace = ArrivalTrace(horizon=horizon, day=day)
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak_rate))
        if t >= horizon:
            break
        keep = diurnal_rate(t, base_rate, peak_rate, day) / peak_rate
        if float(rng.uniform(0.0, 1.0)) >= keep:
            continue
        trace.arrivals.append(t)
        trace.durations.append(
            float(rng.uniform(min_seconds, max_seconds))
        )
        if max_jobs and len(trace.arrivals) >= max_jobs:
            break
    return trace


def diurnal_owner_windows(
    env,
    hosts: Sequence[str],
    horizon: float,
    day: float = 600.0,
    workday: Tuple[float, float] = (0.3, 0.7),
    jitter: float = 0.05,
    stream: str = "soak-owners",
) -> List[Tuple[str, List[Tuple[float, float]]]]:
    """Per-host console-activity windows over ``horizon``.

    Each owner sits down around ``workday[0]`` of every day and leaves
    around ``workday[1]`` (fractions of ``day``), with per-host-per-day
    jitter — so private machines leave the broker's pool during "office
    hours" and return at night, forcing real revocations and re-grants
    under the soak's arrival load.  Returns ``[(host, [(on, off), ...])]``
    sorted by host."""
    rng = env.rng.stream(stream)
    out: List[Tuple[str, List[Tuple[float, float]]]] = []
    days = int(horizon // day) + 1
    for host in sorted(hosts):
        windows: List[Tuple[float, float]] = []
        for d in range(days):
            start = (d + workday[0] + float(rng.uniform(-jitter, jitter))) * day
            end = (d + workday[1] + float(rng.uniform(-jitter, jitter))) * day
            if start >= horizon:
                break
            windows.append((max(0.0, start), min(end, horizon)))
        out.append((host, windows))
    return out


def replay_owner_windows(env, machine, windows: Sequence[Tuple[float, float]]):
    """A sim process replaying owner presence windows on one machine.

    The same signal :class:`~repro.cluster.users.OwnerActivity` drives —
    ``console_active`` plus the login set — but from a precomputed trace
    instead of exponential holding times.  Drive with
    ``env.process(replay_owner_windows(env, machine, wins))``.  Windows on
    a machine that is down when they open are skipped (a crashed host's
    owner has nothing to type at)."""
    for on, off in windows:
        if on > env.now:
            yield env.timeout(on - env.now)
        if machine.up:
            machine.console_active = True
            if machine.owner is not None:
                machine.logged_in.add(machine.owner)
        if off > env.now:
            yield env.timeout(off - env.now)
        if machine.up:
            machine.console_active = False
            if machine.owner is not None:
                machine.logged_in.discard(machine.owner)
