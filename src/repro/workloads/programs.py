"""The paper's micro-benchmark programs and generic compute jobs.

* ``null`` — "a C program with an empty main() function" (paper §6.1); it
  starts and immediately exits.  Used to measure pure protocol overhead.
* ``loop`` — "a C program with a tight loop"; a fixed CPU burst whose nominal
  duration comes from :class:`~repro.calibration.Calibration.loop_work`.
* ``compute <cpu_seconds>`` — parameterized CPU burst for workload traces.
* ``spin`` — runs forever in 1-second bursts; killed by revocation tests.
* ``retrywork <cpu_seconds>`` — a fault-tolerant sequential job: runs
  ``compute`` on a brokered machine via ``rsh anylinux`` and simply resubmits
  on failure, the classic retry-until-success wrapper script.  Used by the
  chaos experiment, where granted machines really do crash mid-burst.
"""

from __future__ import annotations


def null_main(proc):
    """Empty main: exit 0 immediately."""
    return 0
    yield  # pragma: no cover - marks this function as a generator


def loop_main(proc):
    """Fixed tight-loop burst (~6.5 nominal seconds on an idle machine)."""
    calibration = proc.machine.network.calibration
    yield proc.compute(calibration.loop_work, tag="loop")
    return 0


def compute_main(proc):
    """``compute <cpu_seconds>``: one CPU burst of the requested size."""
    if len(proc.argv) < 2:
        return 1
    try:
        work = float(proc.argv[1])
    except ValueError:
        return 1
    yield proc.compute(work, tag="compute")
    return 0


def spin_main(proc):
    """CPU hog that runs until signalled."""
    while True:
        yield proc.compute(1.0, tag="spin")


def retrywork_main(proc):
    """``retrywork <cpu_seconds>``: brokered compute, retried until done.

    Under the broker the inner ``rsh`` resolves to rsh', so every attempt
    asks for a fresh machine; a crash of the granted machine surfaces as a
    failed rsh, and the wrapper just tries again.
    """
    if len(proc.argv) < 2:
        return 1
    try:
        work = float(proc.argv[1])
    except ValueError:
        return 1
    while True:
        rsh = proc.spawn(["rsh", "anylinux", "compute", f"{work:g}"])
        code = yield proc.wait(rsh)
        if code == 0:
            return 0
        yield proc.sleep(0.5)


def gracespin_main(proc):
    """Adaptive worker: endless 1-second bursts, graceful SIGTERM shutdown.

    On interruption (revocation) it takes the calibrated adaptive-shutdown
    time before exiting — the dominant term of the paper's ~1 s reallocation.
    """
    from repro.sim.process import Interrupt

    cal = proc.machine.network.calibration
    while True:
        try:
            yield proc.compute(1.0, tag="gracespin")
        except Interrupt:
            yield proc.sleep(cal.adaptive_shutdown)
            return 0


def greedy_main(proc):
    """``greedy <k>``: adaptive master holding ``k`` remote workers.

    Tries to keep ``k`` ``gracespin`` workers alive via ``rsh anylinux``,
    re-acquiring replacements when they die — the minimal stand-in for an
    adaptive runtime like Calypso.  Never exits on its own.
    """
    want = int(proc.argv[1]) if len(proc.argv) > 1 else 1

    def runner(slot):
        while True:
            child = proc.spawn(["rsh", "anylinux", "gracespin"])
            yield proc.wait(child)

    for slot in range(want):
        proc.thread(runner(slot), name=f"greedy-slot{slot}")
    while True:
        yield proc.sleep(3600.0)


def install_churn(directory) -> None:
    """Register the greedy/gracespin churn pair (idempotent).

    This is the workload behind the scale benchmarks and the sweep runner:
    one greedy master that expands into every idle machine, plus whatever
    sequential arrivals the harness injects to force preemption churn.
    """
    if "gracespin" not in directory:
        directory.register("gracespin", gracespin_main)
        directory.register("greedy", greedy_main)


def install_workloads(directory) -> None:
    """Register the workload programs in a program directory."""
    directory.register("null", null_main)
    directory.register("loop", loop_main)
    directory.register("compute", compute_main)
    directory.register("spin", spin_main)
    directory.register("retrywork", retrywork_main)
