"""Shared fixtures for broker integration tests."""

import pytest

from repro.cluster import Cluster, ClusterSpec, MachineSpec


@pytest.fixture
def cluster4():
    """4 public machines, broker on n00."""
    cluster = Cluster(ClusterSpec.uniform(4))
    cluster.start_broker()
    cluster.broker.wait_ready()
    return cluster


@pytest.fixture
def mixed_cluster():
    """2 public + 2 private machines (owned by ann and bob), broker on n00."""
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="n00"),
            MachineSpec(name="n01"),
            MachineSpec(name="p00", private_owner="ann"),
            MachineSpec(name="p01", private_owner="bob"),
        ]
    )
    cluster = Cluster(spec)
    cluster.start_broker()
    cluster.broker.wait_ready()
    return cluster


def install_greedy(cluster):
    """Register ``greedy <k>``: an adaptive master that tries to hold ``k``
    remote ``gracespin`` workers, re-acquiring replacements when they die
    (the minimal stand-in for an adaptive runtime like Calypso).  Workers
    shut down gracefully on SIGTERM, taking the calibrated adaptive-shutdown
    time — the dominant term of the paper's ~1 s reallocation."""
    from repro.sim.process import Interrupt

    if "gracespin" not in cluster.system_bin:

        @cluster.system_bin.register("gracespin")
        def gracespin(proc):
            cal = proc.machine.network.calibration
            while True:
                try:
                    yield proc.compute(1.0, tag="gracespin")
                except Interrupt:
                    yield proc.sleep(cal.adaptive_shutdown)
                    return 0

        @cluster.system_bin.register("greedy")
        def greedy(proc):
            want = int(proc.argv[1]) if len(proc.argv) > 1 else 1

            def runner(slot):
                while True:
                    child = proc.spawn(["rsh", "anylinux", "gracespin"])
                    yield proc.wait(child)

            for slot in range(want):
                proc.thread(runner(slot), name=f"greedy-slot{slot}")
            while True:
                yield proc.sleep(3600.0)
