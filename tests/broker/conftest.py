"""Shared fixtures for broker integration tests."""

import pytest

from repro.cluster import Cluster, ClusterSpec, MachineSpec


@pytest.fixture
def cluster4():
    """4 public machines, broker on n00."""
    cluster = Cluster(ClusterSpec.uniform(4))
    cluster.start_broker()
    cluster.broker.wait_ready()
    return cluster


@pytest.fixture
def mixed_cluster():
    """2 public + 2 private machines (owned by ann and bob), broker on n00."""
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="n00"),
            MachineSpec(name="n01"),
            MachineSpec(name="p00", private_owner="ann"),
            MachineSpec(name="p01", private_owner="bob"),
        ]
    )
    cluster = Cluster(spec)
    cluster.start_broker()
    cluster.broker.wait_ready()
    return cluster


def install_greedy(cluster):
    """Register the greedy/gracespin churn pair (now lives in
    :mod:`repro.workloads.programs`; kept as a shim for the broker tests)."""
    from repro.workloads import install_churn

    install_churn(cluster.system_bin)
