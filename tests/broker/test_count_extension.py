"""The RSL count extension: pre-sizing module jobs at submission."""

import pytest

from repro.cluster import Cluster, ClusterSpec


@pytest.fixture
def cluster():
    c = Cluster(ClusterSpec.uniform(5))
    c.start_broker()
    c.broker.wait_ready()
    return c


def vm_hosts(cluster, uid):
    fs = cluster.machine("n00").fs
    path = f"/home/{uid}/.pvm_hosts"
    return fs.read_lines(path) if fs.exists(path) else []


def test_pvm_job_reaches_requested_count_at_startup(cluster):
    svc = cluster.broker
    job = svc.submit(
        "n00",
        ["pvm"],
        rsl='+(count>=3)(arch="i686linux")(module="pvm")',
        uid="pat",
    )
    deadline = cluster.now + 30.0
    while cluster.now < deadline and len(vm_hosts(cluster, "pat")) < 3:
        cluster.env.run(until=cluster.now + 0.5)
    # The virtual machine grew to three hosts with no console interaction.
    assert len(vm_hosts(cluster, "pat")) == 3
    record = job.job_record()
    assert len(svc.holdings()[record.jobid]) == 2  # master host + 2 granted
    cluster.assert_no_crashes()


def test_count_one_requests_nothing(cluster):
    svc = cluster.broker
    svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    cluster.env.run(until=cluster.now + 6.0)
    assert vm_hosts(cluster, "pat") == ["n00"]
    assert svc.events_of("machine_request") == []


def test_count_beyond_cluster_takes_what_exists(cluster):
    svc = cluster.broker
    svc.submit(
        "n00", ["pvm"], rsl='+(count>=10)(module="pvm")', uid="pat"
    )
    deadline = cluster.now + 40.0
    while cluster.now < deadline and len(vm_hosts(cluster, "pat")) < 5:
        cluster.env.run(until=cluster.now + 0.5)
    # All 5 machines joined; the remaining requests stay queued.
    assert len(vm_hosts(cluster, "pat")) == 5
    assert len(svc.state.pending) == 5  # 9 asked, 4 granted
    cluster.assert_no_crashes()
