"""Integration tests: the broker's default (redirection) path."""

import pytest

from tests.broker.conftest import install_greedy


def test_submit_null_anylinux(cluster4):
    svc = cluster4.broker
    t0 = cluster4.now
    handle = svc.submit("n00", ["rsh", "anylinux", "null"])
    assert handle.wait() == 0
    elapsed = cluster4.now - t0
    # Paper Table 1: ~0.6 s for rsh' anylinux null.
    assert 0.45 <= elapsed <= 0.85
    cluster4.assert_no_crashes()


def test_symbolic_request_lands_on_remote_idle_machine(cluster4):
    svc = cluster4.broker
    seen = {}

    @cluster4.system_bin.register("whereami")
    def whereami(proc):
        seen["host"] = proc.machine.name
        yield proc.sleep(0)

    handle = svc.submit("n00", ["rsh", "anylinux", "whereami"])
    handle.wait()
    assert seen["host"] in {"n00", "n01", "n02", "n03"}
    cluster4.assert_no_crashes()


def test_remote_process_runs_under_subapp_as_user(cluster4):
    svc = cluster4.broker
    seen = {}

    @cluster4.system_bin.register("introspect")
    def introspect(proc):
        seen["uid"] = proc.uid
        seen["parent"] = proc.parent.argv[0] if proc.parent else None
        yield proc.sleep(0)

    handle = svc.submit("n00", ["rsh", "anylinux", "introspect"], uid="erin")
    handle.wait()
    assert seen["uid"] == "erin"
    assert seen["parent"] == "subapp"


def test_passthrough_real_hostname_not_wrapped(cluster4):
    svc = cluster4.broker
    seen = {}

    @cluster4.system_bin.register("introspect")
    def introspect(proc):
        seen["parent"] = proc.parent.argv[0] if proc.parent else None
        yield proc.sleep(0)

    handle = svc.submit("n00", ["rsh", "n02", "introspect"])
    assert handle.wait() == 0
    # Explicitly named host: no subapp interposed (paper: such rsh commands
    # "are allowed to proceed").
    assert seen["parent"] == "rshd"
    # And the broker never saw a machine request.
    assert svc.events_of("machine_request") == []


def test_rsh_prime_without_app_env_is_passthrough(cluster4):
    # A user not using the broker runs rsh directly; rsh resolves to rsh'
    # (it shadows the system rsh) but must behave identically.
    proc = cluster4.run_command("n00", ["rsh", "n01", "null"])
    cluster4.env.run(until=proc.terminated)
    assert proc.exit_code == 0
    assert cluster4.broker.events_of("machine_request") == []


def test_job_done_frees_allocations(cluster4):
    svc = cluster4.broker
    handle = svc.submit("n00", ["rsh", "anylinux", "null"])
    handle.wait()
    cluster4.env.run(until=cluster4.now + 1.0)
    assert svc.holdings() == {}
    job = handle.job_record()
    assert job is not None and job.done


def test_each_request_gets_distinct_machine(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "3"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    holdings = svc.holdings()[job.jobid]
    assert len(holdings) == 3
    assert len(set(holdings)) == 3
    cluster4.assert_no_crashes()


def test_adaptive_job_expansion_is_elastic_not_firm(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    allocated = [
        m.allocation
        for m in svc.state.machines.values()
        if m.allocation is not None
    ]
    assert allocated and all(not a.firm for a in allocated)


def test_elastic_requests_beyond_cluster_wait(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "10"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 8.0)
    job = handle.job_record()
    # Only 3 machines are grantable (the home host n00 is excluded); the
    # rest of the requests stay pending.
    assert len(svc.holdings()[job.jobid]) == 3
    assert len(svc.state.pending) == 7
    cluster4.assert_no_crashes()


def test_sequential_job_exit_code_propagates(cluster4):
    svc = cluster4.broker

    @cluster4.system_bin.register("fail7")
    def fail7(proc):
        yield proc.sleep(0)
        return 7

    # rsh collapses remote failure to 1; the app reports its child's code.
    handle = svc.submit("n00", ["rsh", "anylinux", "fail7"])
    assert handle.wait() == 1


def test_broker_records_submission_metadata(cluster4):
    svc = cluster4.broker
    handle = svc.submit(
        "n01", ["rsh", "anylinux", "null"], rsl="+(adaptive)", uid="zoe"
    )
    handle.wait()
    job = handle.job_record()
    assert job.user == "zoe"
    assert job.home_host == "n01"
    assert job.adaptive
    assert job.module is None
