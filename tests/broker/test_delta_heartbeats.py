"""Delta heartbeats: daemons ship full snapshots only when something moved.

The monitoring daemon keeps its report *cadence* (one message per
``daemon_report_interval``, so liveness detection and event counts are
untouched) but sends a compact beacon whenever its change probe — cpu
load, process-table version, console state, login count — is unchanged
since the last full snapshot.  Every ``daemon_full_report_every``-th
report is forced full so a broker whose record went stale through lost
messages re-syncs within a bounded window.
"""

import json

from repro.broker import protocol
from repro.os.signals import SIGKILL
from tests.broker.conftest import install_greedy
from tests.broker.test_liveness import _rbdaemons


def _counter(cluster, name):
    return cluster.broker.metrics.counter(name).value


def test_steady_cluster_sends_mostly_beacons(cluster4):
    cal = cluster4.network.calibration
    cluster4.env.run(until=cluster4.now + 40.0)
    fulls = _counter(cluster4, "rbdaemon.full_reports")
    beacons = _counter(cluster4, "rbdaemon.beacons")
    reports = _counter(cluster4, "rbdaemon.reports")
    assert reports == fulls + beacons
    assert beacons > fulls  # an idle machine mostly beacons
    # The forced-full cadence holds: at most one full per full_every
    # reports per machine (plus the initial snapshot each).
    machines = len(cluster4.broker.managed_hosts)
    assert fulls <= reports / cal.daemon_full_report_every + machines
    # And the wire savings are real: a beacon is a fraction of a snapshot.
    beacon_bytes = len(json.dumps(protocol.daemon_beacon(0.0)))
    snapshot = cluster4.machine("n01").snapshot()
    full_bytes = len(json.dumps(protocol.daemon_report(snapshot)))
    assert beacon_bytes < full_bytes / 3
    assert _counter(cluster4, "rbdaemon.report_bytes") < reports * full_bytes


def test_console_change_forces_prompt_full_report(cluster4):
    svc = cluster4.broker
    cluster4.env.run(until=cluster4.now + 10.0)
    assert not svc.state.machine("n01").console_active
    fulls = _counter(cluster4, "rbdaemon.full_reports")
    cluster4.machine("n01").console_active = True
    cluster4.machine("n01").logged_in.add("ann")
    # The next report (one interval away at most) must carry the change —
    # a beacon would hide it from owner-priority reclaim.
    cal = cluster4.network.calibration
    cluster4.env.run(until=cluster4.now + cal.daemon_report_interval + 1.0)
    assert svc.state.machine("n01").console_active
    assert _counter(cluster4, "rbdaemon.full_reports") > fulls


def test_lease_renewal_rides_beacons(cluster4):
    """A machine whose holder sits quietly must still renew its lease: the
    beacon renews the lease inventory of the last full report."""
    svc = cluster4.broker
    cal = cluster4.network.calibration

    @cluster4.system_bin.register("hold")
    def hold(proc):
        yield proc.sleep(3600.0)

    handle = svc.submit("n00", ["rsh", "anylinux", "hold"])
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    held = svc.holdings()[job.jobid]
    assert len(held) == 1

    cluster4.env.run(until=cluster4.now + 3.0 * cal.lease_ttl)
    assert _counter(cluster4, "rbdaemon.beacons") > 0
    assert svc.holdings()[job.jobid] == held  # never expired mid-run
    assert _counter(cluster4, "leases.expired") == 0
    cluster4.assert_no_crashes()


def test_daemon_restart_resends_full_snapshot(cluster4):
    """A reconnecting daemon must not open with a beacon: the broker reset
    the machine record on connection EOF, so the first report after any
    reconnect is a full snapshot (the daemon forgets its probe too)."""
    svc = cluster4.broker
    cluster4.env.run(until=cluster4.now + 10.0)
    daemons = _rbdaemons(cluster4, "n01")
    assert daemons
    fulls = _counter(cluster4, "rbdaemon.full_reports")
    daemons[0].signal(SIGKILL)
    cluster4.env.run(until=cluster4.now + 6.0)
    record = svc.state.machine("n01")
    assert record.reported and not record.dead
    assert record.platform == "i686linux"  # rebuilt from a fresh snapshot
    assert _counter(cluster4, "rbdaemon.full_reports") > fulls
    assert svc.metrics.counter("broker.daemon_restarts").value >= 1


def test_grant_and_release_bump_the_change_probe(cluster4):
    """Allocation activity always breaks a beacon streak: subapp arrival and
    exit bump the machine's process-table version, forcing full reports, so
    the broker's lease inventory can never go stale silently."""
    svc = cluster4.broker
    install_greedy(cluster4)
    cluster4.env.run(until=cluster4.now + 10.0)
    versions = {
        host: cluster4.machine(host).proc_table_version
        for host in svc.managed_hosts
    }
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    for host in svc.holdings()[job.jobid]:
        assert cluster4.machine(host).proc_table_version > versions[host]
        # ... and the broker's record carries the lease from the full
        # report that followed.
        assert job.jobid in svc.state.machine(host).leases
