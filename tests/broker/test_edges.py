"""Edge cases around rsh', subapp, app and partial management."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.os.signals import SIGKILL


@pytest.fixture
def cluster4():
    c = Cluster(ClusterSpec.uniform(4))
    c.start_broker()
    c.broker.wait_ready()
    return c


def run_cmd(cluster, host, argv, uid="user", environ=None):
    proc = cluster.run_command(host, argv, uid=uid, environ=environ)
    cluster.env.run(until=proc.terminated)
    return proc


def test_rshprime_no_args(cluster4):
    proc = run_cmd(cluster4, "n00", ["rsh"])
    assert proc.exit_code == 1
    proc = run_cmd(cluster4, "n00", ["rsh", "n01"])
    assert proc.exit_code == 1


def test_rshprime_with_dead_app(cluster4):
    """RB_APP_PORT pointing at nothing: symbolic rsh fails cleanly."""
    proc = run_cmd(
        cluster4,
        "n00",
        ["rsh", "anylinux", "null"],
        environ={"RB_APP_HOST": "n00", "RB_APP_PORT": "45999"},
    )
    assert proc.exit_code == 1
    cluster4.assert_no_crashes()


def test_rshprime_stale_marker_without_app(cluster4):
    """A leftover expect-marker without an app behind it must not wedge
    a plain rsh (no RB env -> passthrough regardless of markers)."""
    cluster4.machine("n00").fs.write("/home/user/.rb_expect_n01", "1\n")
    proc = run_cmd(cluster4, "n00", ["rsh", "n01", "null"])
    assert proc.exit_code == 0


def test_rshprime_marker_with_dead_app_fails_cleanly(cluster4):
    cluster4.machine("n00").fs.write("/home/user/.rb_expect_n01", "1\n")
    proc = run_cmd(
        cluster4,
        "n00",
        ["rsh", "n01", "null"],
        environ={"RB_APP_HOST": "n00", "RB_APP_PORT": "45999"},
    )
    assert proc.exit_code == 1
    cluster4.assert_no_crashes()


def test_subapp_bad_token_aborted(cluster4):
    svc = cluster4.broker
    # Start a real job so an app is listening.
    handle = svc.submit("n00", ["rsh", "anylinux", "compute", "5"])
    cluster4.env.run(until=cluster4.now + 1.5)
    # Find the app's port from the job's child environment.
    app_proc = handle.proc
    child = app_proc.children[0]
    port = child.environ["RB_APP_PORT"]
    rogue = run_cmd(
        cluster4, "n02", ["subapp", "n00", port, "forged-token"]
    )
    assert rogue.exit_code == 1
    handle.wait()
    cluster4.assert_no_crashes()


def test_subapp_bad_args(cluster4):
    proc = run_cmd(cluster4, "n01", ["subapp", "n00"])
    assert proc.exit_code == 1


def test_app_requires_broker_env(cluster4):
    proc = run_cmd(cluster4, "n00", ["app", "", "null"])  # no RB_BROKER_HOST
    assert proc.exit_code == 1


def test_app_requires_command(cluster4):
    proc = run_cmd(
        cluster4,
        "n00",
        ["app", ""],
        environ={"RB_BROKER_HOST": "n00"},
    )
    assert proc.exit_code == 1


def test_app_with_unreachable_broker():
    cluster = Cluster(ClusterSpec.uniform(2))  # no broker at all
    # Manually give the machine the rb directory so 'app' resolves.
    from repro.broker.app import app_main

    cluster.system_bin.register("app2", app_main)
    proc = cluster.run_command(
        "n00", ["app2", "", "null"], environ={"RB_BROKER_HOST": "n01"}
    )
    cluster.env.run(until=proc.terminated)
    assert proc.exit_code == 1


def test_partial_management_leaves_other_machines_alone():
    cluster = Cluster(ClusterSpec.uniform(4))
    svc = cluster.start_broker(managed_hosts=["n00", "n01", "n02"])
    svc.wait_ready()
    # n03 is outside the broker's world: plain rsh there still works...
    proc = cluster.run_command("n00", ["rsh", "n03", "null"])
    cluster.env.run(until=proc.terminated)
    assert proc.exit_code == 0
    # ...but the broker never allocates it.
    handle = svc.submit("n00", ["rsh", "anylinux", "null"])
    assert handle.wait() == 0
    granted = {e["host"] for e in svc.events_of("grant")}
    assert granted <= {"n01", "n02"}
    assert "n03" not in svc.state.machines
    # And no daemon was ever started there.
    assert not any(
        p.argv[0] == "rbdaemon"
        for p in cluster.machine("n03").procs.values()
    )


def test_unmanaged_machine_keeps_plain_rsh():
    cluster = Cluster(ClusterSpec.uniform(3))
    cluster.start_broker(managed_hosts=["n00", "n01"])
    cluster.broker.wait_ready()
    # n02's PATH was never touched: its rsh is the system rsh.
    assert cluster.machine("n02").path == [cluster.system_bin]


def test_two_jobs_same_user_interleave(cluster4):
    svc = cluster4.broker
    a = svc.submit("n00", ["rsh", "anylinux", "compute", "3"], uid="u")
    b = svc.submit("n01", ["rsh", "anylinux", "compute", "3"], uid="u")
    cluster4.env.run(
        until=cluster4.env.all_of([a.proc.terminated, b.proc.terminated])
    )
    assert a.exit_code == 0 and b.exit_code == 0
    # They got distinct machines.
    grants = svc.events_of("grant")
    assert len({e["host"] for e in grants}) == 2
    cluster4.assert_no_crashes()


def test_resubmission_after_job_completes(cluster4):
    svc = cluster4.broker
    for _ in range(3):
        handle = svc.submit("n00", ["rsh", "anylinux", "null"])
        assert handle.wait() == 0
        cluster4.env.run(until=cluster4.now + 0.5)
    assert svc.holdings() == {}
    assert len(svc.events_of("job_done")) == 3
