"""The extensibility claim, demonstrated end to end.

Paper §5.3: "the plug-in external module approach makes the design
extensible and thus able to accommodate various programming systems
concurrently" and §8: "it also facilitates future support for as yet
undefined programming systems".

This test invents a brand-new parallel programming system — ``toyvm``, which
(like PVM) refuses hosts it did not ask for — registers its three module
scripts as ordinary user programs, and shows the *unchanged* broker managing
it through ``(module="toyvm")``.  Not a single line of repro.broker code
knows toyvm exists.
"""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.os.errors import ConnectionClosed


def install_toyvm(cluster):
    """A minimal PVM-shaped system: coordinator + remote agents + modules."""
    bin_ = cluster.system_bin

    @bin_.register("toyvm_coord")
    def coordinator(proc):
        port = proc.machine.network.ephemeral_port(proc.machine)
        listener = proc.listen(port)
        proc.write_file("~/.toyvm", f"{proc.machine.name} {port}\n")
        agents = {}
        expected = set()

        def serve(conn):
            try:
                first = yield conn.recv()
            except ConnectionClosed:
                return
            if first.get("type") == "agent":
                host = first["host"]
                if host not in expected:
                    conn.send({"type": "no"})  # refuse unexpected hosts
                    conn.close()
                    return
                expected.discard(host)
                conn.send({"type": "yes"})
                agents[host] = conn
                proc.write_file(
                    "~/.toyvm_agents",
                    "".join(h + "\n" for h in sorted(agents)),
                )
                try:
                    while True:
                        yield conn.recv()
                except ConnectionClosed:
                    agents.pop(host, None)
            elif first.get("type") == "grow":
                host = first["host"]
                expected.add(host)
                rsh = proc.spawn(
                    ["rsh", host, "toyvm_agent", proc.machine.name, str(port)]
                )
                code = yield proc.wait(rsh)
                conn.send({"ok": code == 0 and host in agents})
                conn.close()
            elif first.get("type") == "shrink":
                conn_a = agents.get(first["host"])
                if conn_a is not None:
                    conn_a.send({"type": "stop"})
                conn.send({"ok": True})
                conn.close()

        while True:
            conn = yield listener.accept()
            proc.thread(serve(conn), name="toyvm-serve")

    @bin_.register("toyvm_agent")
    def agent(proc):
        yield proc.sleep(0.4)  # agent startup
        conn = yield proc.connect(proc.argv[1], int(proc.argv[2]))
        conn.send({"type": "agent", "host": proc.machine.name})
        ack = yield conn.recv()
        if ack.get("type") != "yes":
            return 1
        proc.daemonize()
        try:
            while True:
                msg = yield conn.recv()
                if msg.get("type") == "stop":
                    return 0
        except ConnectionClosed:
            return 0

    def _coord_call(proc, payload):
        host, port = proc.read_file("~/.toyvm").split()
        conn = yield proc.connect(host, int(port))
        conn.send(payload)
        reply = yield conn.recv()
        conn.close()
        return reply

    @bin_.register("toyvm_grow")
    def toyvm_grow(proc):
        reply = yield from _coord_call(
            proc, {"type": "grow", "host": proc.argv[1]}
        )
        return 0 if reply.get("ok") else 1

    @bin_.register("toyvm_shrink")
    def toyvm_shrink(proc):
        reply = yield from _coord_call(
            proc, {"type": "shrink", "host": proc.argv[1]}
        )
        return 0 if reply.get("ok") else 1

    @bin_.register("toyvm_halt")
    def toyvm_halt(proc):
        yield proc.sleep(0)
        return 0


@pytest.fixture
def cluster():
    c = Cluster(ClusterSpec.uniform(4))
    install_toyvm(c)
    c.start_broker()
    c.broker.wait_ready()
    return c


def test_unknown_system_managed_via_modules(cluster):
    svc = cluster.broker
    job = svc.submit(
        "n00", ["toyvm_coord"], rsl='+(module="toyvm")', uid="dev"
    )
    cluster.env.run(until=cluster.now + 2.0)

    # The coordinator asks for a broker-chosen machine the same way PVM
    # does: by trying to grow with a symbolic name through its own tooling.
    grow = cluster.run_command(
        "n00", ["toyvm_grow", "anylinux"], uid="dev"
    )
    cluster.env.run(until=grow.terminated)
    # Phase I: the grow attempt reports failure.
    assert grow.exit_code == 1

    cluster.env.run(until=cluster.now + 10.0)
    # Phase II: the broker ran toyvm_grow with the real host; the agent is
    # up, wrapped in a subapp, and accounted to the job.
    agents = [
        p
        for m in cluster.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "toyvm_agent"
    ]
    assert len(agents) == 1
    assert agents[0].parent.argv[0] == "subapp"
    record = job.job_record()
    assert svc.holdings()[record.jobid] == [agents[0].machine.name]
    cluster.assert_no_crashes()


def test_unknown_system_revocation_via_shrink(cluster):
    svc = cluster.broker
    job = svc.submit(
        "n00", ["toyvm_coord"], rsl='+(module="toyvm")', uid="dev"
    )
    cluster.env.run(until=cluster.now + 2.0)
    grow = cluster.run_command("n00", ["toyvm_grow", "anylinux"], uid="dev")
    cluster.env.run(until=grow.terminated)
    cluster.env.run(until=cluster.now + 10.0)
    record = job.job_record()
    (held,) = svc.holdings()[record.jobid]

    # Force a revocation: three rigid jobs demand machines; the first two
    # take the free ones, the third can only be satisfied by reclaiming
    # toyvm's machine (module-job allocations yield to owner returns and,
    # here, to nothing else — so mark toyvm's allocation elastic first to
    # exercise the shrink path).
    svc.state.machine(held).allocation.firm = False

    @cluster.system_bin.register("hold")
    def hold(proc):
        yield proc.sleep(3600.0)

    for _ in range(3):
        svc.submit("n00", ["rsh", "anylinux", "hold"])
    cluster.env.run(until=cluster.now + 20.0)

    # toyvm's machine was taken away through toyvm_shrink: agent exited 0.
    assert svc.holdings().get(record.jobid) is None
    agents = [
        p
        for m in cluster.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "toyvm_agent"
    ]
    assert agents == []
    cluster.assert_no_crashes()
