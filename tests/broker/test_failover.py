"""Warm-standby failover and fencing (DESIGN.md §16).

These pin the four rows of the §16 failure matrix end to end: primary
machine death (promotion), standby death (keeper respawn + stream resume),
a ship-link partition (false promotion, resolved by fencing with zero
double grants), and a stale-epoch broker fenced by its own daemons.
"""

import pytest

from repro.broker.daemon import EPOCH_WITNESS_PATH
from repro.cluster import Cluster, ClusterSpec
from repro.faults.netfaults import install
from repro.os.signals import SIGKILL
from tests.broker.conftest import install_greedy

WORKERS = ["n00", "n01", "n02", "n03"]
STANDBY = "n04"


@pytest.fixture
def standby_cluster():
    """4 managed machines plus an unmanaged warm-standby host."""
    cluster = Cluster(ClusterSpec.uniform(5, seed=7))
    cluster.start_broker(
        journal=True, standby_host=STANDBY, managed_hosts=WORKERS
    )
    cluster.broker.wait_ready()
    return cluster


def _counter(svc, name):
    return svc.metrics.counter(name).value


def _kill_standby_procs(cluster):
    killed = 0
    for p in list(cluster.machine(STANDBY).procs.values()):
        if p.is_alive and p.argv and p.argv[0] == "rbstandby":
            p.signal(SIGKILL)
            killed += 1
    return killed


def test_primary_machine_death_promotes_standby(standby_cluster):
    cluster = standby_cluster
    svc = cluster.broker
    install_greedy(cluster)
    handle = svc.submit("n01", ["greedy", "2"], rsl="+(adaptive)")
    cluster.env.run(until=cluster.now + 8.0)
    job = handle.job_record()
    assert len(svc.holdings()[job.jobid]) == 2

    crashed_at = cluster.now
    cluster.crash_machine("n00", reboot_after=None)
    cluster.env.run(until=cluster.now + 20.0)

    # The replica noticed the silence, promoted, and booted the broker on
    # the well-known secondary address under a strictly higher epoch.
    promoted = svc.events_of("broker_promoted")
    assert len(promoted) == 1
    assert svc.epoch == 2
    assert svc.broker_host == STANDBY
    assert svc.broker_alive
    # Promotion beats the restart path's fixed 4-second respawn delay
    # before it even starts recovering (bench_failover pins the full gap).
    deadline = cluster.network.calibration.standby_promotion_deadline
    assert promoted[0]["time"] - crashed_at < deadline + 1.0

    # The app resumed its session against the promoted broker and was
    # re-granted up to strength; nothing was granted twice.
    assert svc.events_of("session_resumed")
    assert handle.proc.is_alive
    assert len(svc.holdings()[job.jobid]) == 2
    assert "n00" not in svc.holdings()[job.jobid]
    assert _counter(svc, "broker.promotions") == 1
    assert _counter(svc, "fencing.double_grants") == 0
    cluster.assert_no_crashes()


def test_ship_link_partition_false_promotion_is_fenced(standby_cluster):
    cluster = standby_cluster
    svc = cluster.broker
    install_greedy(cluster)
    handle = svc.submit("n01", ["greedy", "2"], rsl="+(adaptive)")
    cluster.env.run(until=cluster.now + 8.0)
    job = handle.job_record()
    before = set(svc.holdings()[job.jobid])

    # Cut just primary<->standby: both brokers stay up and daemon-reachable.
    faults = install(cluster.network)
    faults.add_link_block("n00", STANDBY, 20.0)
    cluster.network.sever(faults.partitioned)
    cluster.env.run(until=cluster.now + 35.0)

    # The standby promoted falsely (silence is indistinguishable from
    # death), and once the partition healed the promoted broker's
    # fence_notice demoted the ex-primary instead of splitting the brain.
    assert len(svc.events_of("broker_promoted")) == 1
    demoted = svc.events_of("broker_demoted")
    assert len(demoted) == 1
    assert demoted[0]["witnessed"] == svc.epoch == 2
    assert svc.broker_host == STANDBY

    # Daemons re-registered with their lease inventories; the job's
    # holdings crossed the failover intact and were never double-granted.
    cluster.env.run(until=cluster.now + 10.0)
    assert handle.proc.is_alive
    assert set(svc.holdings()[job.jobid]) == before
    assert _counter(svc, "broker.promotions") == 1
    assert _counter(svc, "broker.demotions") == 1
    assert _counter(svc, "fencing.double_grants") == 0
    cluster.assert_no_crashes()


def test_standby_crash_respawns_and_resumes_stream(standby_cluster):
    cluster = standby_cluster
    svc = cluster.broker
    install_greedy(cluster)
    handle = svc.submit("n01", ["greedy", "2"], rsl="+(adaptive)")
    cluster.env.run(until=cluster.now + 6.0)
    assert _counter(svc, "ship.snapshots") == 1

    assert _kill_standby_procs(cluster) == 1
    cluster.env.run(until=cluster.now + 10.0)

    # The keeper respawned the replica; it resumed the stream from its
    # locally persisted offset — no second snapshot baseline was needed.
    assert _counter(svc, "broker.standby_restarts") >= 1
    assert _counter(svc, "ship.sessions") >= 2
    assert _counter(svc, "ship.snapshots") == 1

    # And the resumed shadow is a working failover target: kill the
    # primary machine and the promoted state still carries the job.
    job = handle.job_record()
    before = set(svc.holdings()[job.jobid])
    cluster.crash_machine("n00", reboot_after=None)
    cluster.env.run(until=cluster.now + 20.0)
    assert svc.epoch == 2
    assert svc.broker_host == STANDBY
    after = set(svc.holdings()[job.jobid])
    assert "n00" not in after
    assert len(after) == len(before)
    assert _counter(svc, "fencing.double_grants") == 0
    cluster.assert_no_crashes()


def test_stale_epoch_broker_is_rejected_and_demotes():
    """A daemon whose machine witnessed a higher epoch fences the broker:
    the persisted witness outranks any stamp a stale incarnation sends."""
    cluster = Cluster(ClusterSpec.uniform(5, seed=7))
    # The machine remembers a future epoch (as if a newer broker had
    # granted here before this stale incarnation came back).
    cluster.machine("n01").fs.write(EPOCH_WITNESS_PATH, "99")
    svc = cluster.start_broker(
        journal=True, standby_host=STANDBY, managed_hosts=WORKERS
    )
    cluster.env.run(until=cluster.now + 10.0)

    # n01's daemon answered the epoch-1 welcome with fence_reject; the
    # broker demoted itself (SIGKILL) rather than keep acting on stale
    # authority.  (The standby then promotes into the same fate: epoch 2
    # is below the witness too, so the cascade just proves the rule binds
    # every incarnation, not only the first.)
    assert svc.metrics.counter("fencing.rejections").value >= 1
    assert svc.metrics.counter("broker.demotions").value >= 1
    demoted = svc.events_of("broker_demoted")
    assert demoted and demoted[0]["source"] == "fence_reject"
    assert demoted[0]["witnessed"] == 99
    assert not svc.broker_alive
    cluster.assert_no_crashes()


def test_rbstat_stats_renders_replication_block(standby_cluster):
    cluster = standby_cluster
    svc = cluster.broker
    install_greedy(cluster)
    svc.submit("n01", ["greedy", "2"], rsl="+(adaptive)")
    cluster.env.run(until=cluster.now + 6.0)
    stat = svc.run_rbstat(host="n01", uid="bob", stats=True)
    cluster.env.run(until=stat.terminated)
    assert stat.exit_code == 0
    report = cluster.machine("n01").fs.read("/home/bob/.rbstat")
    assert "replication: stream=1" in report
    assert "fencing: promotions=0" in report
    assert "double_grants=0" in report


def test_replication_lag_watchdog_flags_a_dark_standby(standby_cluster):
    from repro.obs import HealthMonitor
    from repro.obs.health import HealthThresholds

    cluster = standby_cluster
    svc = cluster.broker
    install_greedy(cluster)
    monitor = HealthMonitor(
        svc, HealthThresholds(check_interval=1.0, replication_lag=64)
    ).start()
    svc.submit("n01", ["greedy", "2"], rsl="+(adaptive)")
    cluster.env.run(until=cluster.now + 5.0)
    assert monitor.replication_lag_events == 0

    # Blackhole the ship link (without killing anyone): flushed stream
    # characters pile up unacked past the threshold.
    faults = install(cluster.network)
    faults.add_link_block("n00", STANDBY, 12.0)
    cluster.network.sever(faults.partitioned)
    cluster.env.run(until=cluster.now + 10.0)

    assert monitor.replication_lag_events >= 1
    assert monitor.max_replication_lag > 64
    assert svc.metrics.counter("health.replication_lag").value >= 1
    report = monitor.report()
    assert report.to_dict()["replication_lag_events"] >= 1
    assert "replication lag:" in report.render()
